package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"crucial/internal/core"
	"crucial/internal/ring"
	"crucial/internal/rpc"
)

// Lease-based read-path coherence (DESIGN.md §5d).
//
// A lease is a time-bounded promise, granted by an object's primary, that
// the holder's copy of the object stays fresh until the lease expires or
// the primary synchronously revokes it. Two kinds of holder exist:
//
//   - client caches: the grant ships a snapshot; the client executes
//     read-only methods against its local copy (internal/client/cache.go);
//   - follower replicas: the grant ships only a version floor; a follower
//     whose local copy has applied at least that many operations may serve
//     read-only invocations itself (follower reads).
//
// Writes preserve linearizability by revoke-before-commit: a mutating
// invocation first blocks new grants (beginWrite), then synchronously
// invalidates every outstanding holder, waiting out the server-side expiry
// of any holder whose ack never arrives, and only then executes. The
// server-side expiry is always at or after the holder-side expiry (holders
// start their clock before the request leaves, the server starts its at
// receipt), so wall-clock skew cannot resurrect a fenced lease.
//
// Revocation is two-sided. The coordinator revokes its own grants before
// multicasting (prepareWrite); every *other* group member revokes its
// grants when the op is delivered to it, before answering the FINAL that
// gates the coordinator's ack (memberWriteFence, called from deliverSMR).
// The member side exists because coordinator and grantor can be different
// nodes around a view change: a deposed primary, its fence unarmed, may
// coordinate a write under its old installed view while the new primary —
// validated against the directory's latest view — has already granted
// leases. Those grants live in the new primary's table where the
// coordinator's revocation round never looks; the new primary is in the
// write's replica group (or the propose fence would have refused the op),
// so its delivery-time revocation kills them before the write is acked.
//
// View changes where the grantor is *not* in the writing group are fenced
// in time instead: leases granted by a deposed primary live in *its*
// table, invisible to the new one, so for one TTL after any view install
// every write (and nothing else) waits the fence out — by then every
// pre-view lease has expired.

// leaseHolder is one outstanding grant in the primary's table.
type leaseHolder struct {
	// addr is where revocation reaches the holder: a client cache's
	// invalidation listener address, or the node ID of a follower.
	addr    string
	replica bool
	expiry  time.Time
}

// refLeases is the per-object grant state.
type refLeases struct {
	// epoch increments on every revocation round; grants and invalidations
	// carry it so a delayed invalidation can never kill a newer lease.
	epoch uint64
	// writing counts mutating invocations between beginWrite and endWrite;
	// grants are refused while any are in progress, closing the window
	// between revocation and commit.
	writing int
	holders map[string]*leaseHolder
}

// replicaLease is a lease this node holds as a follower: permission to
// serve read-only calls from its own copy while the copy has applied at
// least MinVersion operations and the lease has not expired.
type replicaLease struct {
	expiry     time.Time
	minVersion uint64
	epoch      uint64
}

// leaseTable is the per-node lease state: grants handed out (primary
// role), replica leases held (follower role), the post-view write fence,
// and pooled connections to client invalidation listeners.
type leaseTable struct {
	n   *Node
	ttl time.Duration

	mu   sync.Mutex
	refs map[core.Ref]*refLeases

	heldMu sync.Mutex
	held   map[core.Ref]replicaLease
	// heldFloor records, per ref, the epoch of the last revocation this
	// node received as a holder. A grant response that was in flight when
	// the revocation landed carries an older epoch and must not be
	// installed — the primary already considers that lease dead and may
	// have committed a write on the strength of the revocation ack.
	heldFloor map[core.Ref]uint64

	// fence is the unix-nano instant until which writes must wait after a
	// view change (see fenceWait).
	fence atomic.Int64

	connMu sync.Mutex
	conns  map[string]*rpc.Client
	closed bool
}

func newLeaseTable(n *Node, ttl time.Duration) *leaseTable {
	return &leaseTable{
		n:         n,
		ttl:       ttl,
		refs:      make(map[core.Ref]*refLeases),
		held:      make(map[core.Ref]replicaLease),
		heldFloor: make(map[core.Ref]uint64),
		conns:     make(map[string]*rpc.Client),
	}
}

// LeaseRequest asks an object's primary for a lease (KindLease). Replica
// requests come from group members and carry the node ID in HolderAddr;
// client requests carry the address of the client's invalidation listener.
type LeaseRequest struct {
	Ref     core.Ref
	Persist bool
	Replica bool
	// HolderAddr is where revocation reaches the holder; it also keys the
	// holder in the primary's table, so renewals update in place.
	HolderAddr string
}

// LeaseResponse answers a LeaseRequest. A refused grant carries the reason
// (diagnostics only — clients just fall back to a remote invoke).
type LeaseResponse struct {
	Granted bool
	Reason  string
	// TTLMillis is the lease duration. Holders must count it from before
	// the request was sent, which is provably at or before the server's
	// own start point.
	TTLMillis int64
	Epoch     uint64
	// Version is the copy's apply count at grant time: the snapshot's
	// version for client leases, the floor a follower's copy must have
	// reached for replica leases.
	Version uint64
	// Init and Snapshot let a client lease materialize the object locally.
	// Empty for replica leases (the follower already holds a copy).
	Init     []any
	Snapshot []byte
}

// InvalidateMsg revokes a client lease (KindCacheInvalidate, sent by the
// primary to the client's invalidation listener).
type InvalidateMsg struct {
	Ref   core.Ref
	Epoch uint64
}

// leaseRevokeMsg revokes a follower's replica lease (KindLeaseRevoke).
type leaseRevokeMsg struct {
	Ref   core.Ref
	Epoch uint64
}

// refusal builds a refused LeaseResponse and counts it.
func (lt *leaseTable) refusal(reason string) LeaseResponse {
	lt.n.cLeaseRefusals.Inc()
	return LeaseResponse{Reason: reason}
}

// grant services one lease request on the primary. The entire decision —
// primacy, residency, no write in flight — and the holder registration
// happen atomically under lt.mu, so a write that begins after the grant is
// recorded sees (and revokes) the holder.
func (lt *leaseTable) grant(req LeaseRequest) LeaseResponse {
	n := lt.n
	rf := 1
	if req.Persist {
		rf = n.cfg.RF
	}
	// Validate primacy against the directory's *latest* view, not the
	// locally installed one: a deposed primary may not have installed the
	// new view yet, and granting from it would outlive the view fence.
	dv := n.cfg.Directory.View()
	group := dv.Place(req.Ref.String(), rf)
	if len(group) == 0 || group[0] != n.cfg.ID {
		return lt.refusal("not primary")
	}
	if n.migrationFenced(req.Ref) {
		// The object is mid-migration: its copy is about to move and the
		// directive flip will change the primary. A lease granted now could
		// outlive this node's ownership without the new owner knowing.
		return lt.refusal("migrating")
	}
	if req.Replica && !contains(group, ring.NodeID(req.HolderAddr)) {
		return lt.refusal("holder not in replica group")
	}
	info, err := n.cfg.Registry.Lookup(req.Ref.Type)
	if err != nil {
		return lt.refusal("unknown type")
	}
	if info.Synchronization {
		// Synchronization objects block and mutate on every call; their
		// state is never cacheable.
		return lt.refusal("synchronization object")
	}
	e, resident := n.lookupExisting(req.Ref)
	if !resident {
		// Grants never materialize objects: a miss here may mean the
		// hand-off transfer has not arrived, and caching a fresh zero
		// object would serve state the cluster never held. The normal
		// invoke path (with its pull-on-miss machinery) creates first.
		return lt.refusal("object not resident")
	}
	if n.inflight.busy(req.Ref) {
		// An accepted-but-undelivered proposal is invisible to our copy;
		// a lease granted now could miss an operation another coordinator
		// already committed.
		return lt.refusal("ops in flight")
	}
	if n.isStale(req.Ref) {
		// Resident but behind the committed history: a delivery was
		// skipped before this copy's base installed (see markStale). A
		// lease granted from it would serve reads that miss acknowledged
		// writes.
		return lt.refusal("copy stale")
	}

	lt.mu.Lock()
	defer lt.mu.Unlock()
	rl := lt.refs[req.Ref]
	if rl == nil {
		rl = &refLeases{holders: make(map[string]*leaseHolder)}
		lt.refs[req.Ref] = rl
	}
	if rl.writing > 0 {
		return lt.refusal("write in flight")
	}
	resp := LeaseResponse{
		Granted:   true,
		TTLMillis: lt.ttl.Milliseconds(),
		Epoch:     rl.epoch,
	}
	// Lock order lt.mu → e.mu (matched by every lease-path caller).
	e.mu.Lock()
	if e.transferring {
		e.mu.Unlock()
		return lt.refusal("transferring")
	}
	resp.Version = e.version
	if !req.Replica {
		snap, ok := e.obj.(core.Snapshotter)
		if !ok {
			e.mu.Unlock()
			return lt.refusal("not snapshotable")
		}
		data, err := snap.Snapshot()
		if err != nil {
			e.mu.Unlock()
			return lt.refusal("snapshot failed")
		}
		resp.Snapshot = data
		resp.Init = e.init
	}
	e.mu.Unlock()

	rl.holders[req.HolderAddr] = &leaseHolder{
		addr:    req.HolderAddr,
		replica: req.Replica,
		expiry:  time.Now().Add(lt.ttl),
	}
	n.cLeaseGrants.Inc()
	n.log.Debug("lease granted", "ref", req.Ref.String(),
		"holder", req.HolderAddr, "replica", req.Replica,
		"version", resp.Version, "epoch", resp.Epoch)
	return resp
}

// beginWrite blocks new grants for ref until endWrite. It must precede
// revokeAll on every mutating path, or a grant could slip in between the
// revocation round and the commit.
func (lt *leaseTable) beginWrite(ref core.Ref) {
	lt.mu.Lock()
	rl := lt.refs[ref]
	if rl == nil {
		rl = &refLeases{holders: make(map[string]*leaseHolder)}
		lt.refs[ref] = rl
	}
	rl.writing++
	lt.mu.Unlock()
}

// endWrite re-enables grants for ref.
func (lt *leaseTable) endWrite(ref core.Ref) {
	lt.mu.Lock()
	if rl := lt.refs[ref]; rl != nil {
		rl.writing--
		if rl.writing == 0 && len(rl.holders) == 0 {
			delete(lt.refs, ref)
		}
	}
	lt.mu.Unlock()
}

// revokeAll synchronously invalidates every outstanding lease on ref. When
// wait is true (the write path), a holder whose invalidation fails is
// fenced by waiting out its server-side expiry — the lease dies of old age
// before the write commits. When wait is false (best-effort cleanup), the
// invalidations still go out but nothing blocks on them.
func (lt *leaseTable) revokeAll(ctx context.Context, ref core.Ref, wait bool) error {
	lt.mu.Lock()
	rl := lt.refs[ref]
	if rl == nil || len(rl.holders) == 0 {
		lt.mu.Unlock()
		return nil
	}
	rl.epoch++
	epoch := rl.epoch
	holders := rl.holders
	rl.holders = make(map[string]*leaseHolder)
	lt.mu.Unlock()

	lt.n.cLeaseRevokes.Add(uint64(len(holders)))
	var wg sync.WaitGroup
	var failMu sync.Mutex
	var waitUntil time.Time
	for _, h := range holders {
		wg.Add(1)
		go func(h *leaseHolder) {
			defer wg.Done()
			// Bound each attempt by the TTL: past that the lease is dead
			// anyway and the expiry wait below takes over.
			rctx, cancel := context.WithTimeout(ctx, lt.ttl)
			defer cancel()
			var err error
			if h.replica {
				body, encErr := core.EncodeValue(leaseRevokeMsg{Ref: ref, Epoch: epoch})
				if encErr == nil {
					_, err = lt.n.peerCall(rctx, ring.NodeID(h.addr), KindLeaseRevoke, body)
				} else {
					err = encErr
				}
			} else {
				err = lt.invalidateClient(rctx, h.addr, ref, epoch)
			}
			if err != nil {
				failMu.Lock()
				if h.expiry.After(waitUntil) {
					waitUntil = h.expiry
				}
				failMu.Unlock()
			}
		}(h)
	}
	wg.Wait()
	if !wait || waitUntil.IsZero() {
		return nil
	}
	if d := time.Until(waitUntil); d > 0 {
		lt.n.cLeaseExpiryWaits.Inc()
		lt.n.log.Debug("write waiting out unreachable lease holder",
			"ref", ref.String(), "wait", d.String())
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// invalidateClient pushes one InvalidateMsg to a client cache listener,
// pooling the connection for the next revocation.
func (lt *leaseTable) invalidateClient(ctx context.Context, addr string, ref core.Ref, epoch uint64) error {
	body, err := core.EncodeValue(InvalidateMsg{Ref: ref, Epoch: epoch})
	if err != nil {
		return err
	}
	c, err := lt.clientConn(addr)
	if err != nil {
		return err
	}
	if _, err := c.Call(ctx, KindCacheInvalidate, body); err != nil {
		lt.dropClientConn(addr)
		return err
	}
	return nil
}

func (lt *leaseTable) clientConn(addr string) (*rpc.Client, error) {
	lt.connMu.Lock()
	defer lt.connMu.Unlock()
	if lt.closed {
		return nil, core.ErrStopped
	}
	if c, ok := lt.conns[addr]; ok {
		return c, nil
	}
	conn, err := lt.n.cfg.Transport.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial lease holder %s: %w", addr, err)
	}
	c := rpc.NewClient(conn)
	lt.conns[addr] = c
	return c, nil
}

func (lt *leaseTable) dropClientConn(addr string) {
	lt.connMu.Lock()
	if c, ok := lt.conns[addr]; ok {
		_ = c.Close()
		delete(lt.conns, addr)
	}
	lt.connMu.Unlock()
}

// fenceWait delays a write until the post-view fence has passed (no-op in
// the steady state). Leases granted before a view change live in the old
// primary's table where the new primary cannot revoke them; waiting one
// TTL from the install lets every such lease expire. Correctness leans on
// grant-side validation using the directory's latest view: no lease is
// granted after the directory published the new view, so install + TTL
// bounds every pre-view lease's expiry.
func (lt *leaseTable) fenceWait(ctx context.Context) error {
	until := time.Unix(0, lt.fence.Load())
	d := time.Until(until)
	if d <= 0 {
		return nil
	}
	lt.n.cLeaseExpiryWaits.Inc()
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// onViewChange arms the write fence, drops every held replica lease, and
// asynchronously invalidates every grant this node handed out (it may no
// longer own the objects; the fence, not the invalidation, carries the
// safety argument).
func (lt *leaseTable) onViewChange() {
	lt.fence.Store(time.Now().Add(lt.ttl).UnixNano())
	lt.heldMu.Lock()
	lt.held = make(map[core.Ref]replicaLease)
	lt.heldFloor = make(map[core.Ref]uint64)
	lt.heldMu.Unlock()

	lt.mu.Lock()
	refs := make([]core.Ref, 0, len(lt.refs))
	for ref, rl := range lt.refs {
		if len(rl.holders) > 0 {
			refs = append(refs, ref)
		}
	}
	lt.mu.Unlock()
	for _, ref := range refs {
		ref := ref
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*lt.ttl)
			defer cancel()
			_ = lt.revokeAll(ctx, ref, false)
		}()
	}
}

// heldLease returns this node's replica lease for ref, if still valid by
// the local clock.
func (lt *leaseTable) heldLease(ref core.Ref) (replicaLease, bool) {
	lt.heldMu.Lock()
	defer lt.heldMu.Unlock()
	rl, ok := lt.held[ref]
	if !ok || time.Now().After(rl.expiry) {
		return replicaLease{}, false
	}
	return rl, true
}

// storeHeld records a replica lease acquired from the primary, keeping the
// newest epoch if two acquisitions race. A lease older than the last
// revocation's epoch (see heldFloor) is already dead and is discarded: its
// grant response merely lost the race against the invalidation.
func (lt *leaseTable) storeHeld(ref core.Ref, rl replicaLease) {
	lt.heldMu.Lock()
	defer lt.heldMu.Unlock()
	if rl.epoch < lt.heldFloor[ref] {
		return
	}
	delete(lt.heldFloor, ref)
	if cur, ok := lt.held[ref]; !ok || rl.epoch >= cur.epoch {
		lt.held[ref] = rl
	}
}

// dropHeld forgets a replica lease (the primary revoked it) and raises the
// epoch floor so an in-flight grant older than the revocation cannot
// resurrect it.
func (lt *leaseTable) dropHeld(ref core.Ref, epoch uint64) {
	lt.heldMu.Lock()
	delete(lt.held, ref)
	if epoch > lt.heldFloor[ref] {
		lt.heldFloor[ref] = epoch
	}
	lt.heldMu.Unlock()
}

// close releases the pooled invalidation connections.
func (lt *leaseTable) close() {
	lt.connMu.Lock()
	lt.closed = true
	for _, c := range lt.conns {
		_ = c.Close()
	}
	lt.conns = make(map[string]*rpc.Client)
	lt.connMu.Unlock()
}

// handleLease services a KindLease acquire/renew request.
func (n *Node) handleLease(payload []byte) ([]byte, error) {
	if n.leases == nil {
		return core.EncodeValue(LeaseResponse{Reason: "leases disabled"})
	}
	var req LeaseRequest
	if err := core.DecodeValue(payload, &req); err != nil {
		return nil, err
	}
	if req.HolderAddr == "" {
		return core.EncodeValue(LeaseResponse{Reason: "missing holder address"})
	}
	return core.EncodeValue(n.leases.grant(req))
}

// handleLeaseRevoke services a primary's revocation of our replica lease.
func (n *Node) handleLeaseRevoke(payload []byte) ([]byte, error) {
	var msg leaseRevokeMsg
	if err := core.DecodeValue(payload, &msg); err != nil {
		return nil, err
	}
	if n.leases != nil {
		n.leases.dropHeld(msg.Ref, msg.Epoch)
	}
	return nil, nil
}

// prepareWrite is the mutating-path lease hook: wait out the post-view
// fence, block new grants, and synchronously revoke every outstanding
// lease on ref. The returned func (never nil) must run after the write
// finishes to re-enable grants. With leases disabled it is all a no-op.
func (n *Node) prepareWrite(ctx context.Context, ref core.Ref) (func(), error) {
	if n.leases == nil {
		return func() {}, nil
	}
	if err := n.leases.fenceWait(ctx); err != nil {
		return func() {}, err
	}
	n.leases.beginWrite(ref)
	if err := n.leases.revokeAll(ctx, ref, true); err != nil {
		n.leases.endWrite(ref)
		return func() {}, err
	}
	return func() { n.leases.endWrite(ref) }, nil
}

// memberWriteFence is the member-side half of revoke-before-commit, run by
// deliverSMR before applying a mutating op that another node coordinated.
// The coordinator's prepareWrite only revokes leases in *its* table; around
// a view change this node may hold grants of its own (it is the primary in
// the directory's latest view while a deposed coordinator still writes
// under its old one), and those must die before the FINAL reply that lets
// the coordinator ack. Returns the func that re-enables grants (to call
// after the op has applied, so no grant can snapshot the pre-op state) and
// an error when the revocation round could not complete — the caller must
// then skip the apply so the op is never acked on the strength of a lease
// that may still be alive. In the steady state (no holders, or this node
// coordinated the op itself) it is two map lookups.
func (n *Node) memberWriteFence(origin string, inv core.Invocation) (func(), error) {
	if n.leases == nil || origin == string(n.cfg.ID) {
		// The coordinator's own delivery is covered by prepareWrite, whose
		// grant block stays up until the round completes.
		return func() {}, nil
	}
	if inv.ReadOnly && core.IsReadOnlyMethod(inv.Ref.Type, inv.Method) {
		return func() {}, nil
	}
	lt := n.leases
	lt.beginWrite(inv.Ref)
	// The bound only guards against pathological scheduling: revokeAll's
	// longest path is one TTL-bounded invalidation attempt plus waiting out
	// a holder's expiry, itself at most one TTL away.
	ctx, cancel := context.WithTimeout(context.Background(), 3*lt.ttl)
	defer cancel()
	if err := lt.revokeAll(ctx, inv.Ref, true); err != nil {
		lt.endWrite(inv.Ref)
		return func() {}, fmt.Errorf("%w: lease revocation for %s outlived its bound: %v",
			core.ErrRebalancing, inv.Ref, err)
	}
	return func() { lt.endWrite(inv.Ref) }, nil
}

// tryLocalRead serves a read-only invocation from the primary's own copy
// without an SMR round. It is only sound when this node can prove its copy
// current: the directory's latest view still names it primary (a deposed
// primary could miss writes the new one acks — and the new primary's first
// write is fence-delayed past this check), the copy is resident, and no
// accepted-but-undelivered proposal is pending. Anything short of that
// falls back to the full SMR path (ok = false).
func (n *Node) tryLocalRead(ctx context.Context, inv core.Invocation) ([]any, error, bool) {
	if n.leases == nil || !inv.ReadOnly {
		return nil, nil, false
	}
	e, resident := n.lookupExisting(inv.Ref)
	if !resident || n.isStale(inv.Ref) {
		return nil, nil, false
	}
	if n.inflight.busy(inv.Ref) {
		return nil, nil, false
	}
	dv := n.cfg.Directory.View()
	group := dv.Place(inv.Ref.String(), n.cfg.RF)
	if len(group) == 0 || group[0] != n.cfg.ID {
		return nil, nil, false
	}
	results, _, err := n.execOn(ctx, e, inv)
	n.cLocalReads.Inc()
	return results, err, true
}

// followerRead serves a read-only invocation from a follower's copy under
// a primary-granted replica lease. The lease's version floor guarantees
// the copy reflects every acknowledged write: the primary revokes replica
// leases before acking a mutation, and a re-acquired lease carries the
// primary's post-write version, which the follower must reach before it
// may serve again.
func (n *Node) followerRead(ctx context.Context, inv core.Invocation, primary ring.NodeID) ([]any, error) {
	e, ok := n.lookupExisting(inv.Ref)
	if !ok {
		return nil, fmt.Errorf("%w: no follower copy of %s", core.ErrWrongNode, inv.Ref)
	}
	if n.isStale(inv.Ref) {
		// A copy behind the committed history can transiently pass the
		// lease's version floor (version counts diverge after a skipped
		// delivery); bounce to the primary and heal in the background so
		// this follower rejoins the read path.
		go n.selfHeal(inv.Ref)
		return nil, fmt.Errorf("%w: stale follower copy of %s", core.ErrWrongNode, inv.Ref)
	}
	rl, ok := n.leases.heldLease(inv.Ref)
	if !ok {
		var err error
		rl, err = n.acquireReplicaLease(ctx, inv, primary)
		if err != nil {
			// Bounce to the primary rather than surface the grant failure:
			// the client's retry loop re-routes there.
			return nil, fmt.Errorf("%w: no replica lease for %s: %v",
				core.ErrWrongNode, inv.Ref, err)
		}
	}
	e.mu.Lock()
	caughtUp := e.version >= rl.minVersion
	e.mu.Unlock()
	if !caughtUp {
		// Our copy has not applied everything the primary acked; the
		// missing deliveries are in flight. Retryable.
		return nil, fmt.Errorf("%w: follower copy of %s behind lease floor",
			core.ErrRebalancing, inv.Ref)
	}
	results, _, err := n.execOn(ctx, e, inv)
	if err == nil {
		n.cFollowerReads.Inc()
	}
	return results, err
}

// acquireReplicaLease asks the primary for (or renews) this node's replica
// lease on ref. The expiry clock starts before the request leaves, so the
// follower's view of the lease always dies no later than the primary's.
func (n *Node) acquireReplicaLease(ctx context.Context, inv core.Invocation, primary ring.NodeID) (replicaLease, error) {
	req := LeaseRequest{
		Ref:        inv.Ref,
		Persist:    inv.Persist,
		Replica:    true,
		HolderAddr: string(n.cfg.ID),
	}
	body, err := core.EncodeValue(req)
	if err != nil {
		return replicaLease{}, err
	}
	start := time.Now()
	out, err := n.peerCall(ctx, primary, KindLease, body)
	if err != nil {
		return replicaLease{}, err
	}
	var resp LeaseResponse
	if err := core.DecodeValue(out, &resp); err != nil {
		return replicaLease{}, err
	}
	if !resp.Granted {
		return replicaLease{}, fmt.Errorf("lease refused: %s", resp.Reason)
	}
	rl := replicaLease{
		expiry:     start.Add(time.Duration(resp.TTLMillis) * time.Millisecond),
		minVersion: resp.Version,
		epoch:      resp.Epoch,
	}
	n.leases.storeHeld(inv.Ref, rl)
	return rl, nil
}
