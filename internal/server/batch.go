package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"crucial/internal/core"
	"crucial/internal/durability"
	"crucial/internal/ring"
	"crucial/internal/telemetry"
	"crucial/internal/totalorder"
)

// Group commit on the SMR write path (DESIGN.md §5e): instead of one
// Skeen ordering round per mutation, concurrent writes to one object are
// queued per ref and flushed as a batch — one MsgID, one payload carrying
// up to WritePolicy.MaxBatch stamped invocations — so the whole replica
// group pays a single PROPOSE/FINAL exchange, one lease-revocation fence
// and one monitor acquisition for N operations. Up to
// WritePolicy.PipelineDepth rounds per ref may be in flight concurrently:
// the in-flight admission check only refuses *other* coordinators
// (inflightTracker.admit), and Skeen orders concurrent rounds from one
// origin consistently at every member, so pipelining overlaps round k's
// FINAL acks with round k+1's proposes without giving up linearizability.

// batchedWrite is one caller's mutation queued for group commit. done is
// buffered so a flush never blocks on a caller that gave up (context
// expiry abandons the channel; the outcome is simply dropped, exactly as
// the classic path drops a result its waiter stopped listening for — the
// client's retry is answered from the at-most-once window).
type batchedWrite struct {
	ctx  context.Context
	inv  core.Invocation
	done chan smrResult
}

// subResult is one sub-operation's outcome inside a delivered batch.
type subResult struct {
	results []any
	err     error
}

// batchOutcome is what the coordinator's in-order delivery of a batch
// reports back to flushBatch: per-sub-operation outcomes plus the
// post-batch apply version for the fork check. err is a batch-level
// failure (decode, missing base copy, fence) that voids the whole round.
type batchOutcome struct {
	res     []subResult
	version uint64
	err     error
	// commit is the round's WAL durability ticket (nil with the tier
	// off); the coordinator waits on it before distributing acks.
	commit *durability.Commit
}

// refQueue is the per-object batch state: queued writes, whether a
// dispatcher goroutine currently owns the queue, and the pipeline gate
// bounding concurrently outstanding rounds for this ref.
type refQueue struct {
	pending  []*batchedWrite
	running  bool
	inflight int
	slots    chan struct{}
}

// writeBatcher implements the coordinator-side submit queue. One
// dispatcher goroutine per active ref collects batches and launches flush
// goroutines; idle refs cost nothing (their queue entry is deleted once
// drained and settled).
type writeBatcher struct {
	n   *Node
	pol core.WritePolicy

	mu     sync.Mutex
	closed bool
	queues map[core.Ref]*refQueue
}

func newWriteBatcher(n *Node, pol core.WritePolicy) *writeBatcher {
	return &writeBatcher{n: n, pol: pol, queues: make(map[core.Ref]*refQueue)}
}

// submit queues one write for group commit and waits for its outcome.
func (b *writeBatcher) submit(ctx context.Context, inv core.Invocation) ([]any, error) {
	w := &batchedWrite{ctx: ctx, inv: inv, done: make(chan smrResult, 1)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, core.ErrStopped
	}
	rq := b.queues[inv.Ref]
	if rq == nil {
		rq = &refQueue{slots: make(chan struct{}, b.pol.PipelineDepth())}
		b.queues[inv.Ref] = rq
	}
	rq.pending = append(rq.pending, w)
	if !rq.running {
		rq.running = true
		go b.dispatch(inv.Ref, rq)
	}
	b.mu.Unlock()
	select {
	case out := <-w.done:
		return out.results, out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// dispatch drains one ref's queue: take a pipeline slot, pop up to
// MaxBatch writes, optionally linger MaxDelay for stragglers, and flush
// in the background. The slot is acquired BEFORE the queue is cut so that
// writes arriving while all slots are busy join the batch about to flush
// instead of waiting a full extra round — under saturation this is what
// lets batch sizes track the arrival rate. dispatch exits when the queue
// is empty; the next submit restarts it.
func (b *writeBatcher) dispatch(ref core.Ref, rq *refQueue) {
	for {
		b.mu.Lock()
		if b.closed {
			pending := rq.pending
			rq.pending, rq.running = nil, false
			b.mu.Unlock()
			failBatch(pending, core.ErrStopped)
			return
		}
		if len(rq.pending) == 0 {
			rq.running = false
			if rq.inflight == 0 && b.queues[ref] == rq {
				delete(b.queues, ref)
			}
			b.mu.Unlock()
			return
		}
		b.mu.Unlock()

		rq.slots <- struct{}{} // pipeline gate

		b.mu.Lock()
		take := len(rq.pending)
		if take > b.pol.MaxBatch {
			take = b.pol.MaxBatch
		}
		batch := rq.pending[:take:take]
		rq.pending = rq.pending[take:]
		b.mu.Unlock()

		if len(batch) < b.pol.MaxBatch && b.pol.MaxDelay > 0 {
			// Group-commit linger: trade this batch's latency for size.
			time.Sleep(b.pol.MaxDelay)
			b.mu.Lock()
			extra := b.pol.MaxBatch - len(batch)
			if extra > len(rq.pending) {
				extra = len(rq.pending)
			}
			batch = append(batch, rq.pending[:extra]...)
			rq.pending = rq.pending[extra:]
			b.mu.Unlock()
		}
		if len(batch) == 0 {
			// The queue emptied between the length check and the cut (close
			// raced in); release the slot and re-check.
			<-rq.slots
			continue
		}

		b.mu.Lock()
		rq.inflight++
		b.mu.Unlock()
		go func(batch []*batchedWrite) {
			b.n.flushBatch(ref, batch)
			<-rq.slots
			b.mu.Lock()
			rq.inflight--
			if rq.inflight == 0 && !rq.running && len(rq.pending) == 0 && b.queues[ref] == rq {
				delete(b.queues, ref)
			}
			b.mu.Unlock()
		}(batch)
	}
}

// close fails every queued write; dispatchers notice closed on their next
// pass and in-flight rounds run to completion (bounded by flushBatch's
// deadline) against the shutting-down transport.
func (b *writeBatcher) close() {
	b.mu.Lock()
	b.closed = true
	var orphaned [][]*batchedWrite
	for _, rq := range b.queues {
		if len(rq.pending) > 0 {
			orphaned = append(orphaned, rq.pending)
			rq.pending = nil
		}
	}
	b.mu.Unlock()
	for _, batch := range orphaned {
		failBatch(batch, core.ErrStopped)
	}
}

// failBatch reports one error to every write of a batch.
func failBatch(batch []*batchedWrite, err error) {
	for _, w := range batch {
		w.done <- smrResult{err: err}
	}
}

// submitBatched is invokeReplicated's entry into the group-commit path,
// attributing each caller's wait on its shared round to the per-invocation
// span the same way the classic path attributes its private round.
func (n *Node) submitBatched(ctx context.Context, inv core.Invocation) ([]any, error) {
	if !n.instrumented {
		return n.batcher.submit(ctx, inv)
	}
	start := time.Now()
	results, err := n.batcher.submit(ctx, inv)
	telemetry.SpanFromContext(ctx).AddTiming(telemetry.TimingSMR, time.Since(start))
	return results, err
}

// flushBatch runs one group-commit ordering round: the shared pre-work of
// the classic write path exactly once (primacy check, lease
// revoke-before-commit, residency pull, genesis determination), then a
// single multicast whose payload carries the whole batch, the wait for the
// coordinator's own in-order delivery, and one fork check before
// distributing per-sub-operation outcomes.
func (n *Node) flushBatch(ref core.Ref, batch []*batchedWrite) {
	// The round runs under its own deadline, not any caller's context: one
	// canceled caller must not fail the other writes sharing the round.
	// The bound covers the FINAL wait (10x peer timeout, like handleFinal)
	// and the lease fence's worst case (revocation plus holder expiry).
	bound := 10 * n.peerTimeout
	if bound <= 0 {
		bound = 20 * time.Second
	}
	if n.leases != nil {
		if lb := 4 * n.leases.ttl; lb > bound {
			bound = lb
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), bound)
	defer cancel()
	if n.instrumented {
		// One span per round, parented to the first caller's trace so
		// stages -report can attribute the shared ordering work.
		var span *telemetry.Span
		ctx, span = n.tracer.Start(telemetry.ContextWithSpan(ctx,
			telemetry.SpanFromContext(batch[0].ctx)), telemetry.SpanSMRBatch)
		span.SetAttr(telemetry.AttrObjectType, ref.Type)
		span.SetAttr(telemetry.AttrBatchSize, fmt.Sprint(len(batch)))
		defer span.End()
	}

	group, r := n.replicaGroup(ref, true)
	if r == nil || len(group) == 0 {
		failBatch(batch, core.ErrRebalancing)
		return
	}
	if group[0] != n.cfg.ID {
		failBatch(batch, fmt.Errorf("%w: %s belongs to %s", core.ErrWrongNode, ref, group[0]))
		return
	}
	if n.leases != nil {
		// One revoke-before-commit fence covers every write of the round.
		done, lerr := n.prepareWrite(ctx, ref)
		if lerr != nil {
			failBatch(batch, lerr)
			return
		}
		defer done()
	}
	genesis, err := n.ensureCoordinatorCopy(ctx, ref, group)
	if err != nil {
		failBatch(batch, err)
		return
	}
	flag := smrOpBatch
	if genesis {
		flag = smrOpBatchGenesis
	}

	parts := make([][]byte, 0, len(batch))
	live := batch[:0:0]
	for _, w := range batch {
		enc, encErr := core.EncodeInvocation(w.inv)
		if encErr != nil {
			w.done <- smrResult{err: encErr}
			continue
		}
		parts = append(parts, enc)
		live = append(live, w)
	}
	if len(live) == 0 {
		return
	}

	payload := totalorder.AppendBatch([]byte{flag}, parts)
	id := totalorder.MsgID{Origin: string(n.cfg.ID), Seq: n.seq.Add(1)}
	ch := make(chan batchOutcome, 1)
	n.batchWaitMu.Lock()
	if n.batchWaiters == nil {
		n.batchWaiters = make(map[totalorder.MsgID]chan batchOutcome)
	}
	n.batchWaiters[id] = ch
	n.batchWaitMu.Unlock()
	n.finalVerMu.Lock()
	if n.finalVers == nil {
		n.finalVers = make(map[totalorder.MsgID]map[ring.NodeID]uint64)
	}
	n.finalVers[id] = make(map[ring.NodeID]uint64, len(group)-1)
	n.finalVerMu.Unlock()
	defer func() {
		n.batchWaitMu.Lock()
		delete(n.batchWaiters, id)
		n.batchWaitMu.Unlock()
		n.finalVerMu.Lock()
		delete(n.finalVers, id)
		n.finalVerMu.Unlock()
	}()

	members := make([]string, len(group))
	for i, g := range group {
		members[i] = string(g)
	}
	if err := totalorder.Multicast(ctx, (*toTransport)(n), members, id, payload); err != nil {
		// Same contract as the classic path: a failed multicast means the
		// group is unreachable or the view is shifting; every caller gets
		// the retryable sentinel and the at-most-once window makes the
		// retries safe wherever the round did deliver.
		failBatch(live, fmt.Errorf("%w: %v", core.ErrRebalancing, err))
		return
	}
	n.smrOps.Add(uint64(len(live)))
	n.cSMRRounds.Inc()
	n.cBatches.Inc()
	n.hBatchSize.ObserveValue(int64(len(live)))
	select {
	case out := <-ch:
		if out.err != nil {
			failBatch(live, out.err)
			return
		}
		if err := n.checkRoundVersions(ref, id, out.version); err != nil {
			failBatch(live, err)
			return
		}
		if err := waitDurable(ctx, out.commit); err != nil {
			// The batch applied in memory but never reached cold storage; no
			// write of the round may be acked (the retries are dedup-safe).
			failBatch(live, err)
			return
		}
		n.log.Debug("smr batch round complete", "ref", ref.String(),
			"id", id.String(), "ops", len(live), "group", members, "genesis", genesis)
		for i, w := range live {
			w.done <- smrResult{results: out.res[i].results, err: out.res[i].err}
		}
	case <-ctx.Done():
		failBatch(live, fmt.Errorf("%w: batch %s finalized but not delivered within bound",
			core.ErrRebalancing, id))
	}
}
