package server

import (
	"sync"
	"time"

	"crucial/internal/core"
	"crucial/internal/totalorder"
)

// In-flight proposal tracking: one object must never have proposals from
// two different coordinators in flight at once.
//
// The view fence (see proposeMsg) stops a stale primary from *starting* a
// round after a replica moved to the new view, but not this interleaving:
// a shared replica accepts the old primary's propose under view N,
// installs view N+1, then accepts the new primary's propose for the same
// object. Both rounds commit — each coordinator acknowledges a result
// computed on a copy that never sees the other's operation, and the two
// acknowledgments cannot be linearized (the nemesis observes two
// concurrent AddAndGets acknowledging the same counter value).
//
// The tracker closes the window: every accepted proposal is registered
// until it is delivered or aborted, and a propose for an object that has
// an undelivered proposal from a different origin is refused (the
// coordinator aborts and the client retries once the pending op settles).
// It also backs the snapshot barrier: an object with undelivered
// proposals is "busy", and serving a fetch for it would hand out a base
// copy missing an operation the receiver will never get by multicast.

// inflightEntry is one accepted, not yet settled proposal.
type inflightEntry struct {
	ref    core.Ref
	origin string
	at     time.Time
}

type inflightTracker struct {
	mu    sync.Mutex
	byID  map[totalorder.MsgID]inflightEntry
	byRef map[core.Ref]map[string]int // ref → origin → undelivered count
	ttl   time.Duration               // mirrors the total-order pending TTL
}

func newInflightTracker(ttl time.Duration) *inflightTracker {
	return &inflightTracker{
		byID:  make(map[totalorder.MsgID]inflightEntry),
		byRef: make(map[core.Ref]map[string]int),
		ttl:   ttl,
	}
}

// admit registers a proposal and reports whether it may be accepted.
// Duplicate admits of one ID (retried or chaos-duplicated frames) are
// idempotent.
func (t *inflightTracker) admit(id totalorder.MsgID, ref core.Ref) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gcLocked()
	if _, ok := t.byID[id]; ok {
		return true
	}
	for origin, cnt := range t.byRef[ref] {
		if cnt > 0 && origin != id.Origin {
			return false
		}
	}
	t.byID[id] = inflightEntry{ref: ref, origin: id.Origin, at: time.Now()}
	if t.byRef[ref] == nil {
		t.byRef[ref] = make(map[string]int)
	}
	t.byRef[ref][id.Origin]++
	return true
}

// settle removes a proposal after delivery or abort (no-op for unknown
// IDs, e.g. an abort for a refused propose).
func (t *inflightTracker) settle(id totalorder.MsgID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.removeLocked(id)
}

// busy reports whether ref has undelivered proposals.
func (t *inflightTracker) busy(ref core.Ref) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gcLocked()
	for _, cnt := range t.byRef[ref] {
		if cnt > 0 {
			return true
		}
	}
	return false
}

// purge drops proposals from origins that are no longer alive, mirroring
// the total-order layer's view-synchrony flush (PurgeOrigins).
func (t *inflightTracker) purge(alive func(origin string) bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, e := range t.byID {
		if !alive(e.origin) {
			t.removeLocked(id)
		}
	}
}

// gcLocked expires entries past the TTL — the backstop for aborts that
// never arrive, mirroring the total-order pending GC.
func (t *inflightTracker) gcLocked() {
	if t.ttl <= 0 {
		return
	}
	cutoff := time.Now().Add(-t.ttl)
	for id, e := range t.byID {
		if e.at.Before(cutoff) {
			t.removeLocked(id)
		}
	}
}

func (t *inflightTracker) removeLocked(id totalorder.MsgID) {
	e, ok := t.byID[id]
	if !ok {
		return
	}
	delete(t.byID, id)
	if origins := t.byRef[e.ref]; origins != nil {
		if origins[e.origin]--; origins[e.origin] <= 0 {
			delete(origins, e.origin)
		}
		if len(origins) == 0 {
			delete(t.byRef, e.ref)
		}
	}
}
