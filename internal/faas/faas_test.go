package faas

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crucial/internal/netsim"
)

func echo(_ context.Context, p []byte) ([]byte, error) { return p, nil }

func TestDeployAndInvoke(t *testing.T) {
	p := NewPlatform(Options{})
	if err := p.Deploy("echo", echo, FunctionConfig{}); err != nil {
		t.Fatal(err)
	}
	out, err := p.Invoke(context.Background(), "echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "hi" {
		t.Fatalf("out = %q", out)
	}
}

func TestInvokeUnknownFunction(t *testing.T) {
	p := NewPlatform(Options{})
	if _, err := p.Invoke(context.Background(), "ghost", nil); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("want ErrNotDeployed, got %v", err)
	}
}

func TestDeployValidation(t *testing.T) {
	p := NewPlatform(Options{})
	if err := p.Deploy("", echo, FunctionConfig{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := p.Deploy("f", nil, FunctionConfig{}); err == nil {
		t.Fatal("nil handler accepted")
	}
	if err := p.Deploy("f", echo, FunctionConfig{MemoryMB: 9999}); err == nil {
		t.Fatal("over-limit memory accepted")
	}
	if err := p.Deploy("f", echo, FunctionConfig{FailureRate: 1.5}); err == nil {
		t.Fatal("failure rate > 1 accepted")
	}
}

func TestColdThenWarm(t *testing.T) {
	p := NewPlatform(Options{Profile: netsim.Zero()})
	if err := p.Deploy("f", echo, FunctionConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(context.Background(), "f", nil); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().ColdStarts; got != 1 {
		t.Fatalf("cold starts = %d, want 1", got)
	}
	if got := p.WarmContainers("f"); got != 1 {
		t.Fatalf("warm containers = %d, want 1", got)
	}
	if _, err := p.Invoke(context.Background(), "f", nil); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().ColdStarts; got != 1 {
		t.Fatalf("second invocation cold-started (total %d)", got)
	}
}

func TestColdStartLatencyApplied(t *testing.T) {
	profile := netsim.Zero()
	profile.ColdStart = netsim.Latency{Base: 50 * time.Millisecond}
	p := NewPlatform(Options{Profile: profile})
	if err := p.Deploy("f", echo, FunctionConfig{}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := p.Invoke(context.Background(), "f", nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("cold invocation took %v, want >= 50ms", d)
	}
	start = time.Now()
	if _, err := p.Invoke(context.Background(), "f", nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d >= 50*time.Millisecond {
		t.Fatalf("warm invocation took %v, want < 50ms", d)
	}
}

func TestPrewarmSkipsColdStart(t *testing.T) {
	profile := netsim.Zero()
	profile.ColdStart = netsim.Latency{Base: time.Hour} // would hang if hit
	p := NewPlatform(Options{Profile: profile})
	if err := p.Deploy("f", echo, FunctionConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := p.Prewarm("f", 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := p.Invoke(ctx, "f", nil); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().ColdStarts; got != 0 {
		t.Fatalf("cold starts = %d after prewarm", got)
	}
	if err := p.Prewarm("ghost", 1); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("Prewarm unknown fn: %v", err)
	}
}

func TestTimeout(t *testing.T) {
	p := NewPlatform(Options{})
	err := p.Deploy("slow", func(ctx context.Context, _ []byte) ([]byte, error) {
		select {
		case <-time.After(10 * time.Second):
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}, FunctionConfig{Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Invoke(context.Background(), "slow", nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if got := p.Stats().Timeouts; got != 1 {
		t.Fatalf("timeouts = %d", got)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	p := NewPlatform(Options{})
	boom := errors.New("user code exploded")
	_ = p.Deploy("bad", func(context.Context, []byte) ([]byte, error) {
		return nil, boom
	}, FunctionConfig{})
	_, err := p.Invoke(context.Background(), "bad", nil)
	if !errors.Is(err, boom) {
		t.Fatalf("want user error, got %v", err)
	}
	if got := p.Stats().Failures; got != 1 {
		t.Fatalf("failures = %d", got)
	}
}

func TestHandlerPanicBecomesError(t *testing.T) {
	p := NewPlatform(Options{})
	_ = p.Deploy("panics", func(context.Context, []byte) ([]byte, error) {
		panic("oh no")
	}, FunctionConfig{})
	_, err := p.Invoke(context.Background(), "panics", nil)
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestFailureInjectionDeterministic(t *testing.T) {
	p := NewPlatform(Options{Seed: 7})
	_ = p.Deploy("flaky", echo, FunctionConfig{FailureRate: 0.5})
	var failures int
	for i := 0; i < 40; i++ {
		if _, err := p.Invoke(context.Background(), "flaky", nil); err != nil {
			if !errors.Is(err, ErrInjectedFailure) {
				t.Fatalf("unexpected error: %v", err)
			}
			failures++
		}
	}
	if failures == 0 || failures == 40 {
		t.Fatalf("failure injection produced %d/40 failures", failures)
	}
}

func TestConcurrencyCapQueues(t *testing.T) {
	p := NewPlatform(Options{Concurrency: 2})
	var inFlight, peak atomic.Int32
	release := make(chan struct{})
	_ = p.Deploy("gate", func(context.Context, []byte) ([]byte, error) {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		<-release
		return nil, nil
	}, FunctionConfig{})

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Invoke(context.Background(), "gate", nil); err != nil {
				t.Errorf("invoke: %v", err)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if peak.Load() > 2 {
		t.Fatalf("peak concurrency %d exceeded cap 2", peak.Load())
	}
}

func TestThrottleNoQueue(t *testing.T) {
	p := NewPlatform(Options{Concurrency: 1})
	release := make(chan struct{})
	_ = p.Deploy("gate", func(context.Context, []byte) ([]byte, error) {
		<-release
		return nil, nil
	}, FunctionConfig{NoQueue: true})

	errCh := make(chan error, 1)
	go func() {
		_, err := p.Invoke(context.Background(), "gate", nil)
		errCh <- err
	}()
	time.Sleep(30 * time.Millisecond)
	_, err := p.Invoke(context.Background(), "gate", nil)
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("want ErrThrottled, got %v", err)
	}
	close(release)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

func TestBillingAccumulates(t *testing.T) {
	p := NewPlatform(Options{})
	_ = p.Deploy("work", func(context.Context, []byte) ([]byte, error) {
		time.Sleep(20 * time.Millisecond)
		return nil, nil
	}, FunctionConfig{MemoryMB: 1024})
	if _, err := p.Invoke(context.Background(), "work", nil); err != nil {
		t.Fatal(err)
	}
	gb := p.Stats().BilledGBSecond
	if gb < 0.015 || gb > 0.5 {
		t.Fatalf("billed %v GB-s for a 20ms 1GB invocation", gb)
	}
}

func TestBillingUsesModeledTime(t *testing.T) {
	// With a 1/10 profile, 20ms of real sleep is 200ms modeled.
	profile := netsim.AWS2019(0.1)
	profile.ColdStart = netsim.Latency{}
	profile.InvokeOverhead = netsim.Latency{}
	p := NewPlatform(Options{Profile: profile})
	_ = p.Deploy("work", func(context.Context, []byte) ([]byte, error) {
		time.Sleep(20 * time.Millisecond)
		return nil, nil
	}, FunctionConfig{MemoryMB: 1024})
	if _, err := p.Invoke(context.Background(), "work", nil); err != nil {
		t.Fatal(err)
	}
	gb := p.Stats().BilledGBSecond
	if gb < 0.15 || gb > 1.5 {
		t.Fatalf("billed %v GB-s, want ~0.2 (modeled)", gb)
	}
}

func TestInvokeContextCancelled(t *testing.T) {
	p := NewPlatform(Options{})
	_ = p.Deploy("f", func(ctx context.Context, _ []byte) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, FunctionConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := p.Invoke(ctx, "f", nil); err == nil {
		t.Fatal("cancelled invocation returned nil error")
	}
}

func TestParallelInvocationsIndependent(t *testing.T) {
	p := NewPlatform(Options{})
	_ = p.Deploy("id", echo, FunctionConfig{})
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte{byte(i)}
			out, err := p.Invoke(context.Background(), "id", payload)
			if err != nil || len(out) != 1 || out[0] != byte(i) {
				t.Errorf("invocation %d: %v %v", i, out, err)
			}
		}(i)
	}
	wg.Wait()
	if got := p.Stats().Invocations; got != 20 {
		t.Fatalf("invocations = %d", got)
	}
}

// scriptedInjector fails/delays invocations on demand (the production
// implementation is the chaos engine; see chaos.Engine).
type scriptedInjector struct {
	mu        sync.Mutex
	failNext  int
	delayNext time.Duration
	delays    int
}

func (s *scriptedInjector) InvocationFault(string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failNext > 0 {
		s.failNext--
		return errors.New("scripted fault")
	}
	return nil
}

func (s *scriptedInjector) ContainerDelay(string) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.delayNext
	s.delayNext = 0
	if d > 0 {
		s.delays++
	}
	return d
}

func TestInjectorFaultSurfacesAsInjectedFailure(t *testing.T) {
	inj := &scriptedInjector{failNext: 2}
	p := NewPlatform(Options{Injector: inj})
	if err := p.Deploy("f", echo, FunctionConfig{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := p.Invoke(context.Background(), "f", nil); !errors.Is(err, ErrInjectedFailure) {
			t.Fatalf("invocation %d: err = %v, want ErrInjectedFailure", i, err)
		}
	}
	if out, err := p.Invoke(context.Background(), "f", []byte("ok")); err != nil || string(out) != "ok" {
		t.Fatalf("after faults drained: %q, %v", out, err)
	}
	if got := p.Stats().Failures; got != 2 {
		t.Fatalf("failures = %d, want 2", got)
	}
	if got := p.Metrics().Counter("faas.failures.by_fn.f").Value(); got != 2 {
		t.Fatalf("per-function failure counter = %d, want 2", got)
	}
}

func TestInjectorContainerDelayStillExecutes(t *testing.T) {
	inj := &scriptedInjector{delayNext: 5 * time.Millisecond}
	p := NewPlatform(Options{Injector: inj})
	if err := p.Deploy("f", echo, FunctionConfig{}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	out, err := p.Invoke(context.Background(), "f", []byte("slow"))
	if err != nil || string(out) != "slow" {
		t.Fatalf("delayed invocation: %q, %v", out, err)
	}
	if inj.delays != 1 {
		t.Fatalf("delays consumed = %d", inj.delays)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("container delay was not applied")
	}
}

func TestPerFunctionFailureAndTimeoutCounters(t *testing.T) {
	p := NewPlatform(Options{})
	_ = p.Deploy("boom", func(context.Context, []byte) ([]byte, error) {
		return nil, errors.New("app error")
	}, FunctionConfig{})
	_ = p.Deploy("slow", func(ctx context.Context, _ []byte) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, FunctionConfig{Timeout: 5 * time.Millisecond})

	_, _ = p.Invoke(context.Background(), "boom", nil)
	if _, err := p.Invoke(context.Background(), "slow", nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if got := p.Metrics().Counter("faas.failures.by_fn.boom").Value(); got != 1 {
		t.Fatalf("boom failures = %d", got)
	}
	if got := p.Metrics().Counter("faas.timeouts.by_fn.slow").Value(); got != 1 {
		t.Fatalf("slow timeouts = %d", got)
	}
	if got := p.Metrics().Counter("faas.failures.by_fn.slow").Value(); got != 0 {
		t.Fatalf("timeout double-counted as failure: %d", got)
	}
}
