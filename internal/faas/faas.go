// Package faas simulates a Function-as-a-Service platform with the
// operational behaviour of AWS Lambda that the paper depends on
// (Section 2.1): synchronous RequestResponse invocation, per-function
// container pools with cold starts, memory and execution-time limits, an
// account-level concurrency cap, and duration-based billing. Functions are
// Go closures; the simulated aspects are provisioning latency, limits, and
// cost accounting — the function body really executes.
package faas

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"crucial/internal/netsim"
)

// Default limits, mirroring AWS Lambda at the paper's time of writing.
const (
	// DefaultMemoryMB is the default function memory (the paper's logistic
	// regression setting: 1 full vCPU's worth).
	DefaultMemoryMB = 1792
	// MaxMemoryMB was Lambda's cap (3008 MB in 2019).
	MaxMemoryMB = 3008
	// DefaultTimeout is Lambda's maximum execution time (15 min), in
	// modeled time.
	DefaultTimeout = 15 * time.Minute
	// DefaultConcurrency is the account-level concurrent execution cap.
	DefaultConcurrency = 1000
)

// Errors returned by the platform.
var (
	// ErrNotDeployed is returned when invoking an unknown function.
	ErrNotDeployed = errors.New("faas: function not deployed")
	// ErrTimeout is returned when a function exceeds its timeout.
	ErrTimeout = errors.New("faas: function timed out")
	// ErrThrottled is returned when the concurrency cap is hit and the
	// function is configured not to queue.
	ErrThrottled = errors.New("faas: throttled, concurrency limit reached")
	// ErrInjectedFailure marks failures from the fault-injection hook.
	ErrInjectedFailure = errors.New("faas: injected invocation failure")
)

// Handler is a function entry point: payload in, payload out.
type Handler func(ctx context.Context, payload []byte) ([]byte, error)

// FunctionConfig describes one deployed function.
type FunctionConfig struct {
	// MemoryMB in [64, MaxMemoryMB]; defaults to DefaultMemoryMB.
	MemoryMB int
	// Timeout is the modeled execution limit; defaults to DefaultTimeout.
	Timeout time.Duration
	// FailureRate in [0,1) injects random invocation failures before the
	// handler runs, for retry-path testing.
	FailureRate float64
	// NoQueue makes the platform return ErrThrottled instead of waiting
	// when the concurrency cap is reached.
	NoQueue bool
}

func (c FunctionConfig) withDefaults() (FunctionConfig, error) {
	if c.MemoryMB == 0 {
		c.MemoryMB = DefaultMemoryMB
	}
	if c.MemoryMB < 64 || c.MemoryMB > MaxMemoryMB {
		return c, fmt.Errorf("faas: memory %d MB outside [64,%d]", c.MemoryMB, MaxMemoryMB)
	}
	if c.Timeout == 0 {
		c.Timeout = DefaultTimeout
	}
	if c.FailureRate < 0 || c.FailureRate >= 1 {
		return c, fmt.Errorf("faas: failure rate %v outside [0,1)", c.FailureRate)
	}
	return c, nil
}

// Stats aggregates platform counters. BilledGBSeconds uses modeled time,
// matching what Table 3 prices.
type Stats struct {
	Invocations    uint64
	ColdStarts     uint64
	Failures       uint64
	Timeouts       uint64
	BilledGBSecond float64
}

type function struct {
	name    string
	handler Handler
	cfg     FunctionConfig

	mu   sync.Mutex
	warm int // idle warm containers
}

// Platform is one simulated FaaS region/account.
type Platform struct {
	profile *netsim.Profile

	sem chan struct{} // account concurrency

	mu        sync.Mutex
	functions map[string]*function
	rng       *rand.Rand
	stats     Stats
}

// Options configures a Platform.
type Options struct {
	// Profile supplies cold-start and dispatch latencies; nil means none.
	Profile *netsim.Profile
	// Concurrency is the account cap (default DefaultConcurrency).
	Concurrency int
	// Seed makes fault injection deterministic (default 1).
	Seed int64
}

// NewPlatform builds an empty platform.
func NewPlatform(opts Options) *Platform {
	if opts.Profile == nil {
		opts.Profile = netsim.Zero()
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = DefaultConcurrency
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &Platform{
		profile:   opts.Profile,
		sem:       make(chan struct{}, opts.Concurrency),
		functions: make(map[string]*function),
		rng:       rand.New(rand.NewSource(opts.Seed)),
	}
}

// Deploy registers (or replaces) a function.
func (p *Platform) Deploy(name string, handler Handler, cfg FunctionConfig) error {
	if name == "" {
		return errors.New("faas: function name must not be empty")
	}
	if handler == nil {
		return errors.New("faas: nil handler")
	}
	full, err := cfg.withDefaults()
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.functions[name] = &function{name: name, handler: handler, cfg: full}
	return nil
}

// Stats returns a snapshot of the counters.
func (p *Platform) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Invoke runs one synchronous (RequestResponse) invocation: it waits for a
// concurrency slot, provisions a container (cold start if none is warm),
// executes the handler under the function's timeout, and returns its
// result. Invoke never retries — retry policy belongs to the caller, like
// the cloud-thread layer in the paper (Section 4.4).
func (p *Platform) Invoke(ctx context.Context, name string, payload []byte) ([]byte, error) {
	p.mu.Lock()
	fn, ok := p.functions[name]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotDeployed, name)
	}

	// Concurrency admission.
	if fn.cfg.NoQueue {
		select {
		case p.sem <- struct{}{}:
		default:
			return nil, ErrThrottled
		}
	} else {
		select {
		case p.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	defer func() { <-p.sem }()

	// Container acquisition: reuse a warm container or pay a cold start.
	fn.mu.Lock()
	cold := fn.warm == 0
	if !cold {
		fn.warm--
	}
	fn.mu.Unlock()

	if cold {
		p.mu.Lock()
		p.stats.ColdStarts++
		p.mu.Unlock()
		if err := p.profile.Delay(ctx, p.profile.ColdStart); err != nil {
			return nil, err
		}
	} else {
		if err := p.profile.Delay(ctx, p.profile.InvokeOverhead); err != nil {
			return nil, err
		}
	}
	// The container returns to the warm pool whatever the outcome.
	defer func() {
		fn.mu.Lock()
		fn.warm++
		fn.mu.Unlock()
	}()

	// Fault injection, before user code like a sandbox-level failure.
	p.mu.Lock()
	p.stats.Invocations++
	failed := fn.cfg.FailureRate > 0 && p.rng.Float64() < fn.cfg.FailureRate
	p.mu.Unlock()
	if failed {
		p.recordFailure()
		return nil, fmt.Errorf("%w: %s", ErrInjectedFailure, name)
	}

	// Execute under the (scaled) timeout and bill modeled duration.
	realTimeout := p.profile.Scaled(fn.cfg.Timeout)
	if realTimeout <= 0 {
		realTimeout = fn.cfg.Timeout
	}
	runCtx, cancel := context.WithTimeout(ctx, realTimeout)
	defer cancel()

	start := time.Now()
	out, err := runHandler(runCtx, fn.handler, payload)
	elapsed := time.Since(start)

	p.mu.Lock()
	p.stats.BilledGBSecond += p.modeledSeconds(elapsed) * float64(fn.cfg.MemoryMB) / 1024.0
	p.mu.Unlock()

	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			p.mu.Lock()
			p.stats.Timeouts++
			p.mu.Unlock()
			return nil, fmt.Errorf("%w: %s after %v", ErrTimeout, name, fn.cfg.Timeout)
		}
		p.recordFailure()
		return nil, err
	}
	return out, nil
}

func (p *Platform) recordFailure() {
	p.mu.Lock()
	p.stats.Failures++
	p.mu.Unlock()
}

// modeledSeconds converts a measured wall-clock duration back to modeled
// time by dividing out the profile's compression factor.
func (p *Platform) modeledSeconds(d time.Duration) float64 {
	scale := p.profile.Scale
	if scale <= 0 {
		scale = 1
	}
	return d.Seconds() / scale
}

// runHandler isolates handler panics as errors, as a FaaS sandbox would.
func runHandler(ctx context.Context, h Handler, payload []byte) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("faas: handler panic: %v", r)
		}
	}()
	type result struct {
		out []byte
		err error
	}
	done := make(chan result, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- result{err: fmt.Errorf("faas: handler panic: %v", r)}
			}
		}()
		o, e := h(ctx, payload)
		done <- result{out: o, err: e}
	}()
	select {
	case r := <-done:
		return r.out, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// WarmContainers reports the idle container count for a function (tests).
func (p *Platform) WarmContainers(name string) int {
	p.mu.Lock()
	fn, ok := p.functions[name]
	p.mu.Unlock()
	if !ok {
		return 0
	}
	fn.mu.Lock()
	defer fn.mu.Unlock()
	return fn.warm
}

// Prewarm provisions n warm containers for a function so experiments can
// exclude cold starts, as the paper does ("FaaS cold starts are excluded
// due to a global barrier before measurement").
func (p *Platform) Prewarm(name string, n int) error {
	p.mu.Lock()
	fn, ok := p.functions[name]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotDeployed, name)
	}
	fn.mu.Lock()
	fn.warm += n
	fn.mu.Unlock()
	return nil
}
