// Package faas simulates a Function-as-a-Service platform with the
// operational behaviour of AWS Lambda that the paper depends on
// (Section 2.1): synchronous RequestResponse invocation, per-function
// container pools with cold starts, memory and execution-time limits, an
// account-level concurrency cap, and duration-based billing. Functions are
// Go closures; the simulated aspects are provisioning latency, limits, and
// cost accounting — the function body really executes.
package faas

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"time"

	"crucial/internal/netsim"
	"crucial/internal/telemetry"
)

// Default limits, mirroring AWS Lambda at the paper's time of writing.
const (
	// DefaultMemoryMB is the default function memory (the paper's logistic
	// regression setting: 1 full vCPU's worth).
	DefaultMemoryMB = 1792
	// MaxMemoryMB was Lambda's cap (3008 MB in 2019).
	MaxMemoryMB = 3008
	// DefaultTimeout is Lambda's maximum execution time (15 min), in
	// modeled time.
	DefaultTimeout = 15 * time.Minute
	// DefaultConcurrency is the account-level concurrent execution cap.
	DefaultConcurrency = 1000
)

// Errors returned by the platform.
var (
	// ErrNotDeployed is returned when invoking an unknown function.
	ErrNotDeployed = errors.New("faas: function not deployed")
	// ErrTimeout is returned when a function exceeds its timeout.
	ErrTimeout = errors.New("faas: function timed out")
	// ErrThrottled is returned when the concurrency cap is hit and the
	// function is configured not to queue.
	ErrThrottled = errors.New("faas: throttled, concurrency limit reached")
	// ErrInjectedFailure marks failures from the fault-injection hook.
	ErrInjectedFailure = errors.New("faas: injected invocation failure")
)

// Handler is a function entry point: payload in, payload out.
type Handler func(ctx context.Context, payload []byte) ([]byte, error)

// Injector is the seam for external fault-injection engines (the chaos
// package's Engine satisfies it without either package importing the
// other). The platform consults it on every invocation, before the
// per-function FailureRate dice.
type Injector interface {
	// InvocationFault returns a non-nil error to fail the invocation at
	// the sandbox level; the platform surfaces it as ErrInjectedFailure.
	InvocationFault(fn string) error
	// ContainerDelay returns an extra execution delay modeling a slow or
	// cold-throttled container; zero means none.
	ContainerDelay(fn string) time.Duration
}

// FunctionConfig describes one deployed function.
type FunctionConfig struct {
	// MemoryMB in [64, MaxMemoryMB]; defaults to DefaultMemoryMB.
	MemoryMB int
	// Timeout is the modeled execution limit; defaults to DefaultTimeout.
	Timeout time.Duration
	// FailureRate in [0,1) injects random invocation failures before the
	// handler runs, for retry-path testing.
	FailureRate float64
	// NoQueue makes the platform return ErrThrottled instead of waiting
	// when the concurrency cap is reached.
	NoQueue bool
}

func (c FunctionConfig) withDefaults() (FunctionConfig, error) {
	if c.MemoryMB == 0 {
		c.MemoryMB = DefaultMemoryMB
	}
	if c.MemoryMB < 64 || c.MemoryMB > MaxMemoryMB {
		return c, fmt.Errorf("faas: memory %d MB outside [64,%d]", c.MemoryMB, MaxMemoryMB)
	}
	if c.Timeout == 0 {
		c.Timeout = DefaultTimeout
	}
	if c.FailureRate < 0 || c.FailureRate >= 1 {
		return c, fmt.Errorf("faas: failure rate %v outside [0,1)", c.FailureRate)
	}
	return c, nil
}

// Stats aggregates platform counters. BilledGBSeconds uses modeled time,
// matching what Table 3 prices.
//
// Deprecated: Stats is a compatibility view over the platform's telemetry
// registry (see Metrics), which additionally carries latency histograms
// and throttle counts. Existing call sites keep working; new code should
// read the registry snapshot.
type Stats struct {
	Invocations    uint64
	ColdStarts     uint64
	Failures       uint64
	Timeouts       uint64
	BilledGBSecond float64
}

type function struct {
	name    string
	handler Handler
	cfg     FunctionConfig

	mu   sync.Mutex
	warm int // idle warm containers
}

// Platform is one simulated FaaS region/account.
type Platform struct {
	profile  *netsim.Profile
	log      *slog.Logger
	injector Injector

	sem chan struct{} // account concurrency

	mu        sync.Mutex
	functions map[string]*function
	rng       *rand.Rand

	// Telemetry: counters always live in a registry (a private one when
	// telemetry is disabled, so Stats keeps working at seed cost); spans,
	// histograms and extra timestamps are only taken when a shared
	// telemetry bundle was supplied (instrumented == true).
	tracer       *telemetry.Tracer
	metrics      *telemetry.Registry
	instrumented bool

	cInvocations *telemetry.Counter
	cColdStarts  *telemetry.Counter
	cFailures    *telemetry.Counter
	cTimeouts    *telemetry.Counter
	cThrottled   *telemetry.Counter
	fBilled      *telemetry.FloatCounter
	gInflight    *telemetry.Gauge
	hInvoke      *telemetry.Histogram
	hColdStart   *telemetry.Histogram
	hQueueWait   *telemetry.Histogram
}

// Options configures a Platform.
type Options struct {
	// Profile supplies cold-start and dispatch latencies; nil means none.
	Profile *netsim.Profile
	// Concurrency is the account cap (default DefaultConcurrency).
	Concurrency int
	// Seed makes fault injection deterministic (default 1).
	Seed int64
	// Telemetry, when non-nil, turns on full instrumentation: per-stage
	// spans (cold vs warm annotated) and latency histograms recorded into
	// the shared registry. Nil keeps the platform at seed overhead.
	Telemetry *telemetry.Telemetry
	// Injector, when non-nil, is consulted on every invocation for
	// chaos-driven faults (see Injector).
	Injector Injector
}

// NewPlatform builds an empty platform.
func NewPlatform(opts Options) *Platform {
	if opts.Profile == nil {
		opts.Profile = netsim.Zero()
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = DefaultConcurrency
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	p := &Platform{
		profile:   opts.Profile,
		log:       telemetry.Logger(telemetry.CompFaaS),
		injector:  opts.Injector,
		sem:       make(chan struct{}, opts.Concurrency),
		functions: make(map[string]*function),
		rng:       rand.New(rand.NewSource(opts.Seed)),
	}
	if opts.Telemetry != nil {
		p.instrumented = true
		p.tracer = opts.Telemetry.Tracer()
		p.metrics = opts.Telemetry.Metrics()
		p.gInflight = p.metrics.Gauge(telemetry.MetFaaSInflight)
		p.hInvoke = p.metrics.Histogram(telemetry.HistFaaSInvoke)
		p.hColdStart = p.metrics.Histogram(telemetry.HistFaaSColdStart)
		p.hQueueWait = p.metrics.Histogram(telemetry.HistFaaSQueueWait)
	} else {
		p.metrics = telemetry.NewRegistry()
	}
	p.cInvocations = p.metrics.Counter(telemetry.MetFaaSInvocations)
	p.cColdStarts = p.metrics.Counter(telemetry.MetFaaSColdStarts)
	p.cFailures = p.metrics.Counter(telemetry.MetFaaSFailures)
	p.cTimeouts = p.metrics.Counter(telemetry.MetFaaSTimeouts)
	p.cThrottled = p.metrics.Counter(telemetry.MetFaaSThrottled)
	p.fBilled = p.metrics.Float(telemetry.MetFaaSBilledGBs)
	return p
}

// Deploy registers (or replaces) a function.
func (p *Platform) Deploy(name string, handler Handler, cfg FunctionConfig) error {
	if name == "" {
		return errors.New("faas: function name must not be empty")
	}
	if handler == nil {
		return errors.New("faas: nil handler")
	}
	full, err := cfg.withDefaults()
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.functions[name] = &function{name: name, handler: handler, cfg: full}
	return nil
}

// Stats returns a snapshot of the classic counters.
//
// Deprecated: use Metrics().Snapshot() for the full registry including
// latency histograms; Stats remains as a thin view for old call sites.
func (p *Platform) Stats() Stats {
	return Stats{
		Invocations:    p.cInvocations.Value(),
		ColdStarts:     p.cColdStarts.Value(),
		Failures:       p.cFailures.Value(),
		Timeouts:       p.cTimeouts.Value(),
		BilledGBSecond: p.fBilled.Value(),
	}
}

// Metrics exposes the platform's metrics registry (the private fallback
// registry when no telemetry bundle was configured).
func (p *Platform) Metrics() *telemetry.Registry { return p.metrics }

// Invoke runs one synchronous (RequestResponse) invocation: it waits for a
// concurrency slot, provisions a container (cold start if none is warm),
// executes the handler under the function's timeout, and returns its
// result. Invoke never retries — retry policy belongs to the caller, like
// the cloud-thread layer in the paper (Section 4.4).
func (p *Platform) Invoke(ctx context.Context, name string, payload []byte) ([]byte, error) {
	p.mu.Lock()
	fn, ok := p.functions[name]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotDeployed, name)
	}

	// Telemetry: one faas.invoke span per invocation (child of the
	// caller's cloud-thread span, which arrives through ctx), annotated
	// cold/warm, with queue-wait and cold-start stage timings. All of
	// this is skipped when the platform is uninstrumented.
	var span *telemetry.Span
	var invokeStart time.Time
	if p.instrumented {
		invokeStart = time.Now()
		ctx, span = p.tracer.Start(ctx, telemetry.SpanFaaSInvoke)
		span.SetAttr(telemetry.AttrFunction, name)
		p.gInflight.Add(1)
		defer func() {
			p.gInflight.Add(-1)
			p.hInvoke.Observe(time.Since(invokeStart))
			span.End()
		}()
	}

	// Concurrency admission.
	if fn.cfg.NoQueue {
		select {
		case p.sem <- struct{}{}:
		default:
			p.cThrottled.Inc()
			span.SetAttr(telemetry.AttrError, "throttled")
			p.log.DebugContext(ctx, "invocation throttled", "function", name)
			return nil, ErrThrottled
		}
	} else {
		if p.instrumented {
			queued := time.Now()
			select {
			case p.sem <- struct{}{}:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			wait := time.Since(queued)
			p.hQueueWait.Observe(wait)
			span.AddTiming(telemetry.TimingQueueWait, wait)
		} else {
			select {
			case p.sem <- struct{}{}:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	defer func() { <-p.sem }()

	// Container acquisition: reuse a warm container or pay a cold start.
	fn.mu.Lock()
	cold := fn.warm == 0
	if !cold {
		fn.warm--
	}
	fn.mu.Unlock()

	if cold {
		p.cColdStarts.Inc()
		span.SetAttr(telemetry.AttrCold, "true")
		p.log.DebugContext(ctx, "cold start", "function", name)
		if p.instrumented {
			provision := time.Now()
			if err := p.profile.Delay(ctx, p.profile.ColdStart); err != nil {
				return nil, err
			}
			d := time.Since(provision)
			p.hColdStart.Observe(d)
			span.AddTiming(telemetry.TimingColdStart, d)
		} else if err := p.profile.Delay(ctx, p.profile.ColdStart); err != nil {
			return nil, err
		}
	} else {
		span.SetAttr(telemetry.AttrCold, "false")
		if err := p.profile.Delay(ctx, p.profile.InvokeOverhead); err != nil {
			return nil, err
		}
	}
	// The container returns to the warm pool whatever the outcome.
	defer func() {
		fn.mu.Lock()
		fn.warm++
		fn.mu.Unlock()
	}()

	// Fault injection, before user code like a sandbox-level failure.
	// Chaos-engine faults first (they carry their own schedule), then the
	// function's static FailureRate dice.
	p.cInvocations.Inc()
	if p.injector != nil {
		if ferr := p.injector.InvocationFault(name); ferr != nil {
			p.cFailures.Inc()
			p.fnFailures(name).Inc()
			span.SetAttr(telemetry.AttrError, "injected failure")
			p.log.DebugContext(ctx, "chaos-injected invocation failure",
				"function", name, "err", ferr)
			return nil, fmt.Errorf("%w: %s: %v", ErrInjectedFailure, name, ferr)
		}
		if d := p.injector.ContainerDelay(name); d > 0 {
			// A slow container: the handler still runs, just later. The
			// delay bites the caller's deadline like real sandbox jitter.
			if err := netsim.Sleep(ctx, d); err != nil {
				return nil, err
			}
		}
	}
	p.mu.Lock()
	failed := fn.cfg.FailureRate > 0 && p.rng.Float64() < fn.cfg.FailureRate
	p.mu.Unlock()
	if failed {
		p.cFailures.Inc()
		p.fnFailures(name).Inc()
		span.SetAttr(telemetry.AttrError, "injected failure")
		p.log.DebugContext(ctx, "injected invocation failure", "function", name)
		return nil, fmt.Errorf("%w: %s", ErrInjectedFailure, name)
	}

	// Execute under the (scaled) timeout and bill modeled duration.
	realTimeout := p.profile.Scaled(fn.cfg.Timeout)
	if realTimeout <= 0 {
		realTimeout = fn.cfg.Timeout
	}
	runCtx, cancel := context.WithTimeout(ctx, realTimeout)
	defer cancel()

	start := time.Now()
	out, err := runHandler(runCtx, fn.handler, payload)
	elapsed := time.Since(start)

	p.fBilled.Add(p.modeledSeconds(elapsed) * float64(fn.cfg.MemoryMB) / 1024.0)

	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			p.cTimeouts.Inc()
			p.fnTimeouts(name).Inc()
			span.SetAttr(telemetry.AttrError, "timeout")
			p.log.WarnContext(ctx, "function timed out",
				"function", name, "timeout", fn.cfg.Timeout)
			return nil, fmt.Errorf("%w: %s after %v", ErrTimeout, name, fn.cfg.Timeout)
		}
		p.cFailures.Inc()
		p.fnFailures(name).Inc()
		span.SetAttr(telemetry.AttrError, err.Error())
		return nil, err
	}
	return out, nil
}

// fnFailures and fnTimeouts return the per-function failure/timeout
// counters, exported as crucial_faas_failures_by_fn_<fn>_total and
// crucial_faas_timeouts_by_fn_<fn>_total so dashboards can tell which
// function the fleet is losing invocations on.
func (p *Platform) fnFailures(name string) *telemetry.Counter {
	return p.metrics.Counter(telemetry.MetFaaSFailurePrefix + name)
}

func (p *Platform) fnTimeouts(name string) *telemetry.Counter {
	return p.metrics.Counter(telemetry.MetFaaSTimeoutPrefix + name)
}

// modeledSeconds converts a measured wall-clock duration back to modeled
// time by dividing out the profile's compression factor.
func (p *Platform) modeledSeconds(d time.Duration) float64 {
	scale := p.profile.Scale
	if scale <= 0 {
		scale = 1
	}
	return d.Seconds() / scale
}

// runHandler isolates handler panics as errors, as a FaaS sandbox would.
func runHandler(ctx context.Context, h Handler, payload []byte) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("faas: handler panic: %v", r)
		}
	}()
	type result struct {
		out []byte
		err error
	}
	done := make(chan result, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- result{err: fmt.Errorf("faas: handler panic: %v", r)}
			}
		}()
		o, e := h(ctx, payload)
		done <- result{out: o, err: e}
	}()
	select {
	case r := <-done:
		return r.out, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// WarmContainers reports the idle container count for a function (tests).
func (p *Platform) WarmContainers(name string) int {
	p.mu.Lock()
	fn, ok := p.functions[name]
	p.mu.Unlock()
	if !ok {
		return 0
	}
	fn.mu.Lock()
	defer fn.mu.Unlock()
	return fn.warm
}

// Prewarm provisions n warm containers for a function so experiments can
// exclude cold starts, as the paper does ("FaaS cold starts are excluded
// due to a global barrier before measurement").
func (p *Platform) Prewarm(name string, n int) error {
	p.mu.Lock()
	fn, ok := p.functions[name]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotDeployed, name)
	}
	fn.mu.Lock()
	fn.warm += n
	fn.mu.Unlock()
	return nil
}
