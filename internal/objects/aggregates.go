package objects

import (
	"fmt"

	"crucial/internal/core"
)

// Aggregate objects support the paper's "fast aggregates through method
// call shipping" (Section 4.2): instead of pulling partial results to the
// client and reducing locally (an O(N^2) AllReduce), cloud threads push
// small granules into a server-side accumulator — O(N) messages total.

// DoubleAdder accumulates float64 contributions.
type DoubleAdder struct {
	sum   float64
	count int64
}

// NewDoubleAdder builds a zeroed adder.
func NewDoubleAdder(_ []any) (core.Object, error) {
	return &DoubleAdder{}, nil
}

// Call dispatches an adder method.
func (d *DoubleAdder) Call(_ core.Ctl, method string, args []any) ([]any, error) {
	switch method {
	case "Add":
		v, err := core.Arg[float64](args, 0)
		if err != nil {
			return nil, err
		}
		d.sum += v
		d.count++
		return nil, nil
	case "Sum":
		return []any{d.sum}, nil
	case "Count":
		return []any{d.count}, nil
	case "SumThenReset":
		s := d.sum
		d.sum, d.count = 0, 0
		return []any{s}, nil
	case "Reset":
		d.sum, d.count = 0, 0
		return nil, nil
	default:
		return nil, errUnknownMethod("DoubleAdder", method)
	}
}

type adderState struct {
	Sum   float64
	Count int64
}

// Snapshot encodes the accumulator.
func (d *DoubleAdder) Snapshot() ([]byte, error) {
	return core.EncodeValue(adderState{Sum: d.sum, Count: d.count})
}

// Restore replaces the accumulator.
func (d *DoubleAdder) Restore(data []byte) error {
	var s adderState
	if err := core.DecodeValue(data, &s); err != nil {
		return err
	}
	d.sum, d.count = s.Sum, s.Count
	return nil
}

// AtomicDoubleArray is a fixed-length array of float64 with element-wise
// and bulk aggregate operations. Logistic regression shares its weight
// vector through one of these: workers AddAll their sub-gradients, the
// server aggregates in place. Init: length (int).
type AtomicDoubleArray struct {
	data []float64
}

// NewAtomicDoubleArray builds the array from its init arguments.
func NewAtomicDoubleArray(init []any) (core.Object, error) {
	n, err := optInt64(init, 0, 0)
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("objects: negative double array length %d", n)
	}
	a := &AtomicDoubleArray{data: make([]float64, n)}
	if len(init) > 1 {
		preload, err := core.Arg[[]float64](init, 1)
		if err != nil {
			return nil, err
		}
		copy(a.data, preload)
	}
	return a, nil
}

// Call dispatches a double-array method.
func (a *AtomicDoubleArray) Call(_ core.Ctl, method string, args []any) ([]any, error) {
	switch method {
	case "Length":
		return []any{int64(len(a.data))}, nil
	case "Get":
		i, err := core.Int64Arg(args, 0)
		if err != nil {
			return nil, err
		}
		if i < 0 || i >= int64(len(a.data)) {
			return nil, fmt.Errorf("objects: index %d out of range [0,%d)", i, len(a.data))
		}
		return []any{a.data[i]}, nil
	case "Set":
		i, err := core.Int64Arg(args, 0)
		if err != nil {
			return nil, err
		}
		v, err := core.Arg[float64](args, 1)
		if err != nil {
			return nil, err
		}
		if i < 0 || i >= int64(len(a.data)) {
			return nil, fmt.Errorf("objects: index %d out of range [0,%d)", i, len(a.data))
		}
		a.data[i] = v
		return nil, nil
	case "AddAndGet":
		i, err := core.Int64Arg(args, 0)
		if err != nil {
			return nil, err
		}
		v, err := core.Arg[float64](args, 1)
		if err != nil {
			return nil, err
		}
		if i < 0 || i >= int64(len(a.data)) {
			return nil, fmt.Errorf("objects: index %d out of range [0,%d)", i, len(a.data))
		}
		a.data[i] += v
		return []any{a.data[i]}, nil
	case "GetAll":
		out := make([]float64, len(a.data))
		copy(out, a.data)
		return []any{out}, nil
	case "SetAll":
		v, err := core.Arg[[]float64](args, 0)
		if err != nil {
			return nil, err
		}
		a.data = make([]float64, len(v))
		copy(a.data, v)
		return nil, nil
	case "AddAll":
		v, err := core.Arg[[]float64](args, 0)
		if err != nil {
			return nil, err
		}
		if len(v) != len(a.data) {
			return nil, fmt.Errorf("objects: AddAll length %d != array length %d", len(v), len(a.data))
		}
		for i := range v {
			a.data[i] += v[i]
		}
		return nil, nil
	case "ScaleAll":
		f, err := core.Arg[float64](args, 0)
		if err != nil {
			return nil, err
		}
		for i := range a.data {
			a.data[i] *= f
		}
		return nil, nil
	case "FillZero":
		for i := range a.data {
			a.data[i] = 0
		}
		return nil, nil
	default:
		return nil, errUnknownMethod("AtomicDoubleArray", method)
	}
}

// Snapshot encodes the array.
func (a *AtomicDoubleArray) Snapshot() ([]byte, error) { return core.EncodeValue(a.data) }

// Restore replaces the array.
func (a *AtomicDoubleArray) Restore(data []byte) error { return core.DecodeValue(data, &a.data) }

var (
	_ core.Object      = (*DoubleAdder)(nil)
	_ core.Snapshotter = (*DoubleAdder)(nil)
	_ core.Object      = (*AtomicDoubleArray)(nil)
	_ core.Snapshotter = (*AtomicDoubleArray)(nil)
)
