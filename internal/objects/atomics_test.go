package objects

import (
	"errors"
	"testing"
	"testing/quick"

	"crucial/internal/core"
)

func mustNew(t *testing.T, f core.Factory, init ...any) core.Object {
	t.Helper()
	obj, err := f(init)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

// call invokes a method through the monitor and returns its first result as
// type T, failing the test on error or type mismatch.
func call[T any](t *testing.T, m *testMonitor, obj core.Object, method string, args ...any) T {
	t.Helper()
	res, err := m.Call(obj, method, args...)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 1 {
		t.Fatalf("%s returned no results", method)
	}
	v, ok := res[0].(T)
	if !ok {
		var zero T
		t.Fatalf("%s result type %T, want %T", method, res[0], zero)
	}
	return v
}

func TestAtomicInt64Basics(t *testing.T) {
	m := newTestMonitor()
	a := mustNew(t, NewAtomicInt64)

	if got := call[int64](t, m, a, "Get"); got != 0 {
		t.Fatalf("initial Get = %d", got)
	}
	if _, err := m.Call(a, "Set", int64(10)); err != nil {
		t.Fatal(err)
	}
	if got := call[int64](t, m, a, "AddAndGet", int64(5)); got != 15 {
		t.Fatalf("AddAndGet = %d, want 15", got)
	}
	if got := call[int64](t, m, a, "GetAndAdd", int64(5)); got != 15 {
		t.Fatalf("GetAndAdd returned %d, want old value 15", got)
	}
	if got := call[int64](t, m, a, "Get"); got != 20 {
		t.Fatalf("Get after GetAndAdd = %d, want 20", got)
	}
	if got := call[int64](t, m, a, "IncrementAndGet"); got != 21 {
		t.Fatalf("IncrementAndGet = %d", got)
	}
	if got := call[int64](t, m, a, "DecrementAndGet"); got != 20 {
		t.Fatalf("DecrementAndGet = %d", got)
	}
	if got := call[int64](t, m, a, "GetAndSet", int64(100)); got != 20 {
		t.Fatalf("GetAndSet returned %d", got)
	}
}

func TestAtomicInt64InitialValue(t *testing.T) {
	m := newTestMonitor()
	a := mustNew(t, NewAtomicInt64, int64(42))
	if got := call[int64](t, m, a, "Get"); got != 42 {
		t.Fatalf("initial value = %d, want 42", got)
	}
}

func TestAtomicInt64CompareAndSet(t *testing.T) {
	m := newTestMonitor()
	a := mustNew(t, NewAtomicInt64, int64(5))
	if ok := call[bool](t, m, a, "CompareAndSet", int64(5), int64(9)); !ok {
		t.Fatal("CAS with matching expect failed")
	}
	if ok := call[bool](t, m, a, "CompareAndSet", int64(5), int64(1)); ok {
		t.Fatal("CAS with stale expect succeeded")
	}
	if got := call[int64](t, m, a, "Get"); got != 9 {
		t.Fatalf("value after CAS = %d, want 9", got)
	}
}

func TestAtomicInt64AcceptsPlainInt(t *testing.T) {
	m := newTestMonitor()
	a := mustNew(t, NewAtomicInt64)
	if got := call[int64](t, m, a, "AddAndGet", 7); got != 7 {
		t.Fatalf("AddAndGet(int) = %d", got)
	}
}

func TestAtomicInt64Multiply(t *testing.T) {
	m := newTestMonitor()
	a := mustNew(t, NewAtomicInt64, int64(3))
	if got := call[int64](t, m, a, "Multiply", int64(4)); got != 12 {
		t.Fatalf("Multiply = %d", got)
	}
	if _, err := m.Call(a, "MultiplyLoop", int64(3), int64(100)); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicInt64UnknownMethod(t *testing.T) {
	m := newTestMonitor()
	a := mustNew(t, NewAtomicInt64)
	if _, err := m.Call(a, "Nope"); !errors.Is(err, core.ErrUnknownMethod) {
		t.Fatalf("want ErrUnknownMethod, got %v", err)
	}
}

func TestAtomicInt64BadArgs(t *testing.T) {
	m := newTestMonitor()
	a := mustNew(t, NewAtomicInt64)
	if _, err := m.Call(a, "Set", "not a number"); err == nil {
		t.Fatal("Set accepted a string")
	}
	if _, err := m.Call(a, "AddAndGet"); err == nil {
		t.Fatal("AddAndGet accepted no args")
	}
}

func TestAtomicInt64Snapshot(t *testing.T) {
	m := newTestMonitor()
	a := mustNew(t, NewAtomicInt64, int64(77)).(*AtomicInt64)
	data, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := mustNew(t, NewAtomicInt64).(*AtomicInt64)
	if err := b.Restore(data); err != nil {
		t.Fatal(err)
	}
	if got := call[int64](t, m, b, "Get"); got != 77 {
		t.Fatalf("restored value = %d", got)
	}
}

// Property: a random op sequence matches a pure int64 model.
func TestAtomicInt64ModelProperty(t *testing.T) {
	m := newTestMonitor()
	f := func(ops []int8, deltas []int16) bool {
		a := &AtomicInt64{}
		var model int64
		for i, op := range ops {
			var d int64 = 1
			if i < len(deltas) {
				d = int64(deltas[i])
			}
			switch op % 4 {
			case 0:
				res, err := m.Call(a, "AddAndGet", d)
				model += d
				if err != nil || res[0].(int64) != model {
					return false
				}
			case 1:
				res, err := m.Call(a, "IncrementAndGet")
				model++
				if err != nil || res[0].(int64) != model {
					return false
				}
			case 2:
				_, err := m.Call(a, "Set", d)
				model = d
				if err != nil {
					return false
				}
			case 3:
				res, err := m.Call(a, "Get")
				if err != nil || res[0].(int64) != model {
					return false
				}
			}
		}
		res, err := m.Call(a, "Get")
		return err == nil && res[0].(int64) == model
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicBoolean(t *testing.T) {
	m := newTestMonitor()
	b := mustNew(t, NewAtomicBoolean)
	if got := call[bool](t, m, b, "Get"); got {
		t.Fatal("initial value true")
	}
	if _, err := m.Call(b, "Set", true); err != nil {
		t.Fatal(err)
	}
	if got := call[bool](t, m, b, "GetAndSet", false); !got {
		t.Fatal("GetAndSet old value wrong")
	}
	if ok := call[bool](t, m, b, "CompareAndSet", false, true); !ok {
		t.Fatal("CAS failed")
	}
	if ok := call[bool](t, m, b, "CompareAndSet", false, true); ok {
		t.Fatal("stale CAS succeeded")
	}
}

func TestAtomicBooleanInit(t *testing.T) {
	m := newTestMonitor()
	b := mustNew(t, NewAtomicBoolean, true)
	if got := call[bool](t, m, b, "Get"); !got {
		t.Fatal("init value lost")
	}
}

func TestAtomicReference(t *testing.T) {
	m := newTestMonitor()
	r := mustNew(t, NewAtomicReference)
	if got := call[bool](t, m, r, "IsNil"); !got {
		t.Fatal("fresh reference not nil")
	}
	if _, err := m.Call(r, "Set", "hello"); err != nil {
		t.Fatal(err)
	}
	if got := call[string](t, m, r, "Get"); got != "hello" {
		t.Fatalf("Get = %q", got)
	}
	if got := call[string](t, m, r, "GetAndSet", "world"); got != "hello" {
		t.Fatalf("GetAndSet old = %q", got)
	}
	if ok := call[bool](t, m, r, "CompareAndSet", "world", "done"); !ok {
		t.Fatal("CAS failed on equal value")
	}
	if ok := call[bool](t, m, r, "CompareAndSet", "world", "x"); ok {
		t.Fatal("stale CAS succeeded")
	}
}

func TestAtomicReferenceSnapshot(t *testing.T) {
	m := newTestMonitor()
	r := mustNew(t, NewAtomicReference, []float64{1, 2}).(*AtomicReference)
	data, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r2 := mustNew(t, NewAtomicReference).(*AtomicReference)
	if err := r2.Restore(data); err != nil {
		t.Fatal(err)
	}
	got := call[[]float64](t, m, r2, "Get")
	if len(got) != 2 || got[1] != 2 {
		t.Fatalf("restored = %v", got)
	}
}

func TestAtomicByteArray(t *testing.T) {
	m := newTestMonitor()
	a := mustNew(t, NewAtomicByteArray, int64(4))
	if got := call[int64](t, m, a, "Length"); got != 4 {
		t.Fatalf("Length = %d", got)
	}
	if _, err := m.Call(a, "Set", int64(2), int64(0xAB)); err != nil {
		t.Fatal(err)
	}
	if got := call[int64](t, m, a, "Get", int64(2)); got != 0xAB {
		t.Fatalf("Get = %#x", got)
	}
	all := call[[]byte](t, m, a, "GetAll")
	if all[2] != 0xAB || len(all) != 4 {
		t.Fatalf("GetAll = %v", all)
	}
	if _, err := m.Call(a, "SetAll", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if got := call[int64](t, m, a, "Length"); got != 3 {
		t.Fatalf("Length after SetAll = %d", got)
	}
}

func TestAtomicByteArrayBounds(t *testing.T) {
	m := newTestMonitor()
	a := mustNew(t, NewAtomicByteArray, int64(2))
	if _, err := m.Call(a, "Get", int64(5)); err == nil {
		t.Fatal("out-of-range Get accepted")
	}
	if _, err := m.Call(a, "Set", int64(-1), int64(0)); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := NewAtomicByteArray([]any{int64(-3)}); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestAtomicByteArrayPreload(t *testing.T) {
	m := newTestMonitor()
	a := mustNew(t, NewAtomicByteArray, int64(3), []byte{9, 8, 7})
	if got := call[int64](t, m, a, "Get", int64(0)); got != 9 {
		t.Fatalf("preload lost: %d", got)
	}
}
