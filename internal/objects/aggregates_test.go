package objects

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDoubleAdder(t *testing.T) {
	m := newTestMonitor()
	d := mustNew(t, NewDoubleAdder)
	for _, v := range []float64{1.5, 2.5, -1.0} {
		if _, err := m.Call(d, "Add", v); err != nil {
			t.Fatal(err)
		}
	}
	if got := call[float64](t, m, d, "Sum"); got != 3.0 {
		t.Fatalf("Sum = %v", got)
	}
	if got := call[int64](t, m, d, "Count"); got != 3 {
		t.Fatalf("Count = %d", got)
	}
	if got := call[float64](t, m, d, "SumThenReset"); got != 3.0 {
		t.Fatalf("SumThenReset = %v", got)
	}
	if got := call[float64](t, m, d, "Sum"); got != 0 {
		t.Fatalf("Sum after reset = %v", got)
	}
}

func TestDoubleAdderSnapshot(t *testing.T) {
	m := newTestMonitor()
	d := mustNew(t, NewDoubleAdder).(*DoubleAdder)
	_, _ = m.Call(d, "Add", 4.25)
	data, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	d2 := mustNew(t, NewDoubleAdder).(*DoubleAdder)
	if err := d2.Restore(data); err != nil {
		t.Fatal(err)
	}
	if got := call[float64](t, m, d2, "Sum"); got != 4.25 {
		t.Fatalf("restored Sum = %v", got)
	}
	if got := call[int64](t, m, d2, "Count"); got != 1 {
		t.Fatalf("restored Count = %d", got)
	}
}

func TestAtomicDoubleArrayBasics(t *testing.T) {
	m := newTestMonitor()
	a := mustNew(t, NewAtomicDoubleArray, int64(3))
	if got := call[int64](t, m, a, "Length"); got != 3 {
		t.Fatalf("Length = %d", got)
	}
	if _, err := m.Call(a, "Set", int64(1), 2.5); err != nil {
		t.Fatal(err)
	}
	if got := call[float64](t, m, a, "Get", int64(1)); got != 2.5 {
		t.Fatalf("Get = %v", got)
	}
	if got := call[float64](t, m, a, "AddAndGet", int64(1), 0.5); got != 3.0 {
		t.Fatalf("AddAndGet = %v", got)
	}
	if _, err := m.Call(a, "AddAll", []float64{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	all := call[[]float64](t, m, a, "GetAll")
	want := []float64{1, 4, 1}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("GetAll = %v, want %v", all, want)
		}
	}
	if _, err := m.Call(a, "ScaleAll", 2.0); err != nil {
		t.Fatal(err)
	}
	if got := call[float64](t, m, a, "Get", int64(0)); got != 2 {
		t.Fatalf("after ScaleAll = %v", got)
	}
	if _, err := m.Call(a, "FillZero"); err != nil {
		t.Fatal(err)
	}
	if got := call[float64](t, m, a, "Get", int64(2)); got != 0 {
		t.Fatalf("after FillZero = %v", got)
	}
}

func TestAtomicDoubleArrayErrors(t *testing.T) {
	m := newTestMonitor()
	a := mustNew(t, NewAtomicDoubleArray, int64(2))
	if _, err := m.Call(a, "Get", int64(9)); err == nil {
		t.Fatal("out-of-range Get accepted")
	}
	if _, err := m.Call(a, "AddAll", []float64{1}); err == nil {
		t.Fatal("length-mismatched AddAll accepted")
	}
	if _, err := NewAtomicDoubleArray([]any{int64(-1)}); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestAtomicDoubleArrayPreload(t *testing.T) {
	m := newTestMonitor()
	a := mustNew(t, NewAtomicDoubleArray, int64(2), []float64{3.5, 4.5})
	if got := call[float64](t, m, a, "Get", int64(1)); got != 4.5 {
		t.Fatalf("preload lost: %v", got)
	}
}

func TestAtomicDoubleArraySnapshot(t *testing.T) {
	m := newTestMonitor()
	a := mustNew(t, NewAtomicDoubleArray, int64(2), []float64{1, 2}).(*AtomicDoubleArray)
	data, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := mustNew(t, NewAtomicDoubleArray, int64(0)).(*AtomicDoubleArray)
	if err := b.Restore(data); err != nil {
		t.Fatal(err)
	}
	if got := call[float64](t, m, b, "Get", int64(1)); got != 2 {
		t.Fatalf("restored = %v", got)
	}
}

// Property: AddAll over random vectors equals element-wise sum.
func TestAtomicDoubleArrayAddAllProperty(t *testing.T) {
	m := newTestMonitor()
	f := func(rounds uint8, seed int64) bool {
		const n = 4
		a := mustNewQuick(NewAtomicDoubleArray) // zero length
		_, _ = m.Call(a, "SetAll", make([]float64, n))
		model := make([]float64, n)
		r := seed
		next := func() float64 {
			r = r*6364136223846793005 + 1442695040888963407
			return float64(r%1000) / 10.0
		}
		for i := 0; i < int(rounds%16); i++ {
			v := make([]float64, n)
			for j := range v {
				v[j] = next()
			}
			if _, err := m.Call(a, "AddAll", v); err != nil {
				return false
			}
			for j := range v {
				model[j] += v[j]
			}
		}
		res, err := m.Call(a, "GetAll")
		if err != nil {
			return false
		}
		got := res[0].([]float64)
		for j := range model {
			if math.Abs(got[j]-model[j]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestKVCell(t *testing.T) {
	m := newTestMonitor()
	c := mustNew(t, NewKV)
	res, err := m.Call(c, "Get")
	if err != nil {
		t.Fatal(err)
	}
	if res[1].(bool) {
		t.Fatal("fresh cell reports data")
	}
	if got := call[bool](t, m, c, "Exists"); got {
		t.Fatal("fresh cell exists")
	}
	if _, err := m.Call(c, "Put", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	res, _ = m.Call(c, "Get")
	if string(res[0].([]byte)) != "payload" || !res[1].(bool) {
		t.Fatalf("Get = %v", res)
	}
	if _, err := m.Call(c, "Delete"); err != nil {
		t.Fatal(err)
	}
	if got := call[bool](t, m, c, "Exists"); got {
		t.Fatal("cell exists after delete")
	}
}

func TestKVGetReturnsCopy(t *testing.T) {
	m := newTestMonitor()
	c := mustNew(t, NewKV)
	_, _ = m.Call(c, "Put", []byte{1, 2, 3})
	res, _ := m.Call(c, "Get")
	res[0].([]byte)[0] = 99
	res2, _ := m.Call(c, "Get")
	if res2[0].([]byte)[0] != 1 {
		t.Fatal("Get leaked internal buffer")
	}
}

func TestKVSnapshot(t *testing.T) {
	c := mustNewQuick(NewKV).(*KV)
	m := newTestMonitor()
	_, _ = m.Call(c, "Put", []byte("x"))
	data, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	c2 := mustNewQuick(NewKV).(*KV)
	if err := c2.Restore(data); err != nil {
		t.Fatal(err)
	}
	res, _ := m.Call(c2, "Get")
	if !res[1].(bool) || string(res[0].([]byte)) != "x" {
		t.Fatalf("restored cell = %v", res)
	}
}
