package objects

import (
	"fmt"
	"testing"
	"testing/quick"

	"crucial/internal/core"
)

func TestListBasics(t *testing.T) {
	m := newTestMonitor()
	l := mustNew(t, NewList)
	if got := call[int64](t, m, l, "Size"); got != 0 {
		t.Fatalf("fresh Size = %d", got)
	}
	if got := call[int64](t, m, l, "Add", "a"); got != 0 {
		t.Fatalf("Add index = %d", got)
	}
	if got := call[int64](t, m, l, "Add", "b"); got != 1 {
		t.Fatalf("Add index = %d", got)
	}
	if got := call[string](t, m, l, "Get", int64(1)); got != "b" {
		t.Fatalf("Get(1) = %q", got)
	}
	if got := call[string](t, m, l, "Set", int64(0), "z"); got != "a" {
		t.Fatalf("Set old = %q", got)
	}
	if ok := call[bool](t, m, l, "Contains", "z"); !ok {
		t.Fatal("Contains missed value")
	}
	if ok := call[bool](t, m, l, "Contains", "nope"); ok {
		t.Fatal("Contains found ghost")
	}
	if got := call[string](t, m, l, "Remove", int64(0)); got != "z" {
		t.Fatalf("Remove = %q", got)
	}
	if got := call[int64](t, m, l, "Size"); got != 1 {
		t.Fatalf("Size after remove = %d", got)
	}
	if _, err := m.Call(l, "Clear"); err != nil {
		t.Fatal(err)
	}
	if got := call[int64](t, m, l, "Size"); got != 0 {
		t.Fatalf("Size after clear = %d", got)
	}
}

func TestListGetAllIsCopy(t *testing.T) {
	m := newTestMonitor()
	l := mustNew(t, NewList)
	_, _ = m.Call(l, "Add", int64(1))
	all := call[[]any](t, m, l, "GetAll")
	all[0] = int64(99)
	if got := call[int64](t, m, l, "Get", int64(0)); got != 1 {
		t.Fatal("GetAll leaked internal slice")
	}
}

func TestListBounds(t *testing.T) {
	m := newTestMonitor()
	l := mustNew(t, NewList)
	if _, err := m.Call(l, "Get", int64(0)); err == nil {
		t.Fatal("Get on empty list accepted")
	}
	if _, err := m.Call(l, "Remove", int64(3)); err == nil {
		t.Fatal("Remove out of range accepted")
	}
	if _, err := m.Call(l, "Set", int64(0), "x"); err == nil {
		t.Fatal("Set out of range accepted")
	}
}

func TestListSnapshot(t *testing.T) {
	m := newTestMonitor()
	l := mustNew(t, NewList).(*List)
	_, _ = m.Call(l, "Add", "x")
	_, _ = m.Call(l, "Add", int64(2))
	data, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	l2 := mustNew(t, NewList).(*List)
	if err := l2.Restore(data); err != nil {
		t.Fatal(err)
	}
	if got := call[int64](t, m, l2, "Size"); got != 2 {
		t.Fatalf("restored size = %d", got)
	}
	if got := call[string](t, m, l2, "Get", int64(0)); got != "x" {
		t.Fatalf("restored item = %q", got)
	}
}

func TestMapBasics(t *testing.T) {
	m := newTestMonitor()
	mp := mustNew(t, NewMap)
	res, err := m.Call(mp, "Put", "k1", int64(1))
	if err != nil {
		t.Fatal(err)
	}
	if had := res[1].(bool); had {
		t.Fatal("fresh Put reported prior value")
	}
	res, err = m.Call(mp, "Get", "k1")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int64) != 1 || !res[1].(bool) {
		t.Fatalf("Get = %v", res)
	}
	res, err = m.Call(mp, "Get", "missing")
	if err != nil {
		t.Fatal(err)
	}
	if res[1].(bool) {
		t.Fatal("Get on missing key reported present")
	}
	if ok := call[bool](t, m, mp, "ContainsKey", "k1"); !ok {
		t.Fatal("ContainsKey missed")
	}
	if got := call[int64](t, m, mp, "Size"); got != 1 {
		t.Fatalf("Size = %d", got)
	}
	res, err = m.Call(mp, "Remove", "k1")
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(int64) != 1 || !res[1].(bool) {
		t.Fatalf("Remove = %v", res)
	}
	if got := call[int64](t, m, mp, "Size"); got != 0 {
		t.Fatalf("Size after remove = %d", got)
	}
}

func TestMapPutIfAbsent(t *testing.T) {
	m := newTestMonitor()
	mp := mustNew(t, NewMap)
	res, _ := m.Call(mp, "PutIfAbsent", "k", "v1")
	if !res[1].(bool) {
		t.Fatal("first PutIfAbsent did not insert")
	}
	res, _ = m.Call(mp, "PutIfAbsent", "k", "v2")
	if res[1].(bool) || res[0].(string) != "v1" {
		t.Fatalf("second PutIfAbsent = %v", res)
	}
}

func TestMapKeysAndClear(t *testing.T) {
	m := newTestMonitor()
	mp := mustNew(t, NewMap)
	for i := 0; i < 5; i++ {
		_, _ = m.Call(mp, "Put", fmt.Sprintf("k%d", i), int64(i))
	}
	keys := call[[]string](t, m, mp, "Keys")
	if len(keys) != 5 {
		t.Fatalf("Keys len = %d", len(keys))
	}
	if _, err := m.Call(mp, "Clear"); err != nil {
		t.Fatal(err)
	}
	if got := call[int64](t, m, mp, "Size"); got != 0 {
		t.Fatalf("Size after clear = %d", got)
	}
}

// Property: the Map object agrees with a native Go map under random
// put/get/remove sequences.
func TestMapModelProperty(t *testing.T) {
	m := newTestMonitor()
	f := func(ops []uint8, keys []uint8, vals []int16) bool {
		obj := mustNewQuick(NewMap)
		model := map[string]int64{}
		for i, op := range ops {
			k := "k0"
			if i < len(keys) {
				k = fmt.Sprintf("k%d", keys[i]%8)
			}
			var v int64 = 1
			if i < len(vals) {
				v = int64(vals[i])
			}
			switch op % 3 {
			case 0:
				if _, err := m.Call(obj, "Put", k, v); err != nil {
					return false
				}
				model[k] = v
			case 1:
				res, err := m.Call(obj, "Get", k)
				if err != nil {
					return false
				}
				mv, ok := model[k]
				if res[1].(bool) != ok {
					return false
				}
				if ok && res[0].(int64) != mv {
					return false
				}
			case 2:
				if _, err := m.Call(obj, "Remove", k); err != nil {
					return false
				}
				delete(model, k)
			}
		}
		res, err := m.Call(obj, "Size")
		return err == nil && res[0].(int64) == int64(len(model))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func mustNewQuick(f core.Factory) core.Object {
	obj, err := f(nil)
	if err != nil {
		panic(err)
	}
	return obj
}
