package objects

import "crucial/internal/core"

// Wire type names of the built-in library. The paper exposes AtomicInt and
// AtomicLong separately (Table 1); both map to AtomicInt64 here.
const (
	TypeAtomicInt         = "AtomicInt"
	TypeAtomicLong        = "AtomicLong"
	TypeAtomicBoolean     = "AtomicBoolean"
	TypeAtomicReference   = "AtomicReference"
	TypeAtomicByteArray   = "AtomicByteArray"
	TypeAtomicDoubleArray = "AtomicDoubleArray"
	TypeDoubleAdder       = "DoubleAdder"
	TypeList              = "List"
	TypeMap               = "Map"
	TypeKV                = "KV"
	TypeCyclicBarrier     = "CyclicBarrier"
	TypeSemaphore         = "Semaphore"
	TypeFuture            = "Future"
	TypeCountDownLatch    = "CountDownLatch"
)

// RegisterBuiltins installs the shared object library into a registry.
// Server nodes call it at startup; applications then add their own
// user-defined types on top (the @Shared analog). It also declares the
// library's read-only methods (core.RegisterReadOnlyMethods) so the lease
// cache and follower-read paths can serve them without an ownership round
// trip. Only methods that neither mutate state nor block qualify; note the
// near-misses that do NOT: GetAndAdd and GetAndSet write, SumThenReset
// resets, PutIfAbsent inserts.
func RegisterBuiltins(r *core.Registry) {
	registerBuiltinReadOnly()
	r.MustRegister(core.TypeInfo{Name: TypeAtomicInt, New: NewAtomicInt64})
	r.MustRegister(core.TypeInfo{Name: TypeAtomicLong, New: NewAtomicInt64})
	r.MustRegister(core.TypeInfo{Name: TypeAtomicBoolean, New: NewAtomicBoolean})
	r.MustRegister(core.TypeInfo{Name: TypeAtomicReference, New: NewAtomicReference})
	r.MustRegister(core.TypeInfo{Name: TypeAtomicByteArray, New: NewAtomicByteArray})
	r.MustRegister(core.TypeInfo{Name: TypeAtomicDoubleArray, New: NewAtomicDoubleArray})
	r.MustRegister(core.TypeInfo{Name: TypeDoubleAdder, New: NewDoubleAdder})
	r.MustRegister(core.TypeInfo{Name: TypeList, New: NewList})
	r.MustRegister(core.TypeInfo{Name: TypeMap, New: NewMap})
	r.MustRegister(core.TypeInfo{Name: TypeKV, New: NewKV})
	r.MustRegister(core.TypeInfo{Name: TypeCyclicBarrier, New: NewCyclicBarrier, Synchronization: true})
	r.MustRegister(core.TypeInfo{Name: TypeSemaphore, New: NewSemaphore, Synchronization: true})
	r.MustRegister(core.TypeInfo{Name: TypeFuture, New: NewFuture, Synchronization: true})
	r.MustRegister(core.TypeInfo{Name: TypeCountDownLatch, New: NewCountDownLatch, Synchronization: true})
}

// registerBuiltinReadOnly declares the read-only subset of the library
// methods. core.RegisterReadOnlyMethods is idempotent, so calling
// RegisterBuiltins for several registries re-declares harmlessly.
func registerBuiltinReadOnly() {
	for _, t := range []string{TypeAtomicInt, TypeAtomicLong} {
		core.RegisterReadOnlyMethods(t, "Get")
	}
	core.RegisterReadOnlyMethods(TypeAtomicBoolean, "Get")
	core.RegisterReadOnlyMethods(TypeAtomicReference, "Get", "IsNil")
	core.RegisterReadOnlyMethods(TypeAtomicByteArray, "Length", "Get", "GetAll")
	core.RegisterReadOnlyMethods(TypeAtomicDoubleArray, "Length", "Get", "GetAll")
	core.RegisterReadOnlyMethods(TypeDoubleAdder, "Sum", "Count")
	core.RegisterReadOnlyMethods(TypeList, "Get", "Size", "GetAll", "Contains")
	core.RegisterReadOnlyMethods(TypeMap, "Get", "ContainsKey", "Size", "Keys")
	core.RegisterReadOnlyMethods(TypeKV, "Get", "Exists")
}

// BuiltinRegistry returns a fresh registry preloaded with the library.
func BuiltinRegistry() *core.Registry {
	r := core.NewRegistry()
	RegisterBuiltins(r)
	return r
}
