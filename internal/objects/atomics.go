// Package objects implements the server-side shared object library of the
// DSO layer: the wait-free linearizable data objects (atomics, list, map,
// byte array, KV cells) and the blocking synchronization objects (cyclic
// barrier, semaphore, future, countdown latch) described in Table 1 of the
// paper.
//
// Objects are single-threaded by construction: the owning DSO node
// serializes Call invocations per object, so implementations hold no locks.
// Blocking objects suspend calls through core.Ctl, the monitor abstraction
// provided by the node (the Java wait()/notify() analog). Data objects
// implement core.Snapshotter so they can be replicated and rebalanced.
package objects

import (
	"bytes"
	"fmt"
	"time"

	"crucial/internal/core"
	"crucial/internal/netsim"
)

func errUnknownMethod(typ, method string) error {
	return fmt.Errorf("%w: %s.%s", core.ErrUnknownMethod, typ, method)
}

// AtomicInt64 backs both the AtomicInt and AtomicLong wire types. It
// supports the java.util.concurrent.atomic surface used in the paper's
// listings (addAndGet, compareAndSet, ...).
type AtomicInt64 struct {
	value int64
}

// NewAtomicInt64 builds the object; init may carry an initial value.
func NewAtomicInt64(init []any) (core.Object, error) {
	v, err := optInt64(init, 0, 0)
	if err != nil {
		return nil, err
	}
	return &AtomicInt64{value: v}, nil
}

func optInt64(args []any, i int, def int64) (int64, error) {
	if i >= len(args) || args[i] == nil {
		return def, nil
	}
	n, ok := core.NumberAsInt64(args[i])
	if !ok {
		return 0, fmt.Errorf("objects: argument %d has type %T, want integer", i, args[i])
	}
	return n, nil
}

// Call dispatches an atomic integer method.
func (a *AtomicInt64) Call(ctl core.Ctl, method string, args []any) ([]any, error) {
	switch method {
	case "Get":
		return []any{a.value}, nil
	case "Set":
		v, err := core.Int64Arg(args, 0)
		if err != nil {
			return nil, err
		}
		a.value = v
		return nil, nil
	case "AddAndGet":
		d, err := core.Int64Arg(args, 0)
		if err != nil {
			return nil, err
		}
		a.value += d
		return []any{a.value}, nil
	case "GetAndAdd":
		d, err := core.Int64Arg(args, 0)
		if err != nil {
			return nil, err
		}
		old := a.value
		a.value += d
		return []any{old}, nil
	case "IncrementAndGet":
		a.value++
		return []any{a.value}, nil
	case "DecrementAndGet":
		a.value--
		return []any{a.value}, nil
	case "GetAndSet":
		v, err := core.Int64Arg(args, 0)
		if err != nil {
			return nil, err
		}
		old := a.value
		a.value = v
		return []any{old}, nil
	case "CompareAndSet":
		expect, err := core.Int64Arg(args, 0)
		if err != nil {
			return nil, err
		}
		update, err := core.Int64Arg(args, 1)
		if err != nil {
			return nil, err
		}
		if a.value == expect {
			a.value = update
			return []any{true}, nil
		}
		return []any{false}, nil
	// Multiply supports the throughput micro-benchmark of Fig. 2a: the
	// "simple" operation is one multiplication, the "complex" one chains
	// many multiplications server-side (method-call shipping).
	case "Multiply":
		f, err := core.Int64Arg(args, 0)
		if err != nil {
			return nil, err
		}
		a.value *= f
		return []any{a.value}, nil
	// SimulatedWork stands in for a CPU-bound method body of the given
	// duration (already scaled by the caller): the host running this
	// repository has one core, so modeled busy-time (a sleep under the
	// object's monitor) is what preserves the paper's disjoint-access
	// parallelism behaviour — concurrent calls on *different* objects
	// overlap, calls on the same object serialize (Fig. 2a).
	case "SimulatedWork":
		us, err := core.Int64Arg(args, 0)
		if err != nil {
			return nil, err
		}
		if err := netsim.Sleep(ctl.Context(), time.Duration(us)*time.Microsecond); err != nil {
			return nil, err
		}
		a.value++
		return []any{a.value}, nil
	case "MultiplyLoop":
		f, err := core.Int64Arg(args, 0)
		if err != nil {
			return nil, err
		}
		n, err := core.Int64Arg(args, 1)
		if err != nil {
			return nil, err
		}
		v := a.value
		for i := int64(0); i < n; i++ {
			v *= f
			// Keep the value bounded so the loop cost, not overflow
			// behaviour, is what the benchmark measures.
			if v == 0 {
				v = 1
			}
		}
		a.value = v
		return []any{a.value}, nil
	default:
		return nil, errUnknownMethod("AtomicInt64", method)
	}
}

// Snapshot encodes the current value.
func (a *AtomicInt64) Snapshot() ([]byte, error) { return core.EncodeValue(a.value) }

// Restore replaces the current value.
func (a *AtomicInt64) Restore(data []byte) error { return core.DecodeValue(data, &a.value) }

// AtomicBoolean is a linearizable boolean flag.
type AtomicBoolean struct {
	value bool
}

// NewAtomicBoolean builds the object; init may carry an initial value.
func NewAtomicBoolean(init []any) (core.Object, error) {
	v, err := core.OptArg(init, 0, false)
	if err != nil {
		return nil, err
	}
	return &AtomicBoolean{value: v}, nil
}

// Call dispatches an atomic boolean method.
func (a *AtomicBoolean) Call(_ core.Ctl, method string, args []any) ([]any, error) {
	switch method {
	case "Get":
		return []any{a.value}, nil
	case "Set":
		v, err := core.Arg[bool](args, 0)
		if err != nil {
			return nil, err
		}
		a.value = v
		return nil, nil
	case "GetAndSet":
		v, err := core.Arg[bool](args, 0)
		if err != nil {
			return nil, err
		}
		old := a.value
		a.value = v
		return []any{old}, nil
	case "CompareAndSet":
		expect, err := core.Arg[bool](args, 0)
		if err != nil {
			return nil, err
		}
		update, err := core.Arg[bool](args, 1)
		if err != nil {
			return nil, err
		}
		if a.value == expect {
			a.value = update
			return []any{true}, nil
		}
		return []any{false}, nil
	default:
		return nil, errUnknownMethod("AtomicBoolean", method)
	}
}

// Snapshot encodes the current value.
func (a *AtomicBoolean) Snapshot() ([]byte, error) { return core.EncodeValue(a.value) }

// Restore replaces the current value.
func (a *AtomicBoolean) Restore(data []byte) error { return core.DecodeValue(data, &a.value) }

// AtomicReference holds an arbitrary gob-serializable value.
type AtomicReference struct {
	value any
}

// NewAtomicReference builds the object; init may carry an initial value.
func NewAtomicReference(init []any) (core.Object, error) {
	var v any
	if len(init) > 0 {
		v = init[0]
	}
	return &AtomicReference{value: v}, nil
}

// Call dispatches an atomic reference method. CompareAndSet compares the
// gob encodings of values, which matches "equal serialized state".
func (a *AtomicReference) Call(_ core.Ctl, method string, args []any) ([]any, error) {
	switch method {
	case "Get":
		return []any{a.value}, nil
	case "Set":
		if len(args) < 1 {
			return nil, fmt.Errorf("objects: Set needs a value")
		}
		a.value = args[0]
		return nil, nil
	case "GetAndSet":
		if len(args) < 1 {
			return nil, fmt.Errorf("objects: GetAndSet needs a value")
		}
		old := a.value
		a.value = args[0]
		return []any{old}, nil
	case "CompareAndSet":
		if len(args) < 2 {
			return nil, fmt.Errorf("objects: CompareAndSet needs expect and update")
		}
		same, err := gobEqual(a.value, args[0])
		if err != nil {
			return nil, err
		}
		if same {
			a.value = args[1]
			return []any{true}, nil
		}
		return []any{false}, nil
	case "IsNil":
		return []any{a.value == nil}, nil
	default:
		return nil, errUnknownMethod("AtomicReference", method)
	}
}

func gobEqual(a, b any) (bool, error) {
	if a == nil || b == nil {
		return a == nil && b == nil, nil
	}
	ea, err := core.EncodeValue(&a)
	if err != nil {
		return false, err
	}
	eb, err := core.EncodeValue(&b)
	if err != nil {
		return false, err
	}
	return bytes.Equal(ea, eb), nil
}

type refState struct{ Value any }

// Snapshot encodes the current value.
func (a *AtomicReference) Snapshot() ([]byte, error) {
	return core.EncodeValue(refState{Value: a.value})
}

// Restore replaces the current value.
func (a *AtomicReference) Restore(data []byte) error {
	var s refState
	if err := core.DecodeValue(data, &s); err != nil {
		return err
	}
	a.value = s.Value
	return nil
}

// AtomicByteArray is a fixed-length mutable byte array, the paper's
// AtomicByteArray. Init: length (int). A second init argument can preload
// contents ([]byte).
type AtomicByteArray struct {
	data []byte
}

// NewAtomicByteArray builds the object from its init arguments.
func NewAtomicByteArray(init []any) (core.Object, error) {
	n, err := optInt64(init, 0, 0)
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("objects: negative byte array length %d", n)
	}
	a := &AtomicByteArray{data: make([]byte, n)}
	if len(init) > 1 {
		preload, err := core.Arg[[]byte](init, 1)
		if err != nil {
			return nil, err
		}
		copy(a.data, preload)
	}
	return a, nil
}

// Call dispatches a byte-array method.
func (a *AtomicByteArray) Call(_ core.Ctl, method string, args []any) ([]any, error) {
	switch method {
	case "Length":
		return []any{int64(len(a.data))}, nil
	case "Get":
		i, err := core.Int64Arg(args, 0)
		if err != nil {
			return nil, err
		}
		if i < 0 || i >= int64(len(a.data)) {
			return nil, fmt.Errorf("objects: index %d out of range [0,%d)", i, len(a.data))
		}
		return []any{int64(a.data[i])}, nil
	case "Set":
		i, err := core.Int64Arg(args, 0)
		if err != nil {
			return nil, err
		}
		v, err := core.Int64Arg(args, 1)
		if err != nil {
			return nil, err
		}
		if i < 0 || i >= int64(len(a.data)) {
			return nil, fmt.Errorf("objects: index %d out of range [0,%d)", i, len(a.data))
		}
		a.data[i] = byte(v)
		return nil, nil
	case "GetAll":
		out := make([]byte, len(a.data))
		copy(out, a.data)
		return []any{out}, nil
	case "SetAll":
		v, err := core.Arg[[]byte](args, 0)
		if err != nil {
			return nil, err
		}
		a.data = make([]byte, len(v))
		copy(a.data, v)
		return nil, nil
	default:
		return nil, errUnknownMethod("AtomicByteArray", method)
	}
}

// Snapshot encodes the current contents.
func (a *AtomicByteArray) Snapshot() ([]byte, error) { return core.EncodeValue(a.data) }

// Restore replaces the current contents.
func (a *AtomicByteArray) Restore(data []byte) error { return core.DecodeValue(data, &a.data) }

var (
	_ core.Object      = (*AtomicInt64)(nil)
	_ core.Snapshotter = (*AtomicInt64)(nil)
	_ core.Object      = (*AtomicBoolean)(nil)
	_ core.Snapshotter = (*AtomicBoolean)(nil)
	_ core.Object      = (*AtomicReference)(nil)
	_ core.Snapshotter = (*AtomicReference)(nil)
	_ core.Object      = (*AtomicByteArray)(nil)
	_ core.Snapshotter = (*AtomicByteArray)(nil)
)
