package objects

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crucial/internal/core"
)

func TestCyclicBarrierInitValidation(t *testing.T) {
	if _, err := NewCyclicBarrier([]any{int64(0)}); err == nil {
		t.Fatal("parties=0 accepted")
	}
	if _, err := NewCyclicBarrier(nil); err == nil {
		t.Fatal("missing parties accepted")
	}
}

func TestCyclicBarrierTripsWhenFull(t *testing.T) {
	m := newTestMonitor()
	b := mustNew(t, NewCyclicBarrier, int64(3))

	var passed atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := m.Call(b, "Await"); err != nil {
				t.Errorf("Await: %v", err)
				return
			}
			passed.Add(1)
		}()
	}
	wg.Wait()
	if passed.Load() != 3 {
		t.Fatalf("%d parties passed, want 3", passed.Load())
	}
}

func TestCyclicBarrierBlocksUntilFull(t *testing.T) {
	m := newTestMonitor()
	b := mustNew(t, NewCyclicBarrier, int64(2))

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = m.Call(b, "Await")
	}()
	select {
	case <-done:
		t.Fatal("Await returned before the barrier was full")
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := m.Call(b, "Await"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("first waiter not released")
	}
}

func TestCyclicBarrierGenerations(t *testing.T) {
	m := newTestMonitor()
	b := mustNew(t, NewCyclicBarrier, int64(4))

	const generations = 5
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := 0; g < generations; g++ {
				if _, err := m.Call(b, "Await"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := call[int64](t, m, b, "GetNumberWaiting"); got != 0 {
		t.Fatalf("waiters left after final generation: %d", got)
	}
}

func TestCyclicBarrierArrivalIndex(t *testing.T) {
	m := newTestMonitor()
	b := mustNew(t, NewCyclicBarrier, int64(2))
	indices := make(chan int64, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := m.Call(b, "Await")
			if err != nil {
				t.Errorf("Await: %v", err)
				return
			}
			indices <- res[0].(int64)
		}()
	}
	wg.Wait()
	close(indices)
	seen := map[int64]bool{}
	for i := range indices {
		seen[i] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("arrival indices = %v, want {0,1}", seen)
	}
}

func TestCyclicBarrierGetParties(t *testing.T) {
	m := newTestMonitor()
	b := mustNew(t, NewCyclicBarrier, int64(7))
	if got := call[int64](t, m, b, "GetParties"); got != 7 {
		t.Fatalf("GetParties = %d", got)
	}
}

func TestSemaphoreAcquireRelease(t *testing.T) {
	m := newTestMonitor()
	s := mustNew(t, NewSemaphore, int64(2))
	if _, err := m.Call(s, "Acquire"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(s, "Acquire"); err != nil {
		t.Fatal(err)
	}
	if got := call[int64](t, m, s, "AvailablePermits"); got != 0 {
		t.Fatalf("permits = %d", got)
	}
	if ok := call[bool](t, m, s, "TryAcquire"); ok {
		t.Fatal("TryAcquire succeeded with zero permits")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = m.Call(s, "Acquire")
	}()
	select {
	case <-done:
		t.Fatal("Acquire returned without permits")
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := m.Call(s, "Release"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Release did not wake the waiter")
	}
}

func TestSemaphoreMultiPermit(t *testing.T) {
	m := newTestMonitor()
	s := mustNew(t, NewSemaphore, int64(5))
	if _, err := m.Call(s, "Acquire", int64(3)); err != nil {
		t.Fatal(err)
	}
	if got := call[int64](t, m, s, "AvailablePermits"); got != 2 {
		t.Fatalf("permits = %d", got)
	}
	if got := call[int64](t, m, s, "DrainPermits"); got != 2 {
		t.Fatalf("drained = %d", got)
	}
	if _, err := m.Call(s, "Release", int64(4)); err != nil {
		t.Fatal(err)
	}
	if got := call[int64](t, m, s, "AvailablePermits"); got != 4 {
		t.Fatalf("permits after release = %d", got)
	}
}

func TestSemaphoreMutualExclusion(t *testing.T) {
	m := newTestMonitor()
	s := mustNew(t, NewSemaphore, int64(1))
	var inCritical atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := m.Call(s, "Acquire"); err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				if inCritical.Add(1) != 1 {
					violations.Add(1)
				}
				inCritical.Add(-1)
				if _, err := m.Call(s, "Release"); err != nil {
					t.Errorf("Release: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d mutual exclusion violations", violations.Load())
	}
}

func TestSemaphoreRejectsBadArgs(t *testing.T) {
	m := newTestMonitor()
	s := mustNew(t, NewSemaphore, int64(1))
	if _, err := m.Call(s, "Acquire", int64(-1)); err == nil {
		t.Fatal("negative permits accepted")
	}
	if _, err := NewSemaphore([]any{int64(-1)}); err == nil {
		t.Fatal("negative initial permits accepted")
	}
}

func TestFutureSetThenGet(t *testing.T) {
	m := newTestMonitor()
	f := mustNew(t, NewFuture)
	if got := call[bool](t, m, f, "IsDone"); got {
		t.Fatal("fresh future done")
	}
	if _, err := m.Call(f, "Set", int64(99)); err != nil {
		t.Fatal(err)
	}
	if got := call[int64](t, m, f, "Get"); got != 99 {
		t.Fatalf("Get = %d", got)
	}
	if _, err := m.Call(f, "Set", int64(1)); !errors.Is(err, ErrFutureAlreadySet) {
		t.Fatalf("double Set: %v", err)
	}
}

func TestFutureGetBlocksUntilSet(t *testing.T) {
	m := newTestMonitor()
	f := mustNew(t, NewFuture)
	got := make(chan int64, 1)
	go func() {
		res, err := m.Call(f, "Get")
		if err != nil {
			t.Errorf("Get: %v", err)
			got <- -1
			return
		}
		got <- res[0].(int64)
	}()
	select {
	case <-got:
		t.Fatal("Get returned before Set")
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := m.Call(f, "Set", int64(7)); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 7 {
			t.Fatalf("Get = %d", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Get not released by Set")
	}
}

func TestFutureFail(t *testing.T) {
	m := newTestMonitor()
	f := mustNew(t, NewFuture)
	if _, err := m.Call(f, "Fail", "computation exploded"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(f, "Get"); err == nil || err.Error() != "computation exploded" {
		t.Fatalf("Get after Fail = %v", err)
	}
	res, err := m.Call(f, "GetNow")
	if err != nil {
		t.Fatal(err)
	}
	if res[1].(bool) {
		t.Fatal("GetNow reported success for failed future")
	}
}

func TestFutureGetNow(t *testing.T) {
	m := newTestMonitor()
	f := mustNew(t, NewFuture)
	res, err := m.Call(f, "GetNow")
	if err != nil {
		t.Fatal(err)
	}
	if res[1].(bool) {
		t.Fatal("GetNow on fresh future reported done")
	}
	_, _ = m.Call(f, "Set", "v")
	res, _ = m.Call(f, "GetNow")
	if !res[1].(bool) || res[0].(string) != "v" {
		t.Fatalf("GetNow = %v", res)
	}
}

func TestCountDownLatch(t *testing.T) {
	m := newTestMonitor()
	l := mustNew(t, NewCountDownLatch, int64(2))
	if got := call[int64](t, m, l, "GetCount"); got != 2 {
		t.Fatalf("GetCount = %d", got)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = m.Call(l, "Await")
	}()
	select {
	case <-done:
		t.Fatal("Await returned early")
	case <-time.After(50 * time.Millisecond):
	}
	_, _ = m.Call(l, "CountDown")
	_, _ = m.Call(l, "CountDown")
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Await not released at zero")
	}
	// Extra countdowns are no-ops.
	if got := call[int64](t, m, l, "CountDown"); got != 0 {
		t.Fatalf("count went negative: %d", got)
	}
}

func TestCountDownLatchZeroAwaitImmediate(t *testing.T) {
	m := newTestMonitor()
	l := mustNew(t, NewCountDownLatch, int64(0))
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = m.Call(l, "Await")
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Await on zero latch blocked")
	}
}

func TestSyncObjectsMarkedInRegistry(t *testing.T) {
	r := BuiltinRegistry()
	for _, name := range []string{TypeCyclicBarrier, TypeSemaphore, TypeFuture, TypeCountDownLatch} {
		info, err := r.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if !info.Synchronization {
			t.Fatalf("%s not marked as synchronization object", name)
		}
	}
	for _, name := range []string{TypeAtomicLong, TypeList, TypeMap, TypeKV} {
		info, err := r.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if info.Synchronization {
			t.Fatalf("%s wrongly marked as synchronization object", name)
		}
	}
}

func TestBuiltinRegistryComplete(t *testing.T) {
	r := BuiltinRegistry()
	want := []string{
		TypeAtomicInt, TypeAtomicLong, TypeAtomicBoolean, TypeAtomicReference,
		TypeAtomicByteArray, TypeAtomicDoubleArray, TypeDoubleAdder,
		TypeList, TypeMap, TypeKV,
		TypeCyclicBarrier, TypeSemaphore, TypeFuture, TypeCountDownLatch,
	}
	for _, name := range want {
		if _, err := r.Lookup(name); err != nil {
			t.Errorf("missing builtin %s: %v", name, err)
		}
	}
	// Every data object must be snapshotable (replication requirement).
	for _, name := range want {
		info, _ := r.Lookup(name)
		if info.Synchronization {
			continue
		}
		init := []any{}
		if name == TypeCyclicBarrier || name == TypeSemaphore || name == TypeCountDownLatch {
			init = []any{int64(1)}
		}
		obj, err := info.New(init)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		if _, ok := obj.(core.Snapshotter); !ok {
			t.Errorf("data object %s does not implement Snapshotter", name)
		}
	}
}
