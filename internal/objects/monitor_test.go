package objects

import (
	"context"
	"sync"

	"crucial/internal/core"
)

// testMonitor replicates the per-object monitor the DSO node provides:
// calls execute under the object's lock and Ctl.Wait releases it on a
// condition variable. Tests drive objects through it concurrently.
type testMonitor struct {
	mu   sync.Mutex
	cond *sync.Cond
}

func newTestMonitor() *testMonitor {
	m := &testMonitor{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

type testCtl struct {
	m   *testMonitor
	ctx context.Context
}

func (c testCtl) Wait(cond func() bool) error {
	for !cond() {
		select {
		case <-c.ctx.Done():
			return c.ctx.Err()
		default:
		}
		c.m.cond.Wait()
	}
	return nil
}

func (c testCtl) Broadcast()               { c.m.cond.Broadcast() }
func (c testCtl) Context() context.Context { return c.ctx }

var _ core.Ctl = testCtl{}

// Call runs one method on obj under the monitor, as the server would.
func (m *testMonitor) Call(obj core.Object, method string, args ...any) ([]any, error) {
	return m.CallCtx(context.Background(), obj, method, args...)
}

// CallCtx is Call with an explicit context for cancellation tests.
func (m *testMonitor) CallCtx(ctx context.Context, obj core.Object, method string, args ...any) ([]any, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return obj.Call(testCtl{m: m, ctx: ctx}, method, args)
}
