package objects

import (
	"errors"
	"fmt"

	"crucial/internal/core"
)

// The synchronization objects mirror java.util.concurrent semantics
// (paper Section 5): calls block server side using the monitor provided by
// the owning node (core.Ctl), exactly like wait()/notify() on a Java
// monitor. They are ephemeral and never replicated (footnote 2 of the
// paper), so they do not implement core.Snapshotter.

// ErrFutureAlreadySet is returned by Future.Set on a completed future.
var ErrFutureAlreadySet = errors.New("objects: future already completed")

// ErrBarrierBroken is returned to waiters when a barrier is reset while
// they wait.
var ErrBarrierBroken = errors.New("objects: barrier broken")

func init() {
	// Callers branch on these with errors.Is after a round trip (e.g. the
	// statefun layer treats an already-completed reply future as
	// delivered), so they must survive the wire as sentinels, not text.
	core.RegisterErrorSentinel(ErrFutureAlreadySet)
	core.RegisterErrorSentinel(ErrBarrierBroken)
}

// CyclicBarrier blocks parties callers until all have arrived, then starts
// a new generation (reusable, like java.util.concurrent.CyclicBarrier).
// Init: parties (int).
type CyclicBarrier struct {
	parties    int64
	count      int64
	generation int64
	broken     bool
}

// NewCyclicBarrier builds the barrier from its init arguments.
func NewCyclicBarrier(init []any) (core.Object, error) {
	parties, err := optInt64(init, 0, 0)
	if err != nil {
		return nil, err
	}
	if parties <= 0 {
		return nil, fmt.Errorf("objects: barrier needs parties > 0, got %d", parties)
	}
	return &CyclicBarrier{parties: parties}, nil
}

// Call dispatches a barrier method.
func (b *CyclicBarrier) Call(ctl core.Ctl, method string, args []any) ([]any, error) {
	switch method {
	case "Await":
		gen := b.generation
		if b.broken {
			return nil, ErrBarrierBroken
		}
		arrival := b.parties - b.count - 1 // Java: index of arrival, parties-1 first
		b.count++
		if b.count == b.parties {
			// Last arrival trips the barrier and starts a new generation.
			b.count = 0
			b.generation++
			ctl.Broadcast()
			return []any{arrival}, nil
		}
		if err := ctl.Wait(func() bool { return b.generation != gen || b.broken }); err != nil {
			return nil, err
		}
		if b.broken {
			return nil, ErrBarrierBroken
		}
		return []any{arrival}, nil
	case "GetParties":
		return []any{b.parties}, nil
	case "GetNumberWaiting":
		return []any{b.count}, nil
	case "Reset":
		// Breaks the current generation: waiters are released with an
		// error, then the barrier is usable again.
		if b.count > 0 {
			b.broken = true
			ctl.Broadcast()
			if err := ctl.Wait(func() bool { return b.count == 0 }); err != nil {
				return nil, err
			}
			b.broken = false
			b.generation++
		}
		return nil, nil
	default:
		return nil, errUnknownMethod("CyclicBarrier", method)
	}
}

// Semaphore is a counting semaphore. Init: permits (int).
type Semaphore struct {
	permits int64
}

// NewSemaphore builds the semaphore from its init arguments.
func NewSemaphore(init []any) (core.Object, error) {
	permits, err := optInt64(init, 0, 0)
	if err != nil {
		return nil, err
	}
	if permits < 0 {
		return nil, fmt.Errorf("objects: semaphore needs permits >= 0, got %d", permits)
	}
	return &Semaphore{permits: permits}, nil
}

// Call dispatches a semaphore method.
func (s *Semaphore) Call(ctl core.Ctl, method string, args []any) ([]any, error) {
	n := int64(1)
	if len(args) > 0 {
		var err error
		if n, err = core.Int64Arg(args, 0); err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("objects: semaphore permits argument must be positive, got %d", n)
		}
	}
	switch method {
	case "Acquire":
		if err := ctl.Wait(func() bool { return s.permits >= n }); err != nil {
			return nil, err
		}
		s.permits -= n
		return nil, nil
	case "TryAcquire":
		if s.permits >= n {
			s.permits -= n
			return []any{true}, nil
		}
		return []any{false}, nil
	case "Release":
		s.permits += n
		ctl.Broadcast()
		return nil, nil
	case "AvailablePermits":
		return []any{s.permits}, nil
	case "DrainPermits":
		drained := s.permits
		s.permits = 0
		return []any{drained}, nil
	default:
		return nil, errUnknownMethod("Semaphore", method)
	}
}

// Future is a single-assignment cell whose Get blocks until completion.
// The Fig. 6 map-phase synchronization uses one Future per mapper (or a
// single Future fed by a server-side aggregate for the auto-reduce
// variant).
type Future struct {
	done  bool
	value any
	errs  string
}

// NewFuture builds an incomplete future.
func NewFuture(_ []any) (core.Object, error) {
	return &Future{}, nil
}

// Call dispatches a future method.
func (f *Future) Call(ctl core.Ctl, method string, args []any) ([]any, error) {
	switch method {
	case "Set":
		if f.done {
			return nil, ErrFutureAlreadySet
		}
		if len(args) > 0 {
			f.value = args[0]
		}
		f.done = true
		ctl.Broadcast()
		return nil, nil
	case "Fail":
		if f.done {
			return nil, ErrFutureAlreadySet
		}
		msg, err := core.Arg[string](args, 0)
		if err != nil {
			return nil, err
		}
		f.errs = msg
		f.done = true
		ctl.Broadcast()
		return nil, nil
	case "Get":
		if err := ctl.Wait(func() bool { return f.done }); err != nil {
			return nil, err
		}
		if f.errs != "" {
			return nil, errors.New(f.errs)
		}
		return []any{f.value}, nil
	case "IsDone":
		return []any{f.done}, nil
	case "GetNow":
		if !f.done || f.errs != "" {
			return []any{nil, false}, nil
		}
		return []any{f.value, true}, nil
	default:
		return nil, errUnknownMethod("Future", method)
	}
}

// CountDownLatch blocks waiters until the count reaches zero.
// Init: count (int).
type CountDownLatch struct {
	count int64
}

// NewCountDownLatch builds the latch from its init arguments.
func NewCountDownLatch(init []any) (core.Object, error) {
	count, err := optInt64(init, 0, 0)
	if err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, fmt.Errorf("objects: latch needs count >= 0, got %d", count)
	}
	return &CountDownLatch{count: count}, nil
}

// Call dispatches a latch method.
func (l *CountDownLatch) Call(ctl core.Ctl, method string, args []any) ([]any, error) {
	switch method {
	case "CountDown":
		if l.count > 0 {
			l.count--
			if l.count == 0 {
				ctl.Broadcast()
			}
		}
		return []any{l.count}, nil
	case "Await":
		if err := ctl.Wait(func() bool { return l.count == 0 }); err != nil {
			return nil, err
		}
		return nil, nil
	case "GetCount":
		return []any{l.count}, nil
	default:
		return nil, errUnknownMethod("CountDownLatch", method)
	}
}

var (
	_ core.Object = (*CyclicBarrier)(nil)
	_ core.Object = (*Semaphore)(nil)
	_ core.Object = (*Future)(nil)
	_ core.Object = (*CountDownLatch)(nil)
)
