package objects

import (
	"fmt"

	"crucial/internal/core"
)

// List is a linearizable growable list of gob-serializable values.
type List struct {
	items []any
}

// NewList builds an empty list.
func NewList(_ []any) (core.Object, error) {
	return &List{}, nil
}

// Call dispatches a list method.
func (l *List) Call(_ core.Ctl, method string, args []any) ([]any, error) {
	switch method {
	case "Add":
		if len(args) < 1 {
			return nil, fmt.Errorf("objects: Add needs a value")
		}
		l.items = append(l.items, args[0])
		return []any{int64(len(l.items) - 1)}, nil
	case "Get":
		i, err := core.Int64Arg(args, 0)
		if err != nil {
			return nil, err
		}
		if i < 0 || i >= int64(len(l.items)) {
			return nil, fmt.Errorf("objects: index %d out of range [0,%d)", i, len(l.items))
		}
		return []any{l.items[i]}, nil
	case "Set":
		i, err := core.Int64Arg(args, 0)
		if err != nil {
			return nil, err
		}
		if len(args) < 2 {
			return nil, fmt.Errorf("objects: Set needs index and value")
		}
		if i < 0 || i >= int64(len(l.items)) {
			return nil, fmt.Errorf("objects: index %d out of range [0,%d)", i, len(l.items))
		}
		old := l.items[i]
		l.items[i] = args[1]
		return []any{old}, nil
	case "Remove":
		i, err := core.Int64Arg(args, 0)
		if err != nil {
			return nil, err
		}
		if i < 0 || i >= int64(len(l.items)) {
			return nil, fmt.Errorf("objects: index %d out of range [0,%d)", i, len(l.items))
		}
		old := l.items[i]
		l.items = append(l.items[:i], l.items[i+1:]...)
		return []any{old}, nil
	case "Size":
		return []any{int64(len(l.items))}, nil
	case "Clear":
		l.items = nil
		return nil, nil
	case "GetAll":
		out := make([]any, len(l.items))
		copy(out, l.items)
		return []any{out}, nil
	case "Contains":
		if len(args) < 1 {
			return nil, fmt.Errorf("objects: Contains needs a value")
		}
		for _, it := range l.items {
			same, err := gobEqual(it, args[0])
			if err != nil {
				return nil, err
			}
			if same {
				return []any{true}, nil
			}
		}
		return []any{false}, nil
	default:
		return nil, errUnknownMethod("List", method)
	}
}

type listState struct{ Items []any }

// Snapshot encodes the list contents.
func (l *List) Snapshot() ([]byte, error) { return core.EncodeValue(listState{Items: l.items}) }

// Restore replaces the list contents.
func (l *List) Restore(data []byte) error {
	var s listState
	if err := core.DecodeValue(data, &s); err != nil {
		return err
	}
	l.items = s.Items
	return nil
}

// Map is a linearizable string-keyed map of gob-serializable values.
type Map struct {
	entries map[string]any
}

// NewMap builds an empty map.
func NewMap(_ []any) (core.Object, error) {
	return &Map{entries: make(map[string]any)}, nil
}

// Call dispatches a map method.
func (m *Map) Call(_ core.Ctl, method string, args []any) ([]any, error) {
	switch method {
	case "Put":
		k, err := core.Arg[string](args, 0)
		if err != nil {
			return nil, err
		}
		if len(args) < 2 {
			return nil, fmt.Errorf("objects: Put needs key and value")
		}
		old, had := m.entries[k]
		m.entries[k] = args[1]
		if !had {
			old = nil
		}
		return []any{old, had}, nil
	case "Get":
		k, err := core.Arg[string](args, 0)
		if err != nil {
			return nil, err
		}
		v, ok := m.entries[k]
		if !ok {
			return []any{nil, false}, nil
		}
		return []any{v, true}, nil
	case "PutIfAbsent":
		k, err := core.Arg[string](args, 0)
		if err != nil {
			return nil, err
		}
		if len(args) < 2 {
			return nil, fmt.Errorf("objects: PutIfAbsent needs key and value")
		}
		if cur, ok := m.entries[k]; ok {
			return []any{cur, false}, nil
		}
		m.entries[k] = args[1]
		return []any{args[1], true}, nil
	case "Remove":
		k, err := core.Arg[string](args, 0)
		if err != nil {
			return nil, err
		}
		old, had := m.entries[k]
		delete(m.entries, k)
		if !had {
			old = nil
		}
		return []any{old, had}, nil
	case "ContainsKey":
		k, err := core.Arg[string](args, 0)
		if err != nil {
			return nil, err
		}
		_, ok := m.entries[k]
		return []any{ok}, nil
	case "Size":
		return []any{int64(len(m.entries))}, nil
	case "Keys":
		keys := make([]string, 0, len(m.entries))
		for k := range m.entries {
			keys = append(keys, k)
		}
		return []any{keys}, nil
	case "Clear":
		m.entries = make(map[string]any)
		return nil, nil
	default:
		return nil, errUnknownMethod("Map", method)
	}
}

type mapState struct{ Entries map[string]any }

// Snapshot encodes the map contents.
func (m *Map) Snapshot() ([]byte, error) { return core.EncodeValue(mapState{Entries: m.entries}) }

// Restore replaces the map contents.
func (m *Map) Restore(data []byte) error {
	var s mapState
	if err := core.DecodeValue(data, &s); err != nil {
		return err
	}
	if s.Entries == nil {
		s.Entries = make(map[string]any)
	}
	m.entries = s.Entries
	return nil
}

// KV is a single binary cell. It backs the "Infinispan as a plain key-value
// store" baseline of Table 2 and the PyWren-style polling synchronization of
// Fig. 6 (a mapper writes its output cell; the driver polls for existence).
type KV struct {
	data []byte
	set  bool
}

// NewKV builds an empty cell.
func NewKV(_ []any) (core.Object, error) {
	return &KV{}, nil
}

// Call dispatches a KV method.
func (c *KV) Call(_ core.Ctl, method string, args []any) ([]any, error) {
	switch method {
	case "Put":
		v, err := core.Arg[[]byte](args, 0)
		if err != nil {
			return nil, err
		}
		c.data = make([]byte, len(v))
		copy(c.data, v)
		c.set = true
		return nil, nil
	case "Get":
		if !c.set {
			return []any{[]byte(nil), false}, nil
		}
		out := make([]byte, len(c.data))
		copy(out, c.data)
		return []any{out, true}, nil
	case "Exists":
		return []any{c.set}, nil
	case "Delete":
		c.data = nil
		c.set = false
		return nil, nil
	default:
		return nil, errUnknownMethod("KV", method)
	}
}

type kvState struct {
	Data []byte
	Set  bool
}

// Snapshot encodes the cell.
func (c *KV) Snapshot() ([]byte, error) { return core.EncodeValue(kvState{Data: c.data, Set: c.set}) }

// Restore replaces the cell.
func (c *KV) Restore(data []byte) error {
	var s kvState
	if err := core.DecodeValue(data, &s); err != nil {
		return err
	}
	c.data, c.set = s.Data, s.Set
	return nil
}

var (
	_ core.Object      = (*List)(nil)
	_ core.Snapshotter = (*List)(nil)
	_ core.Object      = (*Map)(nil)
	_ core.Snapshotter = (*Map)(nil)
	_ core.Object      = (*KV)(nil)
	_ core.Snapshotter = (*KV)(nil)
)
