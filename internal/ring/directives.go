package ring

import "sort"

// Directives is a small, versioned table of per-key placement overrides.
// Consistent hashing spreads keys uniformly, but it cannot react to load:
// a single viral object pins whichever group it hashes to. A directive
// pins one key to an explicit replica set chosen by the rebalancer, while
// every other key keeps its hash placement. The table rides inside the
// membership view, so all nodes (and clients) route identically — the
// same property the ring itself has.
//
// Directives are immutable: With and Without return a new table with a
// strictly larger Version and never mutate the receiver, so a table can
// be shared across goroutines without locking. The zero value is an empty
// table (version 0, no overrides).
type Directives struct {
	// Version orders directive tables. Every With/Without bumps it, so a
	// node can tell a newer table from the one it routes with, and a view
	// fence covering the table changes whenever placement does.
	Version uint64
	// Entries maps an object key (core.Ref.String()) to its directed
	// replica set, primary first.
	Entries map[string][]NodeID
}

// Lookup returns the directed replica set for key, if any. The returned
// slice must not be mutated.
func (d Directives) Lookup(key string) ([]NodeID, bool) {
	t, ok := d.Entries[key]
	return t, ok
}

// Len returns the number of directed keys.
func (d Directives) Len() int { return len(d.Entries) }

// Keys returns the directed keys in sorted order.
func (d Directives) Keys() []string {
	out := make([]string, 0, len(d.Entries))
	for k := range d.Entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy sharing nothing with the receiver.
func (d Directives) Clone() Directives {
	out := Directives{Version: d.Version}
	if d.Entries != nil {
		out.Entries = make(map[string][]NodeID, len(d.Entries))
		for k, t := range d.Entries {
			cp := make([]NodeID, len(t))
			copy(cp, t)
			out.Entries[k] = cp
		}
	}
	return out
}

// With returns a copy of the table that directs key to targets, with the
// version bumped. Directing a key to an empty target list removes the
// entry (equivalent to Without, but still bumps the version).
func (d Directives) With(key string, targets []NodeID) Directives {
	out := d.Clone()
	out.Version = d.Version + 1
	if len(targets) == 0 {
		delete(out.Entries, key)
		return out
	}
	if out.Entries == nil {
		out.Entries = make(map[string][]NodeID, 1)
	}
	cp := make([]NodeID, len(targets))
	copy(cp, targets)
	out.Entries[key] = cp
	return out
}

// Without returns a copy of the table with key's override removed (the key
// falls back to hash placement), version bumped.
func (d Directives) Without(key string) Directives {
	return d.With(key, nil)
}

// Place computes the replica set for key under the directive table:
// directed keys go to their directed targets, everything else to the
// ring's hash placement. Directed targets that are no longer ring members
// are skipped, and a directed set shorter than rf is topped up by the
// clockwise ring walk — so a directive degrades gracefully toward hash
// placement as its targets crash, instead of stranding the key.
func (d Directives) Place(r *Ring, key string, rf int) []NodeID {
	targets, ok := d.Lookup(key)
	if !ok {
		return r.ReplicaSet(key, rf)
	}
	if rf > len(r.nodes) {
		rf = len(r.nodes)
	}
	if rf <= 0 {
		return nil
	}
	out := make([]NodeID, 0, rf)
	seen := make(map[NodeID]struct{}, rf)
	for _, t := range targets {
		if len(out) == rf {
			break
		}
		if !r.Contains(t) {
			continue
		}
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	if len(out) < rf {
		for _, n := range r.ReplicaSet(key, len(r.nodes)) {
			if len(out) == rf {
				break
			}
			if _, dup := seen[n]; dup {
				continue
			}
			seen[n] = struct{}{}
			out = append(out, n)
		}
	}
	return out
}

// MovedWith reports whether key's replica set differs between (oldRing,
// oldDirectives) and (newRing, newDirectives). The directive-aware analog
// of Moved; rebalancing uses it to decide which objects to transfer when a
// view or directive change lands.
func MovedWith(oldRing *Ring, od Directives, newRing *Ring, nd Directives, key string, rf int) bool {
	oldSet := od.Place(oldRing, key, rf)
	newSet := nd.Place(newRing, key, rf)
	if len(oldSet) != len(newSet) {
		return true
	}
	for i := range oldSet {
		if oldSet[i] != newSet[i] {
			return true
		}
	}
	return false
}
