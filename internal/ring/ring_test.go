package ring

import (
	"fmt"
	"testing"
	"testing/quick"
)

func nodes(n int) []NodeID {
	out := make([]NodeID, n)
	for i := range out {
		out[i] = NodeID(fmt.Sprintf("node-%02d", i))
	}
	return out
}

func TestEmptyRing(t *testing.T) {
	r := New(nil, 0)
	if r.Size() != 0 {
		t.Fatalf("Size = %d", r.Size())
	}
	if _, ok := r.Owner("k"); ok {
		t.Fatal("owner found on empty ring")
	}
	if got := r.ReplicaSet("k", 3); got != nil {
		t.Fatalf("ReplicaSet on empty ring = %v", got)
	}
}

func TestSingleNodeOwnsEverything(t *testing.T) {
	r := New(nodes(1), 0)
	for i := 0; i < 100; i++ {
		owner, ok := r.Owner(fmt.Sprintf("key-%d", i))
		if !ok || owner != "node-00" {
			t.Fatalf("key %d owned by %q, ok=%v", i, owner, ok)
		}
	}
}

func TestOwnerDeterministic(t *testing.T) {
	a := New(nodes(5), 0)
	b := New(nodes(5), 0)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("placement of %q differs across identical rings: %q vs %q", k, oa, ob)
		}
	}
}

func TestOwnerIndependentOfNodeOrder(t *testing.T) {
	ns := nodes(5)
	rev := make([]NodeID, len(ns))
	for i, n := range ns {
		rev[len(ns)-1-i] = n
	}
	a, b := New(ns, 0), New(rev, 0)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("placement depends on node order for %q", k)
		}
	}
}

func TestReplicaSetDistinctAndSized(t *testing.T) {
	r := New(nodes(5), 0)
	for i := 0; i < 100; i++ {
		set := r.ReplicaSet(fmt.Sprintf("key-%d", i), 3)
		if len(set) != 3 {
			t.Fatalf("replica set size %d, want 3", len(set))
		}
		seen := map[NodeID]struct{}{}
		for _, n := range set {
			if _, dup := seen[n]; dup {
				t.Fatalf("duplicate node %q in replica set %v", n, set)
			}
			seen[n] = struct{}{}
		}
	}
}

func TestReplicaSetClampedToClusterSize(t *testing.T) {
	r := New(nodes(2), 0)
	set := r.ReplicaSet("k", 5)
	if len(set) != 2 {
		t.Fatalf("replica set size %d, want 2 (cluster size)", len(set))
	}
}

func TestReplicaSetPrimaryMatchesOwner(t *testing.T) {
	r := New(nodes(7), 0)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		owner, _ := r.Owner(k)
		set := r.ReplicaSet(k, 3)
		if set[0] != owner {
			t.Fatalf("primary %q != owner %q for %q", set[0], owner, k)
		}
	}
}

func TestContains(t *testing.T) {
	r := New(nodes(3), 0)
	if !r.Contains("node-01") {
		t.Fatal("Contains missed a member")
	}
	if r.Contains("node-99") {
		t.Fatal("Contains reported a non-member")
	}
}

func TestBalance(t *testing.T) {
	const keys = 20000
	r := New(nodes(5), 0)
	counts := map[NodeID]int{}
	for i := 0; i < keys; i++ {
		owner, _ := r.Owner(fmt.Sprintf("key-%d", i))
		counts[owner]++
	}
	want := keys / 5
	for n, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("node %q owns %d keys, want within [%d,%d]", n, c, want/2, want*2)
		}
	}
}

// Consistency: removing one node must not move keys between the surviving
// nodes — the defining property of consistent hashing.
func TestMinimalMovementOnRemoval(t *testing.T) {
	const keys = 5000
	before := New(nodes(5), 0)
	after := New(nodes(5)[:4], 0) // drop node-04

	moved, stayedWrong := 0, 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		ob, _ := before.Owner(k)
		oa, _ := after.Owner(k)
		if ob == "node-04" {
			moved++
			continue
		}
		if ob != oa {
			stayedWrong++
		}
	}
	if stayedWrong != 0 {
		t.Fatalf("%d keys moved between surviving nodes", stayedWrong)
	}
	if moved == 0 {
		t.Fatal("expected some keys on the removed node")
	}
}

func TestMinimalMovementOnAddition(t *testing.T) {
	const keys = 5000
	before := New(nodes(4), 0)
	after := New(nodes(5), 0)

	movedToNew, movedElsewhere := 0, 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		ob, _ := before.Owner(k)
		oa, _ := after.Owner(k)
		if ob == oa {
			continue
		}
		if oa == "node-04" {
			movedToNew++
		} else {
			movedElsewhere++
		}
	}
	if movedElsewhere != 0 {
		t.Fatalf("%d keys moved between pre-existing nodes on addition", movedElsewhere)
	}
	if movedToNew == 0 {
		t.Fatal("new node received no keys")
	}
}

func TestMoved(t *testing.T) {
	before := New(nodes(5), 0)
	after := New(nodes(5)[:4], 0)
	anyMoved := false
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%d", i)
		if Moved(before, after, k, 2) {
			anyMoved = true
		} else {
			// Unmoved keys must have identical replica sets.
			a := before.ReplicaSet(k, 2)
			b := after.ReplicaSet(k, 2)
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("Moved=false but sets differ for %q: %v vs %v", k, a, b)
				}
			}
		}
	}
	if !anyMoved {
		t.Fatal("no keys moved after removing a node")
	}
}

func TestNodesReturnsCopy(t *testing.T) {
	r := New(nodes(3), 0)
	got := r.Nodes()
	got[0] = "mutated"
	if r.Nodes()[0] == "mutated" {
		t.Fatal("Nodes() exposed internal state")
	}
}

func TestReplicaSetZeroRF(t *testing.T) {
	r := New(nodes(3), 0)
	if got := r.ReplicaSet("k", 0); got != nil {
		t.Fatalf("rf=0 returned %v", got)
	}
}

// Property: for arbitrary keys, the replica set is always distinct nodes,
// never exceeds the cluster, and the primary equals Owner.
func TestReplicaSetProperty(t *testing.T) {
	r := New(nodes(6), 32)
	f := func(key string, rf uint8) bool {
		n := int(rf%8) + 1
		set := r.ReplicaSet(key, n)
		want := n
		if want > 6 {
			want = 6
		}
		if len(set) != want {
			return false
		}
		seen := map[NodeID]struct{}{}
		for _, nd := range set {
			if _, dup := seen[nd]; dup {
				return false
			}
			seen[nd] = struct{}{}
		}
		owner, ok := r.Owner(key)
		return ok && owner == set[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
