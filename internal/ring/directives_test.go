package ring

import (
	"fmt"
	"testing"
)

func sameSet(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDirectivesZeroValueFallsBackToHash(t *testing.T) {
	r := New(nodes(5), 0)
	var d Directives
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		if !sameSet(d.Place(r, k, 3), r.ReplicaSet(k, 3)) {
			t.Fatalf("empty table changed placement of %q", k)
		}
	}
}

// Redistribution bound: installing a directive moves exactly the directed
// key. Every other key keeps its hash placement bit-for-bit — the analog
// of consistent hashing's minimal-movement property, for the override
// table.
func TestDirectiveMovesOnlyTheDirectedKey(t *testing.T) {
	const keys = 2000
	r := New(nodes(5), 0)
	var before Directives

	hot := "key-42"
	cur := before.Place(r, hot, 2)
	// Direct the hot key at the two nodes that do NOT hold it today.
	var targets []NodeID
	for _, n := range r.Nodes() {
		if n != cur[0] && n != cur[1] {
			targets = append(targets, n)
		}
		if len(targets) == 2 {
			break
		}
	}
	after := before.With(hot, targets)

	moved := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		if MovedWith(r, before, r, after, k, 2) {
			moved++
			if k != hot {
				t.Fatalf("undirected key %q moved on directive install", k)
			}
		}
	}
	if moved != 1 {
		t.Fatalf("moved %d keys, want exactly 1 (the directed key)", moved)
	}
	if got := after.Place(r, hot, 2); !sameSet(got, targets) {
		t.Fatalf("directed key placed at %v, want %v", got, targets)
	}
}

// Removing the directive restores the key's hash placement and, again,
// moves nothing else.
func TestDirectiveRemovalRestoresHashPlacement(t *testing.T) {
	r := New(nodes(5), 0)
	hot := "key-7"
	pinned := Directives{}.With(hot, []NodeID{"node-03", "node-04"})
	unpinned := pinned.Without(hot)

	if !sameSet(unpinned.Place(r, hot, 2), r.ReplicaSet(hot, 2)) {
		t.Fatal("un-pinned key did not return to hash placement")
	}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%d", i)
		if k == hot {
			continue
		}
		if MovedWith(r, pinned, r, unpinned, k, 2) {
			t.Fatalf("undirected key %q moved on directive removal", k)
		}
	}
}

// A directive shields its key from unrelated membership changes: as long
// as the directed targets survive, the key stays put even when the ring
// around it shrinks.
func TestDirectedKeyStableAcrossViewChange(t *testing.T) {
	before := New(nodes(5), 0)
	after := New(nodes(5)[:4], 0) // drop node-04
	d := Directives{}.With("hot", []NodeID{"node-01", "node-02"})

	if MovedWith(before, d, after, d, "hot", 2) {
		t.Fatal("directed key moved although its targets survived the view change")
	}
	if got := d.Place(after, "hot", 2); !sameSet(got, []NodeID{"node-01", "node-02"}) {
		t.Fatalf("directed placement after view change = %v", got)
	}
}

// Dead targets are skipped and the set is topped up from the clockwise
// ring walk, so a directive degrades toward hash placement instead of
// stranding its key.
func TestDirectivePlaceFiltersDeadTargetsAndTopsUp(t *testing.T) {
	r := New(nodes(3), 0)
	d := Directives{}.With("k", []NodeID{"node-99", "node-01"})

	got := d.Place(r, "k", 2)
	if len(got) != 2 {
		t.Fatalf("placement size %d, want 2", len(got))
	}
	if got[0] != "node-01" {
		t.Fatalf("surviving target demoted: primary %q, want node-01", got[0])
	}
	seen := map[NodeID]struct{}{}
	for _, n := range got {
		if !r.Contains(n) {
			t.Fatalf("placed on non-member %q", n)
		}
		if _, dup := seen[n]; dup {
			t.Fatalf("duplicate node %q in %v", n, got)
		}
		seen[n] = struct{}{}
	}
}

func TestDirectivePlaceAllTargetsDead(t *testing.T) {
	r := New(nodes(3), 0)
	d := Directives{}.With("k", []NodeID{"gone-1", "gone-2"})
	if got := d.Place(r, "k", 2); !sameSet(got, r.ReplicaSet("k", 2)) {
		t.Fatalf("fully-dead directive placed %v, want hash fallback %v",
			got, r.ReplicaSet("k", 2))
	}
}

func TestDirectivePlaceDeduplicatesTargets(t *testing.T) {
	r := New(nodes(3), 0)
	d := Directives{}.With("k", []NodeID{"node-01", "node-01", "node-02"})
	got := d.Place(r, "k", 2)
	if !sameSet(got, []NodeID{"node-01", "node-02"}) {
		t.Fatalf("duplicate targets not collapsed: %v", got)
	}
}

func TestDirectivePlaceClampsRF(t *testing.T) {
	r := New(nodes(2), 0)
	d := Directives{}.With("k", []NodeID{"node-00"})
	if got := d.Place(r, "k", 5); len(got) != 2 {
		t.Fatalf("rf clamp failed: %d nodes for a 2-node ring", len(got))
	}
	if got := d.Place(r, "k", 0); got != nil {
		t.Fatalf("rf=0 returned %v", got)
	}
}

// Every With/Without strictly bumps the version — including a With that
// only deletes — so any two distinct tables in a lineage are ordered.
func TestDirectiveVersionStrictlyMonotonic(t *testing.T) {
	d := Directives{}
	last := d.Version
	step := func(next Directives, op string) {
		if next.Version <= last {
			t.Fatalf("%s: version %d not greater than %d", op, next.Version, last)
		}
		last = next.Version
		d = next
	}
	step(d.With("a", []NodeID{"n1"}), "install a")
	step(d.With("b", []NodeID{"n2"}), "install b")
	step(d.Without("a"), "remove a")
	step(d.Without("missing"), "remove absent key")
	step(d.With("c", nil), "install with empty targets")
	if d.Len() != 1 {
		t.Fatalf("table has %d entries, want 1 (just b)", d.Len())
	}
}

// With/Without/Clone never mutate the receiver, so a table can be shared
// without locks.
func TestDirectivesImmutable(t *testing.T) {
	base := Directives{}.With("a", []NodeID{"n1", "n2"})
	snapshot := base.Clone()

	_ = base.With("b", []NodeID{"n3"})
	_ = base.Without("a")
	cl := base.Clone()
	cl.Entries["a"][0] = "mutated"

	if base.Version != snapshot.Version || base.Len() != snapshot.Len() {
		t.Fatal("derivation mutated the receiver")
	}
	got, _ := base.Lookup("a")
	if !sameSet(got, []NodeID{"n1", "n2"}) {
		t.Fatalf("receiver entries mutated: %v", got)
	}
}

func TestDirectivesWithCopiesTargets(t *testing.T) {
	targets := []NodeID{"n1", "n2"}
	d := Directives{}.With("a", targets)
	targets[0] = "mutated"
	got, _ := d.Lookup("a")
	if got[0] != "n1" {
		t.Fatal("With aliased the caller's target slice")
	}
}

func TestDirectivesKeysSorted(t *testing.T) {
	d := Directives{}.With("b", []NodeID{"n1"}).With("a", []NodeID{"n1"}).With("c", []NodeID{"n1"})
	keys := d.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("Keys() = %v, want sorted [a b c]", keys)
	}
}
