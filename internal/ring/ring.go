// Package ring implements the consistent-hashing ring used to place shared
// objects on DSO nodes (paper Section 4.1, following Cassandra-style
// placement): every node knows the full membership, so object location is
// computed locally with no broadcast, disjoint-access parallelism is
// preserved, and membership changes move a minimal fraction of objects.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// NodeID names a DSO node. Node identifiers must be unique in a view.
type NodeID string

// DefaultVirtualNodes is the vnode count per physical node. 128 keeps the
// standard deviation of load under a few percent for small clusters.
const DefaultVirtualNodes = 128

type vnode struct {
	hash uint64
	node NodeID
}

// Ring is an immutable placement function over a set of nodes. Build a new
// Ring for every view; lookups are safe for concurrent use.
type Ring struct {
	vnodes []vnode
	nodes  []NodeID
}

// New builds a ring over nodes with the given number of virtual nodes per
// physical node. Passing vnodesPerNode <= 0 selects DefaultVirtualNodes.
// The node list is copied; order does not matter. An empty node list yields
// a ring whose lookups return false.
func New(nodes []NodeID, vnodesPerNode int) *Ring {
	if vnodesPerNode <= 0 {
		vnodesPerNode = DefaultVirtualNodes
	}
	sorted := make([]NodeID, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	r := &Ring{
		vnodes: make([]vnode, 0, len(nodes)*vnodesPerNode),
		nodes:  sorted,
	}
	for _, n := range sorted {
		for v := 0; v < vnodesPerNode; v++ {
			r.vnodes = append(r.vnodes, vnode{
				hash: hash64(fmt.Sprintf("%s#%d", n, v)),
				node: n,
			})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.node < b.node
	})
	return r
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV-1a alone correlates on the short,
// similar strings used for vnode labels, which skews the load balance; the
// finalizer restores avalanche behaviour.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Size returns the number of physical nodes.
func (r *Ring) Size() int { return len(r.nodes) }

// Nodes returns the physical nodes in deterministic (sorted) order. The
// returned slice is a copy.
func (r *Ring) Nodes() []NodeID {
	out := make([]NodeID, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Contains reports whether node is part of the ring.
func (r *Ring) Contains(node NodeID) bool {
	i := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i] >= node })
	return i < len(r.nodes) && r.nodes[i] == node
}

// Owner returns the primary node for key. ok is false for an empty ring.
func (r *Ring) Owner(key string) (NodeID, bool) {
	set := r.ReplicaSet(key, 1)
	if len(set) == 0 {
		return "", false
	}
	return set[0], true
}

// ReplicaSet returns up to rf distinct nodes responsible for key, walking
// the ring clockwise from the key's position. The first element is the
// primary. If rf exceeds the node count, all nodes are returned.
func (r *Ring) ReplicaSet(key string, rf int) []NodeID {
	if len(r.vnodes) == 0 || rf <= 0 {
		return nil
	}
	if rf > len(r.nodes) {
		rf = len(r.nodes)
	}
	h := hash64(key)
	// First vnode with hash >= h, wrapping.
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0
	}
	out := make([]NodeID, 0, rf)
	seen := make(map[NodeID]struct{}, rf)
	for j := 0; j < len(r.vnodes) && len(out) < rf; j++ {
		n := r.vnodes[(i+j)%len(r.vnodes)].node
		if _, dup := seen[n]; dup {
			continue
		}
		seen[n] = struct{}{}
		out = append(out, n)
	}
	return out
}

// Moved reports, for a key and replication factor, whether its replica set
// changes between two rings. Rebalancing uses it to decide which objects to
// transfer on a view change.
func Moved(oldRing, newRing *Ring, key string, rf int) bool {
	oldSet := oldRing.ReplicaSet(key, rf)
	newSet := newRing.ReplicaSet(key, rf)
	if len(oldSet) != len(newSet) {
		return true
	}
	for i := range oldSet {
		if oldSet[i] != newSet[i] {
			return true
		}
	}
	return false
}
