package totalorder

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// memTransport wires nodes together in process, optionally delaying
// messages to shake out ordering races.
type memTransport struct {
	mu    sync.Mutex
	nodes map[string]*Node
	// maxDelay > 0 inserts random sleeps before message handling.
	maxDelay time.Duration
	// failProposeTo simulates an unreachable node.
	failProposeTo string
}

func newMemTransport() *memTransport {
	return &memTransport{nodes: make(map[string]*Node)}
}

func (t *memTransport) add(n *Node) { t.nodes[n.ID()] = n }

func (t *memTransport) delay() {
	if t.maxDelay > 0 {
		time.Sleep(time.Duration(rand.Int63n(int64(t.maxDelay))))
	}
}

func (t *memTransport) Propose(_ context.Context, target string, id MsgID, payload []byte) (uint64, error) {
	if target == t.failProposeTo {
		return 0, errors.New("simulated network failure")
	}
	t.delay()
	t.mu.Lock()
	n, ok := t.nodes[target]
	t.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("no node %q", target)
	}
	return n.HandlePropose(id, payload), nil
}

func (t *memTransport) Abort(_ context.Context, target string, id MsgID) error {
	t.mu.Lock()
	n, ok := t.nodes[target]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("no node %q", target)
	}
	n.Drop(id)
	return nil
}

func (t *memTransport) Final(_ context.Context, target string, id MsgID, ts uint64) error {
	t.delay()
	t.mu.Lock()
	n, ok := t.nodes[target]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("no node %q", target)
	}
	n.HandleFinal(id, ts)
	return nil
}

// recorder captures delivery order per node.
type recorder struct {
	mu    sync.Mutex
	order []MsgID
}

func (r *recorder) deliver(id MsgID, _ []byte) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.order = append(r.order, id)
	return true
}

func (r *recorder) snapshot() []MsgID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MsgID, len(r.order))
	copy(out, r.order)
	return out
}

func buildCluster(t *testing.T, tr *memTransport, names ...string) map[string]*recorder {
	t.Helper()
	recs := make(map[string]*recorder, len(names))
	for _, name := range names {
		rec := &recorder{}
		recs[name] = rec
		tr.add(NewNode(name, rec.deliver))
	}
	return recs
}

func TestSingleMessageDeliveredEverywhere(t *testing.T) {
	tr := newMemTransport()
	recs := buildCluster(t, tr, "a", "b", "c")
	id := MsgID{Origin: "client", Seq: 1}
	if err := Multicast(context.Background(), tr, []string{"a", "b", "c"}, id, []byte("op")); err != nil {
		t.Fatal(err)
	}
	for name, rec := range recs {
		got := rec.snapshot()
		if len(got) != 1 || got[0] != id {
			t.Fatalf("node %s delivered %v", name, got)
		}
	}
}

func TestSequentialMessagesKeepOrder(t *testing.T) {
	tr := newMemTransport()
	recs := buildCluster(t, tr, "a", "b")
	group := []string{"a", "b"}
	for i := 1; i <= 5; i++ {
		id := MsgID{Origin: "client", Seq: uint64(i)}
		if err := Multicast(context.Background(), tr, group, id, nil); err != nil {
			t.Fatal(err)
		}
	}
	for name, rec := range recs {
		got := rec.snapshot()
		if len(got) != 5 {
			t.Fatalf("node %s delivered %d messages", name, len(got))
		}
		for i, id := range got {
			if id.Seq != uint64(i+1) {
				t.Fatalf("node %s delivered out of order: %v", name, got)
			}
		}
	}
}

// The core safety property: all nodes deliver the same sequence under
// concurrent senders with random network delays.
func TestConcurrentSendersSameOrderEverywhere(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		tr := newMemTransport()
		tr.maxDelay = 500 * time.Microsecond
		recs := buildCluster(t, tr, "a", "b", "c")
		group := []string{"a", "b", "c"}

		const senders = 4
		const perSender = 8
		var wg sync.WaitGroup
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := 0; i < perSender; i++ {
					id := MsgID{Origin: fmt.Sprintf("s%d", s), Seq: uint64(i)}
					if err := Multicast(context.Background(), tr, group, id, nil); err != nil {
						t.Errorf("multicast: %v", err)
						return
					}
				}
			}(s)
		}
		wg.Wait()

		want := recs["a"].snapshot()
		if len(want) != senders*perSender {
			t.Fatalf("node a delivered %d of %d messages", len(want), senders*perSender)
		}
		for _, name := range []string{"b", "c"} {
			got := recs[name].snapshot()
			if len(got) != len(want) {
				t.Fatalf("node %s delivered %d messages, node a %d", name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d: node %s order differs at %d:\n a: %v\n %s: %v",
						trial, name, i, want, name, got)
				}
			}
		}
	}
}

// Overlapping groups must still agree on the relative order of messages
// addressed to both.
func TestOverlappingGroups(t *testing.T) {
	tr := newMemTransport()
	tr.maxDelay = 300 * time.Microsecond
	recs := buildCluster(t, tr, "a", "b", "c")
	groupAB := []string{"a", "b"}
	groupBC := []string{"b", "c"}

	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			id := MsgID{Origin: "x", Seq: uint64(i)}
			if err := Multicast(context.Background(), tr, groupAB, id, nil); err != nil {
				t.Errorf("multicast ab: %v", err)
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			id := MsgID{Origin: "y", Seq: uint64(i)}
			if err := Multicast(context.Background(), tr, groupBC, id, nil); err != nil {
				t.Errorf("multicast bc: %v", err)
			}
		}(i)
	}
	wg.Wait()

	// b sees all 20; a sees x's 10; c sees y's 10; the order of x-messages
	// at a must be a subsequence-consistent projection of b's order.
	bOrder := recs["b"].snapshot()
	if len(bOrder) != 20 {
		t.Fatalf("node b delivered %d messages", len(bOrder))
	}
	aOrder := recs["a"].snapshot()
	var bProjX []MsgID
	for _, id := range bOrder {
		if id.Origin == "x" {
			bProjX = append(bProjX, id)
		}
	}
	if len(aOrder) != len(bProjX) {
		t.Fatalf("a delivered %d, b's x-projection has %d", len(aOrder), len(bProjX))
	}
	for i := range aOrder {
		if aOrder[i] != bProjX[i] {
			t.Fatalf("a and b disagree on x-message order:\n a: %v\n b|x: %v", aOrder, bProjX)
		}
	}
}

func TestProposeIdempotent(t *testing.T) {
	n := NewNode("a", func(MsgID, []byte) bool { return true })
	id := MsgID{Origin: "c", Seq: 1}
	ts1 := n.HandlePropose(id, nil)
	ts2 := n.HandlePropose(id, nil)
	if ts1 != ts2 {
		t.Fatalf("re-propose returned %d, first %d", ts2, ts1)
	}
}

func TestFinalIdempotentAfterDelivery(t *testing.T) {
	var count int
	n := NewNode("a", func(MsgID, []byte) bool { count++; return true })
	id := MsgID{Origin: "c", Seq: 1}
	ts := n.HandlePropose(id, nil)
	n.HandleFinal(id, ts)
	n.HandleFinal(id, ts) // retry
	if count != 1 {
		t.Fatalf("message delivered %d times", count)
	}
	if n.PendingCount() != 0 {
		t.Fatalf("pending count %d", n.PendingCount())
	}
}

func TestHoldbackUntilSmallerMessageFinal(t *testing.T) {
	var order []MsgID
	n := NewNode("a", func(id MsgID, _ []byte) bool { order = append(order, id); return true })
	id1 := MsgID{Origin: "c", Seq: 1}
	id2 := MsgID{Origin: "c", Seq: 2}
	ts1 := n.HandlePropose(id1, nil) // ts 1
	ts2 := n.HandlePropose(id2, nil) // ts 2
	// Finalize the later message first: it must be held back because id1
	// is pending with a smaller proposed timestamp.
	n.HandleFinal(id2, ts2)
	if len(order) != 0 {
		t.Fatalf("delivered %v before earlier message finalized", order)
	}
	n.HandleFinal(id1, ts1)
	if len(order) != 2 || order[0] != id1 || order[1] != id2 {
		t.Fatalf("delivery order %v", order)
	}
}

func TestClockAdvancesToFinal(t *testing.T) {
	n := NewNode("a", func(MsgID, []byte) bool { return true })
	id := MsgID{Origin: "c", Seq: 1}
	n.HandlePropose(id, nil)
	n.HandleFinal(id, 100)
	if got := n.Clock(); got < 100 {
		t.Fatalf("clock %d did not advance to final ts", got)
	}
}

func TestMulticastEmptyGroup(t *testing.T) {
	tr := newMemTransport()
	err := Multicast(context.Background(), tr, nil, MsgID{Origin: "c", Seq: 1}, nil)
	if err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestMulticastProposeFailure(t *testing.T) {
	tr := newMemTransport()
	buildCluster(t, tr, "a", "b")
	tr.failProposeTo = "b"
	err := Multicast(context.Background(), tr, []string{"a", "b"}, MsgID{Origin: "c", Seq: 1}, nil)
	if err == nil {
		t.Fatal("multicast succeeded despite propose failure")
	}
}

func TestMsgIDLess(t *testing.T) {
	a := MsgID{Origin: "a", Seq: 5}
	b := MsgID{Origin: "b", Seq: 1}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("origin ordering broken")
	}
	c := MsgID{Origin: "a", Seq: 6}
	if !a.Less(c) || c.Less(a) {
		t.Fatal("seq ordering broken")
	}
	if a.String() != "a/5" {
		t.Fatalf("String = %q", a.String())
	}
}

// Payloads must arrive intact at every replica.
func TestPayloadIntegrity(t *testing.T) {
	tr := newMemTransport()
	var mu sync.Mutex
	got := map[string][]byte{}
	for _, name := range []string{"a", "b"} {
		name := name
		tr.add(NewNode(name, func(_ MsgID, p []byte) bool {
			mu.Lock()
			got[name] = p
			mu.Unlock()
			return true
		}))
	}
	payload := []byte{1, 2, 3, 4}
	if err := Multicast(context.Background(), tr, []string{"a", "b"}, MsgID{Origin: "c", Seq: 9}, payload); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for name, p := range got {
		if string(p) != string(payload) {
			t.Fatalf("node %s payload %v", name, p)
		}
	}
}

func TestDropUnblocksLaterMessages(t *testing.T) {
	var order []MsgID
	n := NewNode("a", func(id MsgID, _ []byte) bool { order = append(order, id); return true })
	zombie := MsgID{Origin: "dead", Seq: 1}
	live := MsgID{Origin: "live", Seq: 1}
	n.HandlePropose(zombie, nil) // never finalized
	ts := n.HandlePropose(live, nil)
	n.HandleFinal(live, ts)
	if len(order) != 0 {
		t.Fatalf("live message delivered past a pending zombie: %v", order)
	}
	n.Drop(zombie)
	if len(order) != 1 || order[0] != live {
		t.Fatalf("Drop did not unblock delivery: %v", order)
	}
}

func TestDropKeepsFinalMessages(t *testing.T) {
	var order []MsgID
	n := NewNode("a", func(id MsgID, _ []byte) bool { order = append(order, id); return true })
	id := MsgID{Origin: "c", Seq: 1}
	blocker := MsgID{Origin: "b", Seq: 1}
	n.HandlePropose(blocker, nil)
	ts := n.HandlePropose(id, nil)
	n.HandleFinal(id, ts)
	n.Drop(id) // must be a no-op: the message is final
	n.Drop(blocker)
	if len(order) != 1 || order[0] != id {
		t.Fatalf("final message lost by Drop: %v", order)
	}
}

func TestPurgeOriginsFlushesDeadCoordinators(t *testing.T) {
	var order []MsgID
	n := NewNode("a", func(id MsgID, _ []byte) bool { order = append(order, id); return true })
	zombieA := MsgID{Origin: "dead", Seq: 1}
	zombieB := MsgID{Origin: "dead", Seq: 2}
	live := MsgID{Origin: "a", Seq: 1}
	n.HandlePropose(zombieA, nil)
	n.HandlePropose(zombieB, nil)
	ts := n.HandlePropose(live, nil)
	n.HandleFinal(live, ts)
	if len(order) != 0 {
		t.Fatal("delivery proceeded past zombies")
	}
	n.PurgeOrigins(func(origin string) bool { return origin == "a" })
	if len(order) != 1 || order[0] != live {
		t.Fatalf("purge did not unblock: %v", order)
	}
	if n.PendingCount() != 0 {
		t.Fatalf("pending after purge: %d", n.PendingCount())
	}
}

func TestMulticastFailureAborts(t *testing.T) {
	tr := newMemTransport()
	recs := buildCluster(t, tr, "a", "b")
	tr.failProposeTo = "b"
	bad := MsgID{Origin: "c", Seq: 1}
	if err := Multicast(context.Background(), tr, []string{"a", "b"}, bad, nil); err == nil {
		t.Fatal("multicast should fail")
	}
	// The failed message must not block a subsequent healthy multicast.
	tr.failProposeTo = ""
	good := MsgID{Origin: "c", Seq: 2}
	if err := Multicast(context.Background(), tr, []string{"a", "b"}, good, nil); err != nil {
		t.Fatal(err)
	}
	for name, rec := range recs {
		got := rec.snapshot()
		if len(got) != 1 || got[0] != good {
			t.Fatalf("node %s delivered %v, want only the good message", name, got)
		}
	}
}
