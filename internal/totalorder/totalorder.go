// Package totalorder implements Skeen's total-order multicast algorithm,
// the primitive beneath state-machine replication of persistent objects
// (paper Section 4.1/5: Infinispan relies on JGroups' TOA protocol, which
// uses Skeen's algorithm).
//
// Protocol, per message m multicast to group G:
//
//  1. The sender sends PROPOSE(m) to every node of G.
//  2. Each receiver increments its logical clock, stores m as pending with
//     the proposed timestamp, and returns that timestamp.
//  3. The sender takes the maximum of all proposals as the final timestamp
//     and sends FINAL(m, ts) to every node of G.
//  4. A receiver marks m final, advances its clock to max(clock, ts), and
//     delivers, in timestamp order, every final message whose timestamp is
//     smaller than the (proposed or final) timestamp of every other pending
//     message. Ties break on message id, which is globally unique.
//
// Because a pending message's final timestamp can only be >= its proposed
// timestamp at this node, the delivery rule is safe, and all nodes deliver
// overlapping messages in the same total order.
package totalorder

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// MsgID uniquely identifies a multicast message: the originating sender
// plus a sender-local sequence number.
type MsgID struct {
	Origin string
	Seq    uint64
}

// String renders the id for logs and tie-breaking.
func (m MsgID) String() string { return fmt.Sprintf("%s/%d", m.Origin, m.Seq) }

// Less orders ids deterministically for timestamp ties.
func (m MsgID) Less(o MsgID) bool {
	if m.Origin != o.Origin {
		return m.Origin < o.Origin
	}
	return m.Seq < o.Seq
}

// Deliver is invoked exactly once per message, in total order, on the
// node's delivery goroutine. Implementations must not block indefinitely.
// The return value reports whether the message was actually applied to
// local state: an SMR layer that has to skip an op (no base copy for the
// object yet) returns false, and WaitDelivered surfaces that to the
// coordinator so the op is not acknowledged as stable here.
type Deliver func(id MsgID, payload []byte) bool

type pendingMsg struct {
	id      MsgID
	payload []byte
	ts      uint64
	final   bool
	added   time.Time
}

// Node is one group member's state machine for the protocol. A Node is
// driven by HandlePropose/HandleFinal (wired to the node's RPC layer) and
// delivers through the callback given at construction. Safe for concurrent
// use.
type Node struct {
	id      string
	deliver Deliver

	// deliverMu serializes HandleFinal end-to-end so that the pop order
	// (decided under mu) equals the callback order: without it, two
	// concurrent finals could pop m1 then m2 but run deliver(m2) first.
	deliverMu sync.Mutex

	mu        sync.Mutex
	clock     uint64
	ttl       time.Duration
	pending   map[MsgID]*pendingMsg
	delivered map[MsgID]struct{}

	// applied records, for messages whose deliver callback has returned,
	// whether the callback applied them (its return value); it lags
	// delivered (set when a message is popped) by the callback's runtime
	// and feeds WaitDelivered. Kept separate from delivered on purpose:
	// HandlePropose consults delivered for idempotence, and a message must
	// count as delivered the moment it is popped or a retried propose
	// could re-enqueue (and double-deliver) it mid-callback.
	applied   map[MsgID]bool
	applyCond *sync.Cond

	// closed aborts WaitDelivered early (see Close).
	closed bool
}

// NewNode builds a protocol node. id must be the node's cluster-unique
// name; deliver receives messages in total order.
func NewNode(id string, deliver Deliver) *Node {
	n := &Node{
		id:        id,
		deliver:   deliver,
		pending:   make(map[MsgID]*pendingMsg),
		delivered: make(map[MsgID]struct{}),
		applied:   make(map[MsgID]bool),
	}
	n.applyCond = sync.NewCond(&n.mu)
	return n
}

// ID returns the node's name.
func (n *Node) ID() string { return n.id }

// Clock returns the current logical clock (for tests and introspection).
func (n *Node) Clock() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.clock
}

// HandlePropose records a pending message and returns this node's proposed
// timestamp. It is idempotent: re-proposing a known message returns the
// original proposal.
func (n *Node) HandlePropose(id MsgID, payload []byte) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, done := n.delivered[id]; done {
		// Retry of an already-delivered message: echo a harmless value.
		return n.clock
	}
	if p, ok := n.pending[id]; ok {
		return p.ts
	}
	n.clock++
	n.pending[id] = &pendingMsg{id: id, payload: payload, ts: n.clock, added: time.Now()}
	return n.clock
}

// SetPendingTTL bounds how long a proposed-but-never-finalized message may
// sit at the head of the queue. A coordinator that fails between PROPOSE
// and FINAL normally cleans up with ABORT (or is purged on view change),
// but under message loss the ABORT itself can vanish — the TTL is the last
// line of defense against a zombie proposal blocking delivery forever.
// Expired orphans are discarded the next time a delivery is attempted.
// Pick a TTL comfortably above the coordinator's propose/abort timeout: a
// FINAL that arrives for an already-expired message is ignored, so too
// small a TTL can drop an operation that the rest of the group delivers
// (repaired only by the next view change's state transfer). Zero disables
// the sweep.
func (n *Node) SetPendingTTL(d time.Duration) {
	n.mu.Lock()
	n.ttl = d
	n.mu.Unlock()
}

// HandleFinal assigns the final timestamp to a pending message and delivers
// every message that became deliverable. Delivery happens synchronously on
// the caller's goroutine, outside the node lock, preserving order.
func (n *Node) HandleFinal(id MsgID, ts uint64) {
	n.deliverMu.Lock()
	defer n.deliverMu.Unlock()
	n.mu.Lock()
	if _, done := n.delivered[id]; done {
		n.mu.Unlock()
		return
	}
	p, ok := n.pending[id]
	if !ok {
		// FINAL for a message we never stored (the orphan TTL discarded
		// it, or a stale retry). Fabricating a final entry here would
		// deliver a payload-less message, so ignore it; if the rest of
		// the group delivered, the next state transfer reconciles us.
		n.mu.Unlock()
		return
	}
	p.ts = ts
	p.final = true
	if ts > n.clock {
		n.clock = ts
	}
	ready := n.collectDeliverableLocked()
	n.mu.Unlock()

	n.deliverAll(ready)
}

// deliverAll runs the deliver callback for each popped message, in order,
// and records each callback's applied result for WaitDelivered.
func (n *Node) deliverAll(ready []*pendingMsg) {
	if len(ready) == 0 {
		return
	}
	results := make([]bool, len(ready))
	for i, m := range ready {
		results[i] = n.deliver(m.id, m.payload)
	}
	n.mu.Lock()
	for i, m := range ready {
		n.applied[m.id] = results[i]
	}
	n.mu.Unlock()
	n.applyCond.Broadcast()
}

// WaitDelivered blocks until the deliver callback for id has returned on
// this node, or until timeout elapses, and reports whether the callback
// applied the message. The SMR layer's FINAL handler uses it to withhold
// the coordinator's ack until the operation is applied here, not merely
// finalized: a finalized message can sit behind an earlier pending one,
// and an ack issued in that window would describe state held only in the
// coordinator's memory — a coordinator crash would then silently drop an
// acknowledged operation. A callback that declined to apply (skipped for
// want of a base copy) fails the wait immediately for the same reason.
func (n *Node) WaitDelivered(id MsgID, timeout time.Duration) bool {
	timer := time.AfterFunc(timeout, func() { n.applyCond.Broadcast() })
	defer timer.Stop()
	deadline := time.Now().Add(timeout)
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if ok, present := n.applied[id]; present {
			return ok
		}
		if n.closed || !time.Now().Before(deadline) {
			return false
		}
		n.applyCond.Wait()
	}
}

// Close aborts every in-flight and future WaitDelivered with a negative
// verdict. A node shutting down must not sit out the full wait bound for
// messages that will never be applied — a FINAL handler parked in
// WaitDelivered would stall the whole shutdown behind it.
func (n *Node) Close() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	n.applyCond.Broadcast()
}

// collectDeliverableLocked pops, in order, every final message whose
// (ts, id) precedes all other pending messages.
func (n *Node) collectDeliverableLocked() []*pendingMsg {
	var out []*pendingMsg
	for {
		var min *pendingMsg
		for _, p := range n.pending {
			if min == nil || less(p, min) {
				min = p
			}
		}
		if min == nil {
			return out
		}
		if !min.final {
			if n.ttl > 0 && !min.added.IsZero() && time.Since(min.added) > n.ttl {
				// Expired orphan: its coordinator's ABORT never reached
				// us. Discard so it cannot block delivery forever.
				delete(n.pending, min.id)
				continue
			}
			return out
		}
		delete(n.pending, min.id)
		n.delivered[min.id] = struct{}{}
		out = append(out, min)
	}
}

func less(a, b *pendingMsg) bool {
	if a.ts != b.ts {
		return a.ts < b.ts
	}
	return a.id.Less(b.id)
}

// Drop removes one pending, not-yet-finalized message and delivers
// whatever that unblocks. Senders call it (directly and through
// Transport.Abort) when a multicast fails partway, so an abandoned
// message cannot hold back later deliveries.
func (n *Node) Drop(id MsgID) {
	n.deliverMu.Lock()
	defer n.deliverMu.Unlock()
	n.mu.Lock()
	if p, ok := n.pending[id]; ok && !p.final {
		delete(n.pending, id)
	}
	ready := n.collectDeliverableLocked()
	n.mu.Unlock()
	n.deliverAll(ready)
}

// PurgeOrigins removes pending messages that were proposed but never
// finalized by origins that are no longer alive, then delivers whatever
// that unblocks. It implements the flush step of view synchrony: a
// coordinator that dies between PROPOSE and FINAL would otherwise leave a
// zombie pending message that holds back every later delivery. Messages
// that already have their final timestamp are kept and delivered normally.
func (n *Node) PurgeOrigins(alive func(origin string) bool) {
	n.deliverMu.Lock()
	defer n.deliverMu.Unlock()
	n.mu.Lock()
	for id, p := range n.pending {
		if !p.final && !alive(id.Origin) {
			delete(n.pending, id)
		}
	}
	ready := n.collectDeliverableLocked()
	n.mu.Unlock()
	n.deliverAll(ready)
}

// PendingCount reports how many messages await delivery (for tests).
func (n *Node) PendingCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.pending)
}

// Transport carries protocol messages to group members. The DSO server
// implements it over its inter-node RPC connections; tests use an
// in-process fake.
type Transport interface {
	// Propose asks target to timestamp the message and returns the
	// proposal.
	Propose(ctx context.Context, target string, id MsgID, payload []byte) (uint64, error)
	// Final announces the final timestamp to target.
	Final(ctx context.Context, target string, id MsgID, ts uint64) error
	// Abort asks target to drop a pending, not-yet-finalized message
	// (best effort, used when a multicast fails partway).
	Abort(ctx context.Context, target string, id MsgID) error
}

// Multicast runs the sender side of the protocol: it proposes to every
// member of group, computes the final timestamp, and distributes it. The
// group must be non-empty. On error the message may be stuck pending at a
// subset of the group; the caller (SMR layer) is responsible for retrying
// in a new view.
func Multicast(ctx context.Context, tr Transport, group []string, id MsgID, payload []byte) error {
	if len(group) == 0 {
		return fmt.Errorf("totalorder: empty group for %s", id)
	}
	// Deterministic order keeps tests reproducible; correctness does not
	// depend on it.
	members := make([]string, len(group))
	copy(members, group)
	sort.Strings(members)

	type proposal struct {
		ts  uint64
		err error
	}
	proposals := make(chan proposal, len(members))
	for _, m := range members {
		go func(m string) {
			ts, err := tr.Propose(ctx, m, id, payload)
			proposals <- proposal{ts: ts, err: err}
		}(m)
	}
	var final uint64
	var proposeErr error
	for range members {
		p := <-proposals
		if p.err != nil && proposeErr == nil {
			proposeErr = p.err
		}
		if p.ts > final {
			final = p.ts
		}
	}
	if proposeErr != nil {
		// Clean up: members that did store the message must drop it, or
		// the abandoned proposal would block their later deliveries.
		abort(ctx, tr, members, id)
		return fmt.Errorf("totalorder: propose %s: %w", id, proposeErr)
	}

	errs := make(chan error, len(members))
	for _, m := range members {
		go func(m string) {
			errs <- tr.Final(ctx, m, id, final)
		}(m)
	}
	var finalErr error
	for range members {
		if err := <-errs; err != nil && finalErr == nil {
			finalErr = err
		}
	}
	if finalErr != nil {
		// Members that received FINAL will deliver; aborting only drops
		// the message where it never finalized. Replica divergence from a
		// crash at this point is repaired by the post-view state transfer
		// (see server rebalancing).
		abort(ctx, tr, members, id)
		return fmt.Errorf("totalorder: final %s: %w", id, finalErr)
	}
	return nil
}

// abort drops a message at every member. The first attempt is synchronous
// (callers may immediately multicast again and must not race their own
// cleanup); a member whose ABORT fails — e.g. the same fault that broke
// the multicast also eats the abort — is retried in the background, since
// an undropped proposal blocks that member's deliveries until the orphan
// TTL fires.
func abort(ctx context.Context, tr Transport, members []string, id MsgID) {
	for _, m := range members {
		if err := tr.Abort(ctx, m, id); err == nil {
			continue
		}
		go func(m string) {
			for attempt := 1; attempt <= 4; attempt++ {
				time.Sleep(time.Duration(attempt) * 25 * time.Millisecond)
				actx, cancel := context.WithTimeout(context.Background(), time.Second)
				err := tr.Abort(actx, m, id)
				cancel()
				if err == nil {
					return
				}
			}
		}(m)
	}
}
