package totalorder

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"
)

func TestBatchRoundTrip(t *testing.T) {
	cases := [][][]byte{
		{[]byte("one")},
		{[]byte("a"), []byte(""), []byte("ccc")},
		{bytes.Repeat([]byte{0xab}, 300), []byte("tail")},
	}
	for i, parts := range cases {
		enc := AppendBatch(nil, parts)
		got, err := SplitBatch(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(got) != len(parts) {
			t.Fatalf("case %d: %d parts, want %d", i, len(got), len(parts))
		}
		for j := range parts {
			if !bytes.Equal(got[j], parts[j]) {
				t.Fatalf("case %d part %d: %q != %q", i, j, got[j], parts[j])
			}
		}
	}
}

func TestBatchRejectsCorruptContainers(t *testing.T) {
	bad := [][]byte{
		nil,                      // no header
		{0x00},                   // zero parts
		{0x05, 0x01, 'x'},        // count beyond payload
		{0x01, 0x09, 'x'},        // part length beyond payload
		{0xff, 0xff, 0xff, 0xff}, // unterminated uvarint-ish garbage
		append(AppendBatch(nil, [][]byte{{'a'}}), 'z'), // trailing bytes
	}
	for i, data := range bad {
		if _, err := SplitBatch(data); err == nil {
			t.Fatalf("case %d: corrupt container %v accepted", i, data)
		}
	}
}

// A batch payload is one protocol message: a duplicated FINAL (the chaos
// engine duplicates frames, clients retry) must not deliver the batch — and
// with it every sub-operation — a second time.
func TestBatchDuplicateFinalDeliversOnce(t *testing.T) {
	tr := newMemTransport()
	recs := buildCluster(t, tr, "a", "b")
	id := MsgID{Origin: "a", Seq: 1}
	payload := AppendBatch(nil, [][]byte{[]byte("op1"), []byte("op2"), []byte("op3")})
	if err := Multicast(context.Background(), tr, []string{"a", "b"}, id, payload); err != nil {
		t.Fatal(err)
	}
	// Replay the FINAL (and a late PROPOSE retry) at both members.
	for _, name := range []string{"a", "b"} {
		n := tr.nodes[name]
		n.HandlePropose(id, payload)
		n.HandleFinal(id, 1)
		n.HandleFinal(id, 99)
	}
	for name, rec := range recs {
		if got := rec.snapshot(); len(got) != 1 || got[0] != id {
			t.Fatalf("node %s delivered %v, want exactly one %v", name, got, id)
		}
	}
}

// Aborting a batch drops all of its sub-operations at once and unblocks
// later rounds, exactly like a single-op abort: the batch is one MsgID.
func TestBatchAbortDropsWholeBatchAndUnblocks(t *testing.T) {
	rec := &recorder{}
	n := NewNode("a", rec.deliver)
	stuck := MsgID{Origin: "x", Seq: 1}
	n.HandlePropose(stuck, AppendBatch(nil, [][]byte{[]byte("w1"), []byte("w2")}))
	later := MsgID{Origin: "y", Seq: 1}
	ts := n.HandlePropose(later, AppendBatch(nil, [][]byte{[]byte("w3")}))
	n.HandleFinal(later, ts)
	if got := rec.snapshot(); len(got) != 0 {
		t.Fatalf("delivered %v behind a pending batch", got)
	}
	n.Drop(stuck)
	if got := rec.snapshot(); len(got) != 1 || got[0] != later {
		t.Fatalf("delivered %v after abort, want %v", rec.snapshot(), later)
	}
	if ok := n.WaitDelivered(stuck, 10*time.Millisecond); ok {
		t.Fatal("aborted batch reported applied")
	}
}

// A batch whose coordinator dies between PROPOSE and FINAL is garbage
// collected by the pending TTL like any orphan, and a FINAL arriving after
// the sweep is ignored rather than delivering a half-forgotten batch.
func TestBatchOrphanExpiresUnderTTL(t *testing.T) {
	rec := &recorder{}
	n := NewNode("a", rec.deliver)
	n.SetPendingTTL(20 * time.Millisecond)
	orphan := MsgID{Origin: "dead", Seq: 1}
	n.HandlePropose(orphan, AppendBatch(nil, [][]byte{[]byte("w1"), []byte("w2")}))
	time.Sleep(40 * time.Millisecond)
	// The sweep runs on the next delivery attempt; drive one with an
	// unrelated later round.
	live := MsgID{Origin: "alive", Seq: 1}
	ts := n.HandlePropose(live, AppendBatch(nil, [][]byte{[]byte("w3")}))
	n.HandleFinal(live, ts)
	if got := rec.snapshot(); len(got) != 1 || got[0] != live {
		t.Fatalf("delivered %v, want only %v past the expired orphan", got, live)
	}
	// The late FINAL for the swept batch must not resurrect it.
	n.HandleFinal(orphan, 1)
	if got := rec.snapshot(); len(got) != 1 {
		t.Fatalf("expired orphan batch was delivered: %v", got)
	}
	if n.PendingCount() != 0 {
		t.Fatalf("pending = %d, want 0", n.PendingCount())
	}
}

// Pipelined rounds from one origin: several outstanding batches multicast
// concurrently must deliver in the same order at every member.
func TestBatchPipelinedRoundsKeepOrder(t *testing.T) {
	tr := newMemTransport()
	tr.maxDelay = 2 * time.Millisecond
	recs := buildCluster(t, tr, "a", "b", "c")
	group := []string{"a", "b", "c"}
	const rounds = 8
	var wg sync.WaitGroup
	for i := 1; i <= rounds; i++ {
		wg.Add(1)
		go func(seq uint64) {
			defer wg.Done()
			id := MsgID{Origin: "a", Seq: seq}
			payload := AppendBatch(nil, [][]byte{[]byte("w"), []byte("w")})
			if err := Multicast(context.Background(), tr, group, id, payload); err != nil {
				t.Errorf("round %d: %v", seq, err)
			}
		}(uint64(i))
	}
	wg.Wait()
	ref := recs["a"].snapshot()
	if len(ref) != rounds {
		t.Fatalf("node a delivered %d rounds, want %d", len(ref), rounds)
	}
	for name, rec := range recs {
		got := rec.snapshot()
		if len(got) != len(ref) {
			t.Fatalf("node %s delivered %d rounds, want %d", name, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("node %s order %v differs from node a %v", name, got, ref)
			}
		}
	}
}
