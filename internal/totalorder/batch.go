package totalorder

import (
	"encoding/binary"
	"fmt"
)

// Batch container: the payload framing for group commit. One multicast
// message (one MsgID, one ordering round) may carry several application
// payloads; the SMR layer coalesces concurrent writes to one object into
// such a batch so the whole group pays a single PROPOSE/FINAL exchange for
// N operations. The protocol itself is oblivious — a batch is ordered,
// TTL-garbage-collected, aborted and delivered exactly like any other
// payload, and the delivery callback splits it back into its parts.
//
// Wire image: uvarint part count, then per part a uvarint length followed
// by that many bytes.

// AppendBatch appends the batch container for parts to dst and returns
// the extended slice.
func AppendBatch(dst []byte, parts [][]byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(parts)))
	for _, p := range parts {
		dst = binary.AppendUvarint(dst, uint64(len(p)))
		dst = append(dst, p...)
	}
	return dst
}

// SplitBatch decodes a batch container built by AppendBatch. The returned
// sub-payloads alias data; they must not be retained past the buffer's
// lifetime without a copy.
func SplitBatch(data []byte) ([][]byte, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("totalorder: bad batch header")
	}
	if count == 0 {
		return nil, fmt.Errorf("totalorder: empty batch")
	}
	if count > uint64(len(data)) {
		// Each part costs at least one length byte, so a count beyond the
		// remaining bytes is corrupt — reject before allocating for it.
		return nil, fmt.Errorf("totalorder: batch count %d exceeds payload", count)
	}
	data = data[n:]
	parts := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		size, n := binary.Uvarint(data)
		if n <= 0 || size > uint64(len(data)-n) {
			return nil, fmt.Errorf("totalorder: truncated batch part %d", i)
		}
		data = data[n:]
		parts = append(parts, data[:size:size])
		data = data[size:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("totalorder: %d trailing bytes after batch", len(data))
	}
	return parts, nil
}
