package costmodel

import (
	"math"
	"testing"
	"time"
)

func TestLambdaCost(t *testing.T) {
	// 1 GB for 1000s = 1000 GB-s.
	got := LambdaCost(1000, 0)
	want := 1000 * LambdaPerGBSecond
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("LambdaCost = %v, want %v", got, want)
	}
	withReq := LambdaCost(0, 1_000_000)
	if math.Abs(withReq-0.2) > 1e-9 {
		t.Fatalf("request cost = %v, want 0.2", withReq)
	}
}

func TestEC2Cost(t *testing.T) {
	got := EC2Cost(0.384, 10, time.Hour)
	if math.Abs(got-3.84) > 1e-9 {
		t.Fatalf("EC2Cost = %v", got)
	}
}

// The paper quotes ~0.25 cents/s for 80 x 1792MB functions (plus storage)
// and ~0.28 for 2048MB; EMR with 10 workers ~0.15 cents/s.
func TestPaperRatesReproduce(t *testing.T) {
	crucial1792 := CrucialPerSecond(80, 1792, 1) * 100 // cents/s
	if crucial1792 < 0.23 || crucial1792 > 0.27 {
		t.Fatalf("Crucial 1792MB rate = %v cents/s, want ~0.25", crucial1792)
	}
	crucial2048 := CrucialPerSecond(80, 2048, 1) * 100
	if crucial2048 < 0.26 || crucial2048 > 0.30 {
		t.Fatalf("Crucial 2048MB rate = %v cents/s, want ~0.28", crucial2048)
	}
	spark := EMRClusterPerSecond(10) * 100
	if spark < 0.13 || spark > 0.16 {
		t.Fatalf("EMR rate = %v cents/s, want ~0.15", spark)
	}
}

func TestRunCosts(t *testing.T) {
	s := SparkRun(168, 34, 10)
	if s.TotalUSD <= s.IterUSD || s.IterUSD <= 0 {
		t.Fatalf("spark costs = %+v", s)
	}
	c := CrucialRun(87, 20.4, 80, 2048, 1)
	if c.TotalUSD <= c.IterUSD || c.IterUSD <= 0 {
		t.Fatalf("crucial costs = %+v", c)
	}
	// Table 3 k-means (k=25): total costs roughly comparable
	// (paper: 0.246 vs 0.244 USD).
	if ratio := c.TotalUSD / s.TotalUSD; ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("k=25 cost ratio = %v, want ~1", ratio)
	}
}

// With much longer compute (k=200), Crucial's higher per-second rate makes
// it more expensive, as in Table 3.
func TestLongComputeFavorsSpark(t *testing.T) {
	s := SparkRun(330, 288, 10)
	c := CrucialRun(234, 246, 80, 2048, 1)
	if c.IterUSD <= s.IterUSD {
		t.Fatalf("long-compute iteration cost: crucial %v <= spark %v", c.IterUSD, s.IterUSD)
	}
}
