// Package costmodel prices experiment runs with the 2019 us-east-1
// on-demand rates the paper uses (Section 6.2.3, Table 3). With these
// constants, the paper's quoted rates reproduce: a Crucial setup of 80
// concurrent 1792 MB functions plus one r5.2xlarge DSO node costs ~0.25
// cents/s, and the 11-machine EMR cluster ~0.15 cents/s.
package costmodel

import "time"

// AWS on-demand prices, USD, us-east-1, 2019.
const (
	// LambdaPerGBSecond is AWS Lambda's duration price.
	LambdaPerGBSecond = 0.0000166667
	// LambdaPerRequest is the per-invocation price.
	LambdaPerRequest = 0.0000002

	// EC2 hourly rates.
	M5XLargePerHour  = 0.192 // 4 vCPU (EMR master)
	M52XLargePerHour = 0.384 // 8 vCPU (EMR core nodes, Fig. 3 VM)
	M54XLargePerHour = 0.768 // 16 vCPU
	R52XLargePerHour = 0.504 // 8 vCPU, memory-optimized (DSO nodes)

	// EMR service fees per instance-hour.
	EMRFeeM5XLargePerHour  = 0.048
	EMRFeeM52XLargePerHour = 0.096

	// S3 standard-tier request and storage rates (the durability tier's
	// cold store: WAL segment flushes are PUTs, recovery reads are GETs).
	S3PerPut     = 0.005 / 1000.0  // PUT, COPY, POST, LIST per request
	S3PerGet     = 0.0004 / 1000.0 // GET, SELECT per request
	S3PerGBMonth = 0.023           // first 50 TB / month
)

// LambdaCost prices function execution: billed GB-seconds plus requests.
func LambdaCost(gbSeconds float64, requests uint64) float64 {
	return gbSeconds*LambdaPerGBSecond + float64(requests)*LambdaPerRequest
}

// EC2Cost prices count instances at an hourly rate for a duration.
func EC2Cost(hourlyRate float64, count int, d time.Duration) float64 {
	return hourlyRate * float64(count) * d.Hours()
}

// S3Cost prices the durability tier's cold-storage traffic: PUT-class
// requests (WAL flushes, snapshot blobs, manifests), GET-class requests
// (recovery reads), plus storing the resident bytes for a duration.
// LISTs are priced as PUTs, matching the S3 rate card.
func S3Cost(puts, gets uint64, residentBytes uint64, d time.Duration) float64 {
	storage := float64(residentBytes) / (1 << 30) * S3PerGBMonth * d.Hours() / (30 * 24)
	return float64(puts)*S3PerPut + float64(gets)*S3PerGet + storage
}

// EMRClusterPerSecond is the paper's Spark deployment rate: one m5.xlarge
// master plus workers m5.2xlarge core nodes, including EMR fees.
func EMRClusterPerSecond(workers int) float64 {
	perHour := (M5XLargePerHour + EMRFeeM5XLargePerHour) +
		float64(workers)*(M52XLargePerHour+EMRFeeM52XLargePerHour)
	return perHour / 3600.0
}

// CrucialPerSecond is the Crucial deployment rate: functions of memoryMB
// running concurrently plus DSO r5.2xlarge nodes.
func CrucialPerSecond(functions int, memoryMB int, dsoNodes int) float64 {
	lambda := float64(functions) * float64(memoryMB) / 1024.0 * LambdaPerGBSecond
	dso := float64(dsoNodes) * R52XLargePerHour / 3600.0
	return lambda + dso
}

// RunCost is one experiment's priced breakdown (a Table 3 row half).
type RunCost struct {
	// TotalSeconds includes load + iterations; IterSeconds only the
	// iterative phase.
	TotalSeconds float64
	IterSeconds  float64
	// TotalUSD and IterUSD price those windows.
	TotalUSD float64
	IterUSD  float64
}

// SparkRun prices a Spark experiment on the paper's EMR cluster.
func SparkRun(totalSeconds, iterSeconds float64, workers int) RunCost {
	rate := EMRClusterPerSecond(workers)
	return RunCost{
		TotalSeconds: totalSeconds,
		IterSeconds:  iterSeconds,
		TotalUSD:     rate * totalSeconds,
		IterUSD:      rate * iterSeconds,
	}
}

// CrucialRun prices a Crucial experiment (concurrent functions + DSO).
func CrucialRun(totalSeconds, iterSeconds float64, functions, memoryMB, dsoNodes int) RunCost {
	rate := CrucialPerSecond(functions, memoryMB, dsoNodes)
	return RunCost{
		TotalSeconds: totalSeconds,
		IterSeconds:  iterSeconds,
		TotalUSD:     rate * totalSeconds,
		IterUSD:      rate * iterSeconds,
	}
}
