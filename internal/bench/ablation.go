package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"crucial"
	"crucial/internal/client"
	"crucial/internal/cluster"
	"crucial/internal/netsim"
)

// Ablations isolate the design choices DESIGN.md calls out, beyond the
// paper's own figures:
//
//   - ablation-shipping: method-call shipping (the paper's Section 4.2)
//     versus the data-shipping anti-pattern it replaces.
//   - ablation-blocking: server-side blocking synchronization versus
//     storage polling, on identical in-memory infrastructure.

// Ablation experiment ids.
const (
	ExpAblationShipping = "ablation-shipping"
	ExpAblationBlocking = "ablation-blocking"
)

// AblationNames lists the extra experiments (not part of RunAll).
func AblationNames() []string {
	return []string{ExpAblationShipping, ExpAblationBlocking}
}

// AblationShipping compares aggregating a shared vector by shipping the
// method (AddAll executes on the owner) against shipping the data
// (optimistic read-modify-write with CompareAndSet). Under contention the
// data-shipping loop pays transfers and retries; the shipped method pays
// one message.
func AblationShipping(w io.Writer, o Options) error {
	o = o.withDefaults()
	profile := netsim.AWS2019(o.Scale)
	// Contention is kept moderate: the optimistic data-shipping loop's
	// retry count grows quadratically with workers, which is the point —
	// but it must still terminate in benchmark time.
	workers := pick(o, 4, 10)
	updates := pick(o, 6, 12) // per worker
	dims := pick(o, 64, 128)

	clu, err := cluster.StartLocal(cluster.Options{Nodes: 2, Profile: profile})
	if err != nil {
		return err
	}
	defer func() { _ = clu.Close() }()
	clients := make([]*client.Client, workers)
	for i := range clients {
		if clients[i], err = clu.NewClient(); err != nil {
			return err
		}
		defer func(c *client.Client) { _ = c.Close() }(clients[i])
	}
	ctx := context.Background()
	delta := make([]float64, dims)
	for i := range delta {
		delta[i] = 1
	}

	// Method shipping: AddAll executes on the owning node.
	shipped := crucial.NewAtomicDoubleArray("abl/shipped", dims)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			arr := crucial.NewAtomicDoubleArray("abl/shipped", dims)
			arr.H.BindDSO(clients[tid])
			for u := 0; u < updates; u++ {
				if err := arr.AddAll(ctx, delta); err != nil {
					errs[tid] = err
					return
				}
			}
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	shippedTime := time.Since(start)
	sum, err := func() (float64, error) {
		shipped.H.BindDSO(clients[0])
		all, err := shipped.GetAll(ctx)
		if err != nil {
			return 0, err
		}
		return all[0], nil
	}()
	if err != nil {
		return err
	}
	if int(sum) != workers*updates {
		return fmt.Errorf("bench: shipped aggregate = %v, want %d", sum, workers*updates)
	}

	// Data shipping: fetch the vector, add locally, CAS it back; retry on
	// contention — the client-side AllReduce the DSO layer obviates.
	seed := crucial.NewAtomicReference[[]float64]("abl/data")
	seed.H.BindDSO(clients[0])
	if err := seed.Set(ctx, make([]float64, dims)); err != nil {
		return err
	}
	var retries int64
	var retryMu sync.Mutex
	start = time.Now()
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			ref := crucial.NewAtomicReference[[]float64]("abl/data")
			ref.H.BindDSO(clients[tid])
			for u := 0; u < updates; u++ {
				for {
					cur, ok, err := ref.Get(ctx)
					if err != nil {
						errs[tid] = err
						return
					}
					if !ok {
						errs[tid] = fmt.Errorf("bench: reference not initialized")
						return
					}
					next := make([]float64, dims)
					copy(next, cur)
					for i := range next {
						next[i] += delta[i]
					}
					swapped, err := ref.CompareAndSet(ctx, cur, next)
					if err != nil {
						errs[tid] = err
						return
					}
					if swapped {
						break
					}
					retryMu.Lock()
					retries++
					retryMu.Unlock()
				}
			}
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	dataTime := time.Since(start)

	totalUpdates := workers * updates
	title(w, "Ablation: method-call shipping vs data shipping (shared vector aggregate)")
	row(w, "%-18s %12s %14s %12s", "STRATEGY", "TIME (ms)", "MSGS/UPDATE", "RETRIES")
	row(w, "%-18s %12.0f %14.1f %12d", "method shipping",
		float64(modeled(shippedTime, o.Scale).Milliseconds()), 1.0, 0)
	row(w, "%-18s %12.0f %14.1f %12d", "data shipping",
		float64(modeled(dataTime, o.Scale).Milliseconds()),
		float64(2*(int64(totalUpdates)+retries))/float64(totalUpdates), retries)
	note(w, "shipping the method costs one message per update and never conflicts;")
	note(w, "shipping the data pays a round trip to read, one to write, and retries under")
	note(w, "contention (Section 4.2: O(N) vs O(N^2) for N-way aggregation)")
	return nil
}

// AblationBlocking compares the Crucial barrier (calls block server side,
// wake-ups are pushed) against a polling barrier built on the very same
// grid used as a KV store — isolating blocking-vs-polling from all other
// variables.
func AblationBlocking(w io.Writer, o Options) error {
	o = o.withDefaults()
	if !o.Quick && o.Scale < 0.25 {
		o.Scale = 0.25
	}
	profile := netsim.AWS2019(o.Scale)
	n := pick(o, 4, 40)
	rounds := pick(o, 2, 5)
	step := profile.Scaled(200 * time.Millisecond)
	pollEvery := profile.Scaled(20 * time.Millisecond)

	clu, err := cluster.StartLocal(cluster.Options{Nodes: 2, Profile: profile})
	if err != nil {
		return err
	}
	defer func() { _ = clu.Close() }()
	clients := make([]*client.Client, 8)
	for i := range clients {
		if clients[i], err = clu.NewClient(); err != nil {
			return err
		}
		defer func(c *client.Client) { _ = c.Close() }(clients[i])
	}
	ctx := context.Background()

	// Blocking barrier.
	blockingWait, err := lockstep(n, rounds, step, func(tid int) roundFn {
		b := crucial.NewCyclicBarrier("ablb/barrier", n)
		b.H.BindDSO(clients[tid%len(clients)])
		return func(int) error {
			_, err := b.Await(ctx)
			return err
		}
	})
	if err != nil {
		return err
	}

	// Polling barrier on the same grid: INCR an arrival counter, poll a
	// round counter cell until the last arrival advances it.
	arrivals := crucial.NewAtomicLong("ablb/arrivals")
	roundCtr := crucial.NewAtomicLong("ablb/round")
	arrivals.H.BindDSO(clients[0])
	roundCtr.H.BindDSO(clients[0])
	pollingWait, err := lockstep(n, rounds, step, func(tid int) roundFn {
		arr := crucial.NewAtomicLong("ablb/arrivals")
		rnd := crucial.NewAtomicLong("ablb/round")
		arr.H.BindDSO(clients[tid%len(clients)])
		rnd.H.BindDSO(clients[tid%len(clients)])
		return func(round int) error {
			v, err := arr.AddAndGet(ctx, 1)
			if err != nil {
				return err
			}
			if v == int64(n)*(int64(round)+1) {
				// Last arrival of this round advances the round counter.
				if _, err := rnd.IncrementAndGet(ctx); err != nil {
					return err
				}
				return nil
			}
			for {
				cur, err := rnd.Get(ctx)
				if err != nil {
					return err
				}
				if cur > int64(round) {
					return nil
				}
				if err := netsim.Sleep(ctx, pollEvery); err != nil {
					return err
				}
			}
		}
	})
	if err != nil {
		return err
	}

	title(w, "Ablation: server-side blocking vs storage polling (barrier on one grid)")
	row(w, "%-22s %16s", "SYNCHRONIZATION", "AVG WAIT (ms)")
	row(w, "%-22s %16.1f", "blocking (Crucial)",
		float64(modeled(blockingWait, o.Scale).Milliseconds()))
	row(w, "%-22s %16.1f", "polling (same grid)",
		float64(modeled(pollingWait, o.Scale).Milliseconds()))
	note(w, "same store, same network: the gap is purely the design choice of suspending")
	note(w, "calls on the server (wait/notify) instead of polling — why Table 1's")
	note(w, "synchronization objects exist at all")
	return nil
}
