package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// quickOpts compresses everything hard so the full harness smoke-runs
// inside go test.
func quickOpts() Options {
	return Options{Scale: 0.01, Quick: true}
}

func runExp(t *testing.T, name string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(name, &buf, quickOpts()); err != nil {
		t.Fatalf("%s: %v\noutput so far:\n%s", name, err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "===") {
		t.Fatalf("%s produced no report:\n%s", name, out)
	}
	return out
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", &buf, quickOpts()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestNamesComplete(t *testing.T) {
	names := Names()
	if len(names) != 13 {
		t.Fatalf("%d experiments, want 13 (every table and figure)", len(names))
	}
}

func TestTable2Smoke(t *testing.T) {
	out := runExp(t, ExpTable2)
	for _, sys := range []string{"S3", "Redis", "Infinispan", "Crucial", "rf=2"} {
		if !strings.Contains(out, sys) {
			t.Fatalf("table2 missing system %q:\n%s", sys, out)
		}
	}
}

func TestFig2aSmoke(t *testing.T) {
	out := runExp(t, ExpFig2a)
	if !strings.Contains(out, "crucial") || !strings.Contains(out, "redis") {
		t.Fatalf("fig2a missing systems:\n%s", out)
	}
}

func TestFig2bSmoke(t *testing.T) {
	out := runExp(t, ExpFig2b)
	if !strings.Contains(out, "SPEEDUP") {
		t.Fatalf("fig2b missing speedup column:\n%s", out)
	}
}

func TestFig3Smoke(t *testing.T) {
	out := runExp(t, ExpFig3)
	if !strings.Contains(out, "CRUCIAL") || !strings.Contains(out, "8-CORE") {
		t.Fatalf("fig3 missing columns:\n%s", out)
	}
}

func TestFig4Smoke(t *testing.T) {
	out := runExp(t, ExpFig4)
	if !strings.Contains(out, "spark") || !strings.Contains(out, "LOSS") {
		t.Fatalf("fig4 missing content:\n%s", out)
	}
}

func TestFig5Smoke(t *testing.T) {
	out := runExp(t, ExpFig5)
	if !strings.Contains(out, "CRUCIAL-REDIS") {
		t.Fatalf("fig5 missing redis variant:\n%s", out)
	}
}

func TestTable3Smoke(t *testing.T) {
	out := runExp(t, ExpTable3)
	if !strings.Contains(out, "logistic regression") || !strings.Contains(out, "k-means") {
		t.Fatalf("table3 missing experiments:\n%s", out)
	}
}

func TestFig6Smoke(t *testing.T) {
	out := runExp(t, ExpFig6)
	for _, v := range []string{"pywren-s3", "sqs", "crucial-future", "crucial-autoreduce"} {
		if !strings.Contains(out, v) {
			t.Fatalf("fig6 missing variant %q:\n%s", v, out)
		}
	}
}

func TestFig7aSmoke(t *testing.T) {
	out := runExp(t, ExpFig7a)
	if !strings.Contains(out, "SNS+SQS") {
		t.Fatalf("fig7a missing baseline:\n%s", out)
	}
}

func TestFig7bSmoke(t *testing.T) {
	out := runExp(t, ExpFig7b)
	for _, label := range []string{"a0", "a1", "b0", "b1", "INVOCATION", "S3 READ"} {
		if !strings.Contains(out, label) {
			t.Fatalf("fig7b missing %q:\n%s", label, out)
		}
	}
}

func TestFig7cSmoke(t *testing.T) {
	out := runExp(t, ExpFig7c)
	if !strings.Contains(out, "POJO") || !strings.Contains(out, "cloud threads") {
		t.Fatalf("fig7c missing variants:\n%s", out)
	}
}

func TestFig8Smoke(t *testing.T) {
	out := runExp(t, ExpFig8)
	if !strings.Contains(out, "before crash") || !strings.Contains(out, "after addition") {
		t.Fatalf("fig8 missing phases:\n%s", out)
	}
}

func TestTable4Smoke(t *testing.T) {
	out := runExp(t, ExpTable4)
	for _, app := range []string{"montecarlo", "logreg", "kmeans", "santa"} {
		if !strings.Contains(out, app) {
			t.Fatalf("table4 missing app %q:\n%s", app, out)
		}
	}
}

func TestHelpers(t *testing.T) {
	if modeled(time.Second, 0.1) != 10*time.Second {
		t.Fatal("modeled conversion wrong")
	}
	if modeled(time.Second, 0) != time.Second {
		t.Fatal("modeled with zero scale should pass through")
	}
	samples := []time.Duration{3 * time.Second, time.Second, 2 * time.Second}
	if mean(samples) != 2*time.Second {
		t.Fatalf("mean = %v", mean(samples))
	}
	if percentile(samples, 0) != time.Second || percentile(samples, 1) != 3*time.Second {
		t.Fatal("percentile bounds wrong")
	}
	if percentile(nil, 0.5) != 0 || mean(nil) != 0 {
		t.Fatal("empty-sample helpers wrong")
	}
}

func TestAblationShippingSmoke(t *testing.T) {
	out := runExp(t, ExpAblationShipping)
	if !strings.Contains(out, "method shipping") || !strings.Contains(out, "data shipping") {
		t.Fatalf("ablation-shipping missing strategies:\n%s", out)
	}
}

func TestAblationBlockingSmoke(t *testing.T) {
	out := runExp(t, ExpAblationBlocking)
	if !strings.Contains(out, "blocking") || !strings.Contains(out, "polling") {
		t.Fatalf("ablation-blocking missing rows:\n%s", out)
	}
}

func TestAblationNames(t *testing.T) {
	if len(AblationNames()) != 2 {
		t.Fatalf("ablations = %v", AblationNames())
	}
}

func TestChaosSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(ExpChaos, &buf, quickOpts()); err != nil {
		t.Fatalf("chaos: %v\noutput so far:\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "SEED") || !strings.Contains(out, "yes") {
		t.Fatalf("chaos report incomplete:\n%s", out)
	}
	if strings.Contains(out, "NO") {
		t.Fatalf("chaos run not linearizable:\n%s", out)
	}
}

func TestStagesSmoke(t *testing.T) {
	var jsonBuf bytes.Buffer
	var buf bytes.Buffer
	o := quickOpts()
	o.JSON = &jsonBuf
	if err := Run(ExpStages, &buf, o); err != nil {
		t.Fatalf("stages: %v\noutput so far:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, stage := range []string{"faas.invoke", "client.rpc", "server.exec", "server.monitor_wait", "cold starts"} {
		if !strings.Contains(out, stage) {
			t.Fatalf("stages missing %q:\n%s", stage, out)
		}
	}
	js := jsonBuf.String()
	if !strings.Contains(js, `"experiment": "stages"`) || !strings.Contains(js, `"histograms"`) {
		t.Fatalf("stages JSON incomplete:\n%s", js)
	}
}

func TestReshardSmoke(t *testing.T) {
	var jsonBuf bytes.Buffer
	var buf bytes.Buffer
	o := quickOpts()
	o.JSON = &jsonBuf
	if err := Run(ExpReshard, &buf, o); err != nil {
		t.Fatalf("reshard: %v\noutput so far:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, cfg := range []string{"static", "sharded", "elastic"} {
		if !strings.Contains(out, cfg) {
			t.Fatalf("reshard missing %q row:\n%s", cfg, out)
		}
	}
	js := jsonBuf.String()
	if !strings.Contains(js, `"experiment": "reshard"`) || !strings.Contains(js, `"recovery_vs_static"`) {
		t.Fatalf("reshard JSON incomplete:\n%s", js)
	}
}

func TestStatefunSmoke(t *testing.T) {
	var jsonBuf bytes.Buffer
	var buf bytes.Buffer
	o := quickOpts()
	o.JSON = &jsonBuf
	if err := Run(ExpStatefun, &buf, o); err != nil {
		t.Fatalf("statefun: %v\noutput so far:\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "MSGS/SEC") || !strings.Contains(out, "true") || !strings.Contains(out, "false") {
		t.Fatalf("statefun report incomplete:\n%s", out)
	}
	js := jsonBuf.String()
	if !strings.Contains(js, `"experiment": "statefun"`) || !strings.Contains(js, `"msgs_per_sec"`) {
		t.Fatalf("statefun JSON incomplete:\n%s", js)
	}
}
