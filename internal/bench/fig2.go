package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"crucial"
	"crucial/internal/apps/montecarlo"
	"crucial/internal/client"
	"crucial/internal/cluster"
	"crucial/internal/netsim"
	"crucial/internal/rpc"
	"crucial/internal/storage/redissim"
)

// Fig2a reproduces Fig. 2a: operations per second for a simple operation
// (one multiplication) and a complex one (a long chain of multiplications,
// modeled as server-side busy time) in Crucial (rf=1 and rf=2) and Redis
// with Lua-style scripts. Cloud threads access objects uniformly at
// random; the storage layer is two nodes/shards in every system.
func Fig2a(w io.Writer, o Options) error {
	o = o.withDefaults()
	profile := netsim.AWS2019(o.Scale)
	threads := pick(o, 8, 64)
	objectCount := pick(o, 32, 256)
	duration := time.Duration(float64(pick(o, 400*time.Millisecond, 3*time.Second)))
	// The complex operation models a long chain of multiplications of
	// server CPU time, scaled. 10ms is calibrated so the modeled cost
	// dominates the harness's real per-request overhead on this host
	// (both systems pay identical RPC costs; see the Redis front below).
	complexUs := int64(float64(10000) * o.Scale)
	if complexUs < 1 {
		complexUs = 1
	}

	type result struct {
		name            string
		simple, complex float64 // modeled ops/s
	}
	var results []result

	runCrucial := func(name string, rf int) error {
		clu, err := cluster.StartLocal(cluster.Options{Nodes: 2, RF: rf, Profile: profile})
		if err != nil {
			return err
		}
		defer func() { _ = clu.Close() }()
		// A handful of shared clients model the functions' connections.
		clients := make([]*client.Client, 8)
		for i := range clients {
			if clients[i], err = clu.NewClient(); err != nil {
				return err
			}
			defer func(c *client.Client) { _ = c.Close() }(clients[i])
		}
		persist := rf > 1
		// One bound proxy set per client connection.
		bound := make([][]*crucial.AtomicLong, len(clients))
		for ci := range clients {
			arr := make([]*crucial.AtomicLong, objectCount)
			for i := range arr {
				var opts []crucial.Option
				if persist {
					opts = append(opts, crucial.WithPersist())
				}
				a := crucial.NewAtomicLong(fmt.Sprintf("f2a/%s/%d", name, i), opts...)
				a.H.BindDSO(clients[ci])
				arr[i] = a
			}
			bound[ci] = arr
		}
		simple, err := throughput(threads, duration, func(tid, i int) error {
			obj := bound[tid%len(bound)][(tid*7919+i)%objectCount]
			_, err := obj.Multiply(context.Background(), 3)
			return err
		})
		if err != nil {
			return err
		}
		complexRate, err := throughput(threads, duration, func(tid, i int) error {
			obj := bound[tid%len(bound)][(tid*7919+i)%objectCount]
			_, err := obj.SimulatedWork(context.Background(), complexUs)
			return err
		})
		if err != nil {
			return err
		}
		results = append(results, result{name, simple / o.Scale, complexRate / o.Scale})
		return nil
	}
	if err := runCrucial("crucial", 1); err != nil {
		return err
	}
	if err := runCrucial("crucial-rf2", 2); err != nil {
		return err
	}

	// Redis: two single-threaded shards behind the same RPC layer the DSO
	// client uses (real Redis speaks RESP over TCP); the complex operation
	// is a registered script, so concurrent calls on one shard serialize.
	rc := redissim.NewCluster(2, profile)
	defer rc.Close()
	rc.RegisterScript("mul", func(d *redissim.Data, keys []string, args []any) (any, error) {
		n, err := d.GetInt(keys[0])
		if err != nil {
			return nil, err
		}
		d.SetInt(keys[0], n*args[0].(int64))
		return nil, nil
	})
	rc.RegisterScript("simwork", func(d *redissim.Data, keys []string, args []any) (any, error) {
		time.Sleep(time.Duration(args[0].(int64)) * time.Microsecond)
		n, _ := d.GetInt(keys[0])
		d.SetInt(keys[0], n+1)
		return nil, nil
	})
	rnet := rpc.NewMemNetwork()
	rsrv, err := redissim.Serve(rc, rnet, "redis")
	if err != nil {
		return err
	}
	defer func() { _ = rsrv.Close() }()
	remotes := make([]*redissim.RemoteCluster, 8)
	for i := range remotes {
		if remotes[i], err = redissim.Dial(rnet, "redis"); err != nil {
			return err
		}
		defer func(r *redissim.RemoteCluster) { _ = r.Close() }(remotes[i])
	}
	redisSimple, err := throughput(threads, duration, func(tid, i int) error {
		key := fmt.Sprintf("f2a/r/%d", (tid*7919+i)%objectCount)
		_, err := remotes[tid%len(remotes)].Eval(context.Background(), "mul", []string{key}, int64(3))
		return err
	})
	if err != nil {
		return err
	}
	redisComplex, err := throughput(threads, duration, func(tid, i int) error {
		key := fmt.Sprintf("f2a/r/%d", (tid*7919+i)%objectCount)
		_, err := remotes[tid%len(remotes)].Eval(context.Background(), "simwork", []string{key}, complexUs)
		return err
	})
	if err != nil {
		return err
	}
	results = append(results, result{"redis", redisSimple / o.Scale, redisComplex / o.Scale})

	title(w, "Fig 2a: throughput, simple vs complex operations (modeled ops/s)")
	row(w, "%-14s %14s %14s", "SYSTEM", "SIMPLE", "COMPLEX")
	for _, r := range results {
		row(w, "%-14s %14.0f %14.0f", r.name, r.simple, r.complex)
	}
	note(w, "paper shape: Redis ~1.5x Crucial on simple ops; Crucial ~5x Redis on complex ops;")
	note(w, "Crucial rf=2 slower than rf=1 but still far ahead of Redis on complex ops")
	return nil
}

// throughput drives threads in closed loop for duration and returns real
// ops/s. An op error stops that thread; the first error is reported.
func throughput(threads int, duration time.Duration, op func(tid, i int) error) (float64, error) {
	var count atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, threads)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := op(tid, i); err != nil {
					errs[tid] = err
					return
				}
				count.Add(1)
			}
		}(t)
	}
	start := time.Now()
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(count.Load()) / elapsed.Seconds(), nil
}

// Fig2b reproduces Fig. 2b: scalability of the Monte Carlo simulation.
// Each cloud thread computes 100M points (modeled rate: one Lambda core);
// the shared state is a single counter. The figure reports aggregate
// points per second and the speedup over one thread.
func Fig2b(w io.Writer, o Options) error {
	o = o.withDefaults()
	profile := netsim.AWS2019(o.Scale)
	counts := pick(o, []int{1, 2, 4}, []int{1, 25, 50, 100, 200, 400, 800})
	modeledIters := int64(pick(o, 2_000_000, 100_000_000))

	rt, err := crucial.NewLocalRuntime(crucial.Options{
		DSONodes:    2,
		Profile:     profile,
		Concurrency: 1000,
	})
	if err != nil {
		return err
	}
	defer func() { _ = rt.Close() }()

	title(w, "Fig 2b: Monte Carlo scalability (modeled points/s)")
	row(w, "%8s %16s %10s", "THREADS", "POINTS/S", "SPEEDUP")
	var base float64
	rng := rand.New(rand.NewSource(9))
	for _, n := range counts {
		if err := rt.Prewarm(n); err != nil {
			return err
		}
		res, err := montecarlo.RunCrucial(context.Background(), rt, montecarlo.Params{
			Threads:           n,
			Iterations:        2000,
			ModeledIterations: modeledIters,
			PointsPerSecond:   12_000_000,
			TimeScale:         o.Scale,
			Seed:              rng.Int63(),
			CounterKey:        fmt.Sprintf("f2b/counter/%d", n),
		})
		if err != nil {
			return err
		}
		rate := float64(res.TotalPoints) / modeledSeconds(res.Elapsed, o.Scale)
		if base == 0 {
			base = rate
		}
		row(w, "%8d %16.3g %9.1fx", n, rate, rate/base)
	}
	note(w, "paper shape: near-linear scaling; 512x speedup at 800 threads, 8.4e9 points/s")
	return nil
}
