package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"crucial"
)

// ExpStatefun is the stateful-functions throughput experiment (not part
// of RunAll, like cache/reshard): sustained message processing across a
// growing instance population, with the durability tier off and on
// (DESIGN.md §5i). Each message rides the full pipeline — at-most-once
// push, dispatch, handler, atomic effect commit — and the run only
// counts messages whose effects are confirmed applied (a FIFO drain
// probe per instance closes the measurement). The microbenchmark twin
// is `make bench-statefun` (BENCH_statefun.json).
const ExpStatefun = "statefun"

// statefunRow is one configuration's measurement.
type statefunRow struct {
	Instances int     `json:"instances"`
	Durable   bool    `json:"durable"`
	Msgs      int     `json:"msgs"`
	Seconds   float64 `json:"seconds"`
	MsgsPerS  float64 `json:"msgs_per_sec"`
}

// Statefun runs the throughput matrix and prints one row per
// (instance count, durability) configuration.
func Statefun(w io.Writer, o Options) error {
	o = o.withDefaults()
	counts := pick(o, []int{10, 50}, []int{100, 1000, 2000})
	perInstance := pick(o, 4, 10)

	title(w, "Statefun: sustained msgs/sec vs instance count, durability off/on")
	note(w, "one msg = push + dispatch + handler + atomic commit; drain probes confirm application")
	row(w, "%10s %10s %10s %9s %12s", "INSTANCES", "DURABLE", "MSGS", "SECONDS", "MSGS/SEC")

	var rows []statefunRow
	for _, durable := range []bool{false, true} {
		for _, n := range counts {
			msgs := n * perInstance
			elapsed, err := statefunWorkload(n, msgs, durable)
			if err != nil {
				return fmt.Errorf("statefun %d/%v: %w", n, durable, err)
			}
			r := statefunRow{
				Instances: n,
				Durable:   durable,
				Msgs:      msgs,
				Seconds:   elapsed.Seconds(),
				MsgsPerS:  float64(msgs) / elapsed.Seconds(),
			}
			rows = append(rows, r)
			row(w, "%10d %10v %10d %9.2f %12.0f", r.Instances, r.Durable, r.Msgs, r.Seconds, r.MsgsPerS)
		}
	}
	if o.JSON != nil {
		enc := json.NewEncoder(o.JSON)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{
			"experiment": ExpStatefun,
			"rows":       rows,
		})
	}
	return nil
}

// statefunWorkload boots a fresh runtime, spreads msgs across n
// instances of a counting function, and returns the wall time until
// every message's effects are confirmed.
func statefunWorkload(n, msgs int, durable bool) (time.Duration, error) {
	opts := crucial.Options{
		DSONodes: 4,
		Statefun: crucial.StatefunOptions{InProcess: true, Workers: 16},
	}
	if durable {
		opts.Durability = crucial.DefaultDurabilityPolicy()
	}
	rt, err := crucial.NewLocalRuntime(opts)
	if err != nil {
		return 0, err
	}
	defer func() { _ = rt.Close() }()
	type countState struct {
		N int64
	}
	fn, err := rt.DeployStatefulFunction("count", func(c *crucial.FnCtx, m crucial.FnMsg) error {
		var st countState
		if _, err := c.State(&st); err != nil {
			return err
		}
		switch m.Name() {
		case "add":
			st.N++
			return c.SetState(&st)
		case "get":
			return c.Reply(st)
		default:
			return fmt.Errorf("unknown message %q", m.Name())
		}
	})
	if err != nil {
		return 0, err
	}
	ctx := context.Background()
	workers := n
	if workers > 64 {
		workers = 64
	}
	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	// Fire-and-forget adds; worker w owns instances w, w+W, ... so no
	// two workers contend on one per-destination sender stream.
	for w := 0; w < workers; w++ {
		share := msgs / workers
		if w < msgs%workers {
			share++
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			for k := 0; k < share; k++ {
				id := fmt.Sprintf("i%d", (w+k*workers)%n)
				if err := fn.Send(ctx, id, "add", nil); err != nil {
					fail(err)
					return
				}
			}
		}(w, share)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	// Drain barrier: mailboxes are FIFO, so a reply to a get pushed
	// after the adds proves the instance's adds are all applied. The
	// counts must also balance exactly.
	var total int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sum int64
			for i := w; i < n; i += workers {
				var st countState
				if err := fn.Call(ctx, fmt.Sprintf("i%d", i), "get", nil, &st); err != nil {
					fail(err)
					return
				}
				sum += st.N
			}
			mu.Lock()
			total += sum
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	elapsed := time.Since(start)
	if total != int64(msgs) {
		return 0, fmt.Errorf("applied %d messages, want %d", total, msgs)
	}
	return elapsed, nil
}
