package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"crucial"
	"crucial/internal/apps/kmeansapp"
	"crucial/internal/netsim"
	"crucial/internal/vmsim"
)

// kmeansScaleCfg sizes a Fig. 3 run: the input grows with the worker
// count (constant points per worker), so perfect scaling keeps the run
// time constant.
func kmeansScaleCfg(o Options, workers int, keyPrefix string) kmeansapp.Config {
	k := pick(o, 3, 10)
	dims := pick(o, 4, 10)
	// Each iteration models ~1s (0.2s in quick mode) of per-worker
	// compute on the paper-scale partition.
	const modeledPoints = 20000
	targetNs := pick(o, 2e8, 1e9)
	return kmeansapp.Config{
		K:                      k,
		Dims:                   dims,
		Workers:                workers,
		MaxIterations:          pick(o, 2, 4),
		PointsPerWorker:        pick(o, 40, 60),
		Seed:                   11,
		ModeledPointsPerWorker: modeledPoints,
		NsPerOp:                targetNs / (modeledPoints * float64(k) * float64(dims)),
		TimeScale:              o.Scale,
		KeyPrefix:              keyPrefix,
	}
}

// Fig3 reproduces Fig. 3: scale-up of k-means with input proportional to
// the thread count — Crucial cloud threads versus plain threads on 8-core
// and 16-core VMs. scale-up = T1/Tn; 1.0 is perfect.
func Fig3(w io.Writer, o Options) error {
	o = o.withDefaults()
	// Like the Spark comparisons, this experiment runs at a gentler
	// compression so the harness's real per-operation CPU cost stays
	// negligible next to the modeled compute.
	o.Scale = mlScale(o)
	profile := netsim.AWS2019(o.Scale)
	counts := pick(o, []int{1, 2, 4}, []int{1, 10, 20, 40, 80, 160})

	rt, err := crucial.NewLocalRuntime(crucial.Options{
		DSONodes:    2,
		Profile:     profile,
		Registry:    kmeansRegistry(),
		Concurrency: 1000,
	})
	if err != nil {
		return err
	}
	defer func() { _ = rt.Close() }()
	crucial.Register(&kmeansapp.Worker{})

	// VM baselines: the machine's core gate is the contention mechanism.
	vm8, err := vmsim.NewMachine("m5.2xlarge", 8, netsim.Zero())
	if err != nil {
		return err
	}
	vm16, err := vmsim.NewMachine("m5.4xlarge", 16, netsim.Zero())
	if err != nil {
		return err
	}

	type point struct {
		crucial, vm8, vm16 float64
	}
	results := make(map[int]point, len(counts))
	var baseCrucial, baseVM8, baseVM16 time.Duration
	ctx := context.Background()

	for _, n := range counts {
		if err := rt.Prewarm(n); err != nil {
			return err
		}
		cfgC := kmeansScaleCfg(o, n, fmt.Sprintf("f3c/%d", n))
		resC, err := kmeansapp.RunCrucial(ctx, rt, cfgC)
		if err != nil {
			return err
		}
		cfg8 := kmeansScaleCfg(o, n, fmt.Sprintf("f3v8/%d", n))
		res8, err := kmeansapp.RunVM(ctx, vm8, cfg8)
		if err != nil {
			return err
		}
		cfg16 := kmeansScaleCfg(o, n, fmt.Sprintf("f3v16/%d", n))
		res16, err := kmeansapp.RunVM(ctx, vm16, cfg16)
		if err != nil {
			return err
		}
		if n == counts[0] {
			baseCrucial, baseVM8, baseVM16 = resC.Total, res8.Total, res16.Total
		}
		results[n] = point{
			crucial: float64(baseCrucial) / float64(resC.Total),
			vm8:     float64(baseVM8) / float64(res8.Total),
			vm16:    float64(baseVM16) / float64(res16.Total),
		}
	}

	title(w, "Fig 3: k-means scale-up (T1/Tn; input grows with threads; 1.0 = perfect)")
	row(w, "%8s %10s %12s %12s", "THREADS", "CRUCIAL", "VM 8-CORE", "VM 16-CORE")
	for _, n := range counts {
		p := results[n]
		row(w, "%8d %10.2f %12.2f %12.2f", n, p.crucial, p.vm8, p.vm16)
	}
	note(w, "paper shape: VMs degrade sharply past their core count; Crucial stays >= 0.9")
	return nil
}

// kmeansRegistry returns a registry with the k-means custom types.
func kmeansRegistry() *crucial.TypeRegistry {
	reg := crucial.NewTypeRegistry()
	kmeansapp.RegisterTypes(reg)
	return reg
}
