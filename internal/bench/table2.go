package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"crucial"
	"crucial/internal/cluster"
	"crucial/internal/core"
	"crucial/internal/netsim"
	"crucial/internal/objects"
	"crucial/internal/storage/redissim"
	"crucial/internal/storage/s3sim"
)

// Table2 reproduces Table 2: average latency to access a 1 KB object
// sequentially in S3, Redis, Infinispan (the DSO grid used as a plain KV
// store), Crucial (the full proxy stack) and Crucial with rf=2.
func Table2(w io.Writer, o Options) error {
	o = o.withDefaults()
	// Latency measurements run uncompressed (unless in quick mode): the
	// experiment is sequential and cheap, and compression would divide the
	// injected microsecond latencies below the harness's own real
	// per-operation overhead, inflating the modeled numbers.
	if !o.Quick && o.Scale < 1.0 {
		o.Scale = 1.0
	}
	profile := netsim.AWS2019(o.Scale)
	value := make([]byte, 1024)
	for i := range value {
		value[i] = byte(i)
	}
	memOps := pick(o, 40, 1500)
	s3Ops := pick(o, 8, 150)
	ctx := context.Background()

	type entry struct {
		name     string
		put, get time.Duration
	}
	var entries []entry

	// S3.
	s3 := s3sim.New(s3sim.Options{Profile: profile})
	s3Put, err := timeOps(s3Ops, func(i int) error {
		return s3.Put(ctx, fmt.Sprintf("t2/%d", i%8), value)
	})
	if err != nil {
		return err
	}
	s3Get, err := timeOps(s3Ops, func(i int) error {
		_, err := s3.Get(ctx, fmt.Sprintf("t2/%d", i%8))
		return err
	})
	if err != nil {
		return err
	}
	entries = append(entries, entry{"S3", s3Put, s3Get})

	// Redis.
	shard := redissim.NewShard(profile)
	defer shard.Close()
	sval := string(value)
	redisPut, err := timeOps(memOps, func(i int) error {
		return shard.Set(ctx, fmt.Sprintf("k%d", i%8), sval)
	})
	if err != nil {
		return err
	}
	redisGet, err := timeOps(memOps, func(i int) error {
		_, _, err := shard.Get(ctx, fmt.Sprintf("k%d", i%8))
		return err
	})
	if err != nil {
		return err
	}
	entries = append(entries, entry{"Redis", redisPut, redisGet})

	// Infinispan baseline: raw KV cells on the DSO grid, invoked through
	// the low-level client (no proxy layer).
	clu, err := cluster.StartLocal(cluster.Options{Nodes: 1, Profile: profile})
	if err != nil {
		return err
	}
	defer func() { _ = clu.Close() }()
	cl, err := clu.NewClient()
	if err != nil {
		return err
	}
	defer func() { _ = cl.Close() }()
	kvRef := func(i int) core.Ref {
		return core.Ref{Type: objects.TypeKV, Key: fmt.Sprintf("t2/%d", i%8)}
	}
	ispnPut, err := timeOps(memOps, func(i int) error {
		_, err := cl.Call(ctx, kvRef(i), "Put", value)
		return err
	})
	if err != nil {
		return err
	}
	ispnGet, err := timeOps(memOps, func(i int) error {
		_, err := cl.Call(ctx, kvRef(i), "Get")
		return err
	})
	if err != nil {
		return err
	}
	entries = append(entries, entry{"Infinispan", ispnPut, ispnGet})

	// Crucial: the full proxy stack over the same grid.
	cells := make([]*crucial.KV, 8)
	for i := range cells {
		cells[i] = crucial.NewKV(fmt.Sprintf("t2c/%d", i))
		cells[i].H.BindDSO(cl)
	}
	cruPut, err := timeOps(memOps, func(i int) error {
		return cells[i%8].Put(ctx, value)
	})
	if err != nil {
		return err
	}
	cruGet, err := timeOps(memOps, func(i int) error {
		_, _, err := cells[i%8].Get(ctx)
		return err
	})
	if err != nil {
		return err
	}
	entries = append(entries, entry{"Crucial", cruPut, cruGet})

	// Crucial rf=2: replicated cells on a 2-node cluster. The SMR round
	// adds an extra replica round trip, roughly doubling latency.
	clu2, err := cluster.StartLocal(cluster.Options{Nodes: 2, RF: 2, Profile: profile})
	if err != nil {
		return err
	}
	defer func() { _ = clu2.Close() }()
	cl2, err := clu2.NewClient()
	if err != nil {
		return err
	}
	defer func() { _ = cl2.Close() }()
	pcells := make([]*crucial.KV, 8)
	for i := range pcells {
		pcells[i] = crucial.NewKV(fmt.Sprintf("t2p/%d", i), crucial.WithPersist())
		pcells[i].H.BindDSO(cl2)
	}
	repPut, err := timeOps(memOps, func(i int) error {
		return pcells[i%8].Put(ctx, value)
	})
	if err != nil {
		return err
	}
	repGet, err := timeOps(memOps, func(i int) error {
		_, _, err := pcells[i%8].Get(ctx)
		return err
	})
	if err != nil {
		return err
	}
	entries = append(entries, entry{"Crucial (rf=2)", repPut, repGet})

	title(w, "Table 2: average latency, 1KB payload (modeled microseconds)")
	row(w, "%-16s %12s %12s", "SYSTEM", "PUT (us)", "GET (us)")
	for _, e := range entries {
		row(w, "%-16s %12.0f %12.0f",
			e.name,
			float64(modeled(e.put, o.Scale).Microseconds()),
			float64(modeled(e.get, o.Scale).Microseconds()))
	}
	note(w, "paper: S3 34868/23072, Redis 232/229, Infinispan 228/207, Crucial 231/229, rf=2 512/505")
	return nil
}

// timeOps runs n sequential operations and returns the average latency.
func timeOps(n int, op func(i int) error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := op(i); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(n), nil
}
