package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"crucial/internal/client"
	"crucial/internal/cluster"
	"crucial/internal/core"
	"crucial/internal/objects"
)

// ExpCache is the read-path scaling experiment (not part of RunAll, like
// the ablations): a read-mostly workload hammers one hot object — the
// shape a production system serving a popular key sees — with the
// lease-based read path off and on, at rf=1 and rf=2. Without caching
// every Get is an RPC to the one owning node, so aggregate read throughput
// flat-lines at that node's ceiling no matter how many clients pile on;
// with leases the same Gets are answered from client-local cached copies
// (and, at rf=2, by follower replicas), so throughput scales with the
// client count instead. Writes trickle through either way and every
// configuration stays linearizable — the cache trades no correctness for
// its throughput (see the nemesis schedules for the proof under faults).
const ExpCache = "cache"

// cacheRow is one configuration's measurement.
type cacheRow struct {
	Object    string  `json:"object"`
	RF        int     `json:"rf"`
	Cached    bool    `json:"cached"`
	Clients   int     `json:"clients"`
	Reads     uint64  `json:"reads"`
	Writes    uint64  `json:"writes"`
	ReadsPerS float64 `json:"reads_per_sec"`
	HitRate   float64 `json:"cache_hit_rate"`
}

// Cache runs the read-path experiment and prints one row per
// configuration, plus the headline speedups.
func Cache(w io.Writer, o Options) error {
	o = o.withDefaults()
	clients := pick(o, 4, 8)
	window := pick(o, 150*time.Millisecond, 750*time.Millisecond)

	title(w, "Cache: read-mostly hot object, lease cache off vs on (reads/s, wall clock)")
	row(w, "%-8s %3s %7s %8s %9s %8s %12s %8s", "OBJECT", "RF", "CACHE",
		"CLIENTS", "READS", "WRITES", "READS/SEC", "HITRATE")

	type cfg struct {
		object string
		rf     int
		cached bool
	}
	cfgs := []cfg{
		{"counter", 1, false}, {"counter", 1, true},
		{"counter", 2, false}, {"counter", 2, true},
		{"map", 1, false}, {"map", 1, true},
	}
	rows := make([]cacheRow, 0, len(cfgs))
	speedup := make(map[string]float64)
	for _, c := range cfgs {
		r, err := cacheRun(c.object, c.rf, c.cached, clients, window)
		if err != nil {
			return fmt.Errorf("cache %s rf=%d cached=%v: %w", c.object, c.rf, c.cached, err)
		}
		rows = append(rows, r)
		onOff := "off"
		if c.cached {
			onOff = "on"
		}
		row(w, "%-8s %3d %7s %8d %9d %8d %12.0f %8.2f", r.Object, r.RF, onOff,
			r.Clients, r.Reads, r.Writes, r.ReadsPerS, r.HitRate)
		key := fmt.Sprintf("%s/rf%d", c.object, c.rf)
		if !c.cached {
			speedup[key] = r.ReadsPerS
		} else if base := speedup[key]; base > 0 {
			speedup[key] = r.ReadsPerS / base
		}
	}
	for _, key := range []string{"counter/rf1", "counter/rf2", "map/rf1"} {
		note(w, "%s: cached read throughput %.1fx uncached", key, speedup[key])
	}
	note(w, "uncached reads funnel through one node's RPC loop; cached reads are")
	note(w, "client-local (lease-coherent), so throughput scales with the client count")

	if o.JSON != nil {
		doc := struct {
			Experiment string             `json:"experiment"`
			Rows       []cacheRow         `json:"rows"`
			Speedup    map[string]float64 `json:"speedup_cached_vs_uncached"`
		}{ExpCache, rows, speedup}
		enc := json.NewEncoder(o.JSON)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return fmt.Errorf("bench: write JSON results: %w", err)
		}
	}
	return nil
}

// cacheRun measures one configuration: `clients` readers spin on Get for
// the window while one writer injects a mutation every ~10ms (read-mostly),
// on a single hot object. The cluster runs uninstrumented — spans on the
// hot path are observer overhead, and the hit rate comes from the client's
// own cache counters (DebugCacheStats) instead of the telemetry bundle.
func cacheRun(object string, rf int, cached bool, clients int, window time.Duration) (cacheRow, error) {
	opts := cluster.Options{
		Nodes: maxInt(rf, 1),
		RF:    rf,
	}
	if cached {
		opts.LeaseTTL = 100 * time.Millisecond
		opts.ClientCache = true
	}
	cl, err := cluster.StartLocal(opts)
	if err != nil {
		return cacheRow{}, err
	}
	defer func() { _ = cl.Close() }()

	var ref core.Ref
	var readMethod string
	var readArgs []any
	switch object {
	case "counter":
		ref = core.Ref{Type: objects.TypeAtomicLong, Key: "bench/cache/hot"}
		readMethod = "Get"
	case "map":
		ref = core.Ref{Type: objects.TypeMap, Key: "bench/cache/hotmap"}
		readMethod = "Get"
		readArgs = []any{"k"}
	default:
		return cacheRow{}, fmt.Errorf("unknown object %q", object)
	}
	persist := rf > 1

	ctx, cancel := context.WithTimeout(context.Background(), window+30*time.Second)
	defer cancel()
	writer, err := cl.NewClient()
	if err != nil {
		return cacheRow{}, err
	}
	defer func() { _ = writer.Close() }()
	write := func(v int64) error {
		var err error
		if object == "counter" {
			_, err = writer.InvokeObject(ctx, core.Invocation{
				Ref: ref, Method: "Set", Args: []any{v}, Persist: persist,
			})
		} else {
			_, err = writer.InvokeObject(ctx, core.Invocation{
				Ref: ref, Method: "Put", Args: []any{"k", v}, Persist: persist,
			})
		}
		return err
	}
	if err := write(0); err != nil {
		return cacheRow{}, err
	}

	var reads, writes atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, clients+1)
	readers := make([]*client.Client, 0, clients)
	for i := 0; i < clients; i++ {
		rc, err := cl.NewClient()
		if err != nil {
			return cacheRow{}, err
		}
		defer func() { _ = rc.Close() }()
		readers = append(readers, rc)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := rc.InvokeObject(ctx, core.Invocation{
					Ref: ref, Method: readMethod, Args: readArgs, Persist: persist,
				}); err != nil {
					errc <- err
					return
				}
				reads.Add(1)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		v := int64(1)
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if err := write(v); err != nil {
					errc <- err
					return
				}
				v++
				writes.Add(1)
			}
		}
	}()

	start := time.Now()
	time.Sleep(window)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return cacheRow{}, err
	default:
	}

	r := cacheRow{
		Object:    object,
		RF:        rf,
		Cached:    cached,
		Clients:   clients,
		Reads:     reads.Load(),
		Writes:    writes.Load(),
		ReadsPerS: float64(reads.Load()) / elapsed.Seconds(),
	}
	if cached {
		var hits, misses uint64
		for _, rc := range readers {
			st := rc.DebugCacheStats()
			hits += st.Hits
			misses += st.Misses
		}
		if hits+misses > 0 {
			r.HitRate = float64(hits) / float64(hits+misses)
		}
	}
	return r, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
