package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"crucial"
	"crucial/internal/apps/mapreduce"
	"crucial/internal/netsim"
	"crucial/internal/storage/queuesim"
	"crucial/internal/storage/s3sim"
)

// Fig6 reproduces Fig. 6: synchronizing the map phase of a MapReduce run
// (the Monte Carlo simulation) with five techniques — PyWren-style S3
// polling, the same polling over the in-memory grid, SQS, Crucial Future
// objects, and Crucial server-side auto-reduce.
func Fig6(w io.Writer, o Options) error {
	o = o.withDefaults()
	profile := netsim.AWS2019(o.Scale)
	threads := pick(o, 4, 50)
	reps := pick(o, 1, 3)
	// The map phase models 100M points per thread (~8.3s at one Lambda
	// core) so synchronization is a meaningful fraction, like the paper's
	// 23%.
	modeledIters := int64(pick(o, 10_000_000, 100_000_000))

	rt, err := crucial.NewLocalRuntime(crucial.Options{
		DSONodes:    2,
		Profile:     profile,
		Concurrency: 1000,
	})
	if err != nil {
		return err
	}
	defer func() { _ = rt.Close() }()
	if err := rt.Prewarm(threads); err != nil {
		return err
	}

	title(w, "Fig 6: synchronizing a map phase (modeled seconds of synchronization)")
	row(w, "%-22s %10s %10s %10s", "TECHNIQUE", "MEAN (s)", "MIN (s)", "MAX (s)")
	ctx := context.Background()
	for _, v := range mapreduce.Variants() {
		var syncs []time.Duration
		for r := 0; r < reps; r++ {
			envID := fmt.Sprintf("f6-%s-%d", v, r)
			mapreduce.RegisterEnv(envID, &mapreduce.Env{
				S3:    s3sim.New(s3sim.Options{Profile: profile, Seed: int64(r + 1)}),
				Queue: queuesim.NewQueue(profile),
			})
			res, err := mapreduce.Run(ctx, rt, mapreduce.Params{
				Threads:           threads,
				Iterations:        2000,
				ModeledIterations: modeledIters,
				PointsPerSecond:   12_000_000,
				TimeScale:         o.Scale,
				Seed:              int64(100 + r),
				EnvID:             envID,
				Prefix:            fmt.Sprintf("f6/%s/%d", v, r),
				PollInterval:      20 * time.Millisecond,
			}, v)
			mapreduce.UnregisterEnv(envID)
			if err != nil {
				return fmt.Errorf("variant %s: %w", v, err)
			}
			syncs = append(syncs, modeled(res.Sync, o.Scale))
		}
		row(w, "%-22s %10.2f %10.2f %10.2f", string(v),
			mean(syncs).Seconds(),
			percentile(syncs, 0).Seconds(),
			percentile(syncs, 1).Seconds())
	}
	note(w, "paper shape: SQS slowest; S3 slow and highly variable (eventual consistency);")
	note(w, "in-memory polling faster; futures faster still; auto-reduce fastest (~2x vs S3)")
	return nil
}
