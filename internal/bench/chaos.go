package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"crucial/internal/chaos"
	"crucial/internal/cluster"
	"crucial/internal/core"
	"crucial/internal/linearizability"
	"crucial/internal/objects"
	"crucial/internal/ring"
	"crucial/internal/rpc"
	"crucial/internal/telemetry"
)

// ExpChaos is the nemesis experiment (not part of RunAll, like the
// ablations): a live 3-node RF=2 cluster runs a concurrent counter
// workload while a seeded, generated fault schedule partitions links,
// drops/delays/duplicates frames, and crashes/restarts nodes. Every run
// checks the recorded history for linearizability — the paper's central
// guarantee — and reports the injected-fault breakdown. Schedules are
// deterministic in the seed, so a reported run reproduces exactly.
const ExpChaos = "chaos"

// chaosSeeds are the schedules the experiment reports. Deterministic and
// diverse: each seed generates a different mix of partitions, link faults
// and crash/restarts.
var chaosSeeds = []int64{11, 22, 33}

// Chaos runs the nemesis schedules and prints one row per seed.
func Chaos(w io.Writer, o Options) error {
	o = o.withDefaults()
	seeds := chaosSeeds
	if o.Quick {
		seeds = seeds[:1]
	}

	title(w, "Chaos: linearizability under seeded fault schedules (3 nodes, RF=2)")
	row(w, "%6s %6s %9s %9s %7s %7s %7s %9s %12s", "SEED", "OPS",
		"DROPPED", "PARTDROP", "DUP", "CRASH", "RESTART", "DEDUPHIT", "LINEARIZABLE")
	for _, seed := range seeds {
		r, err := chaosRun(seed, o)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		verdict := "yes"
		if !r.linearizable {
			verdict = "NO"
		}
		row(w, "%6d %6d %9d %9d %7d %7d %7d %9d %12s", seed, r.ops,
			r.counts.FramesDropped, r.counts.PartitionDrops, r.counts.FramesDuplicated,
			r.counts.Crashes, r.counts.Restarts, r.dedupHits, verdict)
		if !r.linearizable {
			return fmt.Errorf("seed %d: history not linearizable", seed)
		}
	}
	note(w, "every op retried until success (at-most-once stamps make retries safe);")
	note(w, "DEDUPHIT counts duplicate deliveries answered from the server window")
	return nil
}

// chaosResult is one seed's outcome.
type chaosResult struct {
	ops          int
	counts       chaos.Counts
	dedupHits    uint64
	linearizable bool
}

// chaosRun executes one seeded schedule against a fresh cluster.
func chaosRun(seed int64, o Options) (chaosResult, error) {
	tel := telemetry.New()
	eng := chaos.New(rpc.NewMemNetwork(), chaos.Options{Seed: seed, Telemetry: tel})
	cl, err := cluster.StartLocal(cluster.Options{
		Nodes:     3,
		RF:        2,
		Chaos:     eng,
		Telemetry: tel,
		ClientRetry: core.RetryPolicy{
			MaxRetries: 150,
			Backoff:    time.Millisecond,
			MaxBackoff: 15 * time.Millisecond,
			Multiplier: 1.5,
			Jitter:     0.3,
		},
		ClientAttemptTimeout: 200 * time.Millisecond,
		PeerCallTimeout:      250 * time.Millisecond,
	})
	if err != nil {
		return chaosResult{}, err
	}
	defer cl.Close()

	nodes := make([]string, 0, 3)
	for _, id := range cl.NodeIDs() {
		nodes = append(nodes, string(id))
	}
	plan := chaos.GeneratePlan(seed, chaos.PlanConfig{
		Nodes:        nodes,
		Steps:        pick(o, 3, 6),
		Spacing:      60 * time.Millisecond,
		Partitions:   true,
		LinkFaults:   true,
		CrashRestart: true,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	planDone := make(chan error, 1)
	go func() {
		planDone <- plan.Run(ctx, chaos.Target{
			Engine: eng,
			Crash:  func(n string) error { return cl.CrashNode(ring.NodeID(n)) },
			Restart: func(n string) error {
				_, err := cl.RestartNode(ring.NodeID(n))
				return err
			},
		})
	}()

	// Crash/restart schedules kill single-copy state, so the workload uses
	// one persistent (replicated) counter. Histories stay small: the
	// linearizability check is exhaustive.
	workers := pick(o, 2, 4)
	opsPer := pick(o, 3, 4)
	ref := core.Ref{Type: objects.TypeAtomicLong, Key: fmt.Sprintf("chaos-%d", seed)}
	var (
		mu       sync.Mutex
		history  []linearizability.Operation
		firstErr error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := cl.NewClient()
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer conn.Close()
			for i := 0; i < opsPer; i++ {
				method, input := "AddAndGet", any(linearizability.CounterOp{Kind: "add", Delta: 1})
				var args []any = []any{int64(1)}
				if (w+i)%3 == 2 {
					method, input, args = "Get", linearizability.CounterOp{Kind: "get"}, nil
				}
				call := time.Now()
				res, err := conn.InvokeObject(ctx, core.Invocation{
					Ref: ref, Method: method, Args: args, Persist: true,
				})
				ret := time.Now()
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("worker %d %s: %w", w, method, err)
					}
					mu.Unlock()
					return
				}
				v, ok := core.NumberAsInt64(res[0])
				if !ok {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("%s returned %T, want integer", method, res[0])
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				history = append(history, linearizability.Operation{
					ClientID: w, Input: input, Output: v, Call: call, Return: ret,
				})
				mu.Unlock()
				// Pace the ops so the small history spans the whole fault
				// schedule instead of finishing inside the first window.
				time.Sleep(time.Duration(50+5*((w+i)%5)) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if err := <-planDone; err != nil {
		return chaosResult{}, fmt.Errorf("fault plan: %w", err)
	}
	if firstErr != nil {
		return chaosResult{}, firstErr
	}

	_, ok := linearizability.Check(linearizability.CounterModel(), history)
	return chaosResult{
		ops:          len(history),
		counts:       eng.Counts(),
		dedupHits:    tel.Metrics().Counter(telemetry.MetServerDedupHits).Value(),
		linearizable: ok,
	}, nil
}
