package bench

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"crucial"
	"crucial/internal/apps/santa"
	"crucial/internal/client"
	"crucial/internal/cluster"
	"crucial/internal/netsim"
	"crucial/internal/storage/queuesim"
	"crucial/internal/storage/s3sim"
)

// Fig7a reproduces Fig. 7a: average time a thread spends waiting on a
// barrier while executing short computations in lock step — the Crucial
// barrier versus a barrier built from SNS+SQS (publish arrival, poll the
// own queue until everyone's arrival arrived).
func Fig7a(w io.Writer, o Options) error {
	o = o.withDefaults()
	if !o.Quick && o.Scale < 0.25 {
		// Barrier waits are tens of milliseconds; measure them above the
		// harness's real per-request costs.
		o.Scale = 0.25
	}
	profile := netsim.AWS2019(o.Scale)
	counts := pick(o, []int{3, 6}, []int{10, 40, 160, 320})
	rounds := pick(o, 2, 6)
	step := profile.Scaled(time.Second) // the 1s lock-step computation

	clu, err := cluster.StartLocal(cluster.Options{Nodes: 2, Profile: profile})
	if err != nil {
		return err
	}
	defer func() { _ = clu.Close() }()
	clients := make([]*client.Client, 8)
	for i := range clients {
		if clients[i], err = clu.NewClient(); err != nil {
			return err
		}
		defer func(c *client.Client) { _ = c.Close() }(clients[i])
	}

	title(w, "Fig 7a: average barrier wait per thread (modeled ms)")
	row(w, "%8s %14s %14s", "THREADS", "CRUCIAL (ms)", "SNS+SQS (ms)")
	ctx := context.Background()
	for _, n := range counts {
		// Crucial barrier.
		crucialWait, err := lockstep(n, rounds, step, func(tid int) roundFn {
			b := crucial.NewCyclicBarrier(fmt.Sprintf("f7a/b%d", n), n)
			b.H.BindDSO(clients[tid%len(clients)])
			return func(round int) error {
				_, err := b.Await(ctx)
				return err
			}
		})
		if err != nil {
			return err
		}

		// SNS+SQS barrier: a topic fans arrival tokens out to one queue
		// per thread; a thread passes the barrier for round r once it has
		// drained n tokens of that round from its queue.
		topic := queuesim.NewTopic(profile)
		queues := make([]*queuesim.Queue, n)
		for i := range queues {
			queues[i] = queuesim.NewQueue(profile)
			topic.Subscribe(queues[i])
		}
		snsWait, err := lockstep(n, rounds, step, func(tid int) roundFn {
			pendingByRound := map[int]int{}
			return func(round int) error {
				if err := topic.Publish(ctx, []byte(strconv.Itoa(round))); err != nil {
					return err
				}
				for pendingByRound[round] < n {
					msgs, err := queues[tid].Receive(ctx, 10)
					if err != nil {
						return err
					}
					for _, m := range msgs {
						r, err := strconv.Atoi(string(m))
						if err != nil {
							return err
						}
						pendingByRound[r]++
					}
				}
				return nil
			}
		})
		if err != nil {
			return err
		}
		row(w, "%8d %14.1f %14.1f", n,
			float64(modeled(crucialWait, o.Scale).Milliseconds()),
			float64(modeled(snsWait, o.Scale).Milliseconds()))
	}
	note(w, "paper shape: Crucial one order of magnitude faster at 320 threads;")
	note(w, "(paper extends to 1800 threads at 68ms average wait)")
	return nil
}

// roundFn performs one barrier round for a thread.
type roundFn func(round int) error

// lockstep runs n threads doing rounds of (compute step; barrier) and
// returns the average time spent waiting on the barrier per round. Round
// zero is a warm-up — goroutine start-up skew would otherwise be charged
// to the barrier — and is excluded from the average.
func lockstep(n, rounds int, step time.Duration, mk func(tid int) roundFn) (time.Duration, error) {
	var mu sync.Mutex
	var totalWait time.Duration
	var waits int
	errs := make([]error, n)
	var wg sync.WaitGroup
	for t := 0; t < n; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			pass := mk(tid)
			for r := 0; r <= rounds; r++ {
				if err := netsim.Sleep(context.Background(), step); err != nil {
					errs[tid] = err
					return
				}
				start := time.Now()
				if err := pass(r); err != nil {
					errs[tid] = err
					return
				}
				if r == 0 {
					continue // warm-up round
				}
				mu.Lock()
				totalWait += time.Since(start)
				waits++
				mu.Unlock()
			}
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	if waits == 0 {
		return 0, nil
	}
	return totalWait / time.Duration(waits), nil
}

// iterTask is the instrumented Runnable of Fig. 7b.
type iterTask struct {
	Idx        int
	Iterations int
	EnvID      string
	InputKey   string // S3 key of the input partition
	Prefix     string // DSO key prefix (per stage in the multi-stage run)
	StepMs     int64  // scaled compute per iteration, ms
	UseBarrier bool
	Parties    int
	StartedAt  int64 // unix nanos at thread Start, for invocation time
}

// Run fetches input from S3 (once with the barrier, every iteration
// without), computes, and synchronizes; phase durations land in a shared
// DSO map.
func (t *iterTask) Run(tc *crucial.TC) error {
	ctx := tc.Context()
	invocation := time.Since(time.Unix(0, t.StartedAt))

	env, err := benchEnv(t.EnvID)
	if err != nil {
		return err
	}
	phases := crucial.NewMap[int64](t.Prefix + "/phases")
	barrier := crucial.NewCyclicBarrier(t.Prefix+"/barrier", t.Parties)
	tc.Bind(phases, barrier)

	var s3Time, computeTime, syncTime time.Duration
	readInput := func() error {
		start := time.Now()
		_, err := env.S3.Get(ctx, t.InputKey)
		s3Time += time.Since(start)
		return err
	}
	if t.UseBarrier {
		if err := readInput(); err != nil {
			return err
		}
	}
	for it := 0; it < t.Iterations; it++ {
		if !t.UseBarrier {
			if err := readInput(); err != nil {
				return err
			}
		}
		start := time.Now()
		if err := netsim.Sleep(ctx, time.Duration(t.StepMs)*time.Millisecond); err != nil {
			return err
		}
		computeTime += time.Since(start)
		if t.UseBarrier {
			start = time.Now()
			if _, err := barrier.Await(ctx); err != nil {
				return err
			}
			syncTime += time.Since(start)
		}
	}
	for phase, d := range map[string]time.Duration{
		"invocation": invocation,
		"s3":         s3Time,
		"compute":    computeTime,
		"sync":       syncTime,
	} {
		key := fmt.Sprintf("t%d/%s", t.Idx, phase)
		if _, _, err := phases.Put(ctx, key, int64(d)); err != nil {
			return err
		}
	}
	return nil
}

// benchEnv is the S3 endpoint registry for instrumented bench runnables.
var benchEnvs = struct {
	sync.Mutex
	m map[string]*benchEnvT
}{m: make(map[string]*benchEnvT)}

type benchEnvT struct {
	S3 *s3sim.Store
}

func registerBenchEnv(id string, env *benchEnvT) {
	benchEnvs.Lock()
	benchEnvs.m[id] = env
	benchEnvs.Unlock()
}

func unregisterBenchEnv(id string) {
	benchEnvs.Lock()
	delete(benchEnvs.m, id)
	benchEnvs.Unlock()
}

func benchEnv(id string) (*benchEnvT, error) {
	benchEnvs.Lock()
	defer benchEnvs.Unlock()
	env, ok := benchEnvs.m[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown env %q", id)
	}
	return env, nil
}

// Fig7b reproduces Fig. 7b: the phase breakdown of an iterative task run
// either as one stage of cloud threads per iteration (a0/a1: input re-read
// every iteration, no barrier) or as a single stage synchronized with the
// Crucial barrier (b0/b1: input read once).
func Fig7b(w io.Writer, o Options) error {
	o = o.withDefaults()
	profile := netsim.AWS2019(o.Scale)
	threads := pick(o, 3, 10)
	iterations := pick(o, 2, 4)
	stepMs := int64(float64(1000) * o.Scale)
	if stepMs < 1 {
		stepMs = 1
	}

	rt, err := crucial.NewLocalRuntime(crucial.Options{
		DSONodes:    1,
		Profile:     profile,
		Concurrency: 1000,
	})
	if err != nil {
		return err
	}
	defer func() { _ = rt.Close() }()
	crucial.Register(&iterTask{})
	ctx := context.Background()

	runApproach := func(name string, useBarrier bool) (map[string][4]time.Duration, error) {
		envID := "f7b-" + name
		s3 := s3sim.New(s3sim.Options{Profile: profile})
		registerBenchEnv(envID, &benchEnvT{S3: s3})
		defer unregisterBenchEnv(envID)
		prefix := "f7b/" + name
		if err := s3.Put(ctx, prefix+"/input", make([]byte, 4096)); err != nil {
			return nil, err
		}
		if err := rt.Prewarm(threads); err != nil {
			return nil, err
		}

		launch := func(iters int, useBarrier bool, tag string) error {
			ts := make([]*crucial.CloudThread, threads)
			for i := range ts {
				ts[i] = rt.NewThread(&iterTask{
					Idx: i, Iterations: iters, EnvID: envID,
					InputKey: prefix + "/input",
					Prefix:   prefix + tag, StepMs: stepMs,
					UseBarrier: useBarrier, Parties: threads,
					StartedAt: time.Now().UnixNano(),
				})
				ts[i].StartCtx(ctx)
			}
			return crucial.JoinAll(ts)
		}
		if useBarrier {
			if err := launch(iterations, true, ""); err != nil {
				return nil, err
			}
		} else {
			// One fresh stage per iteration; per-thread phases accumulate
			// in the same map across stages (keys overwrite with the last
			// stage's values, so sum client-side instead).
			for it := 0; it < iterations; it++ {
				if err := launch(1, false, fmt.Sprintf("/s%d", it)); err != nil {
					return nil, err
				}
			}
		}

		// Collect phases for the first two threads.
		out := make(map[string][4]time.Duration, 2)
		for i := 0; i < 2 && i < threads; i++ {
			var sums [4]time.Duration
			tags := []string{""}
			if !useBarrier {
				tags = tags[:0]
				for it := 0; it < iterations; it++ {
					tags = append(tags, fmt.Sprintf("/s%d", it))
				}
			}
			for _, tag := range tags {
				phases := crucial.NewMap[int64](prefix + tag + "/phases")
				rt.Bind(phases)
				for pi, phase := range []string{"invocation", "s3", "compute", "sync"} {
					v, ok, err := phases.Get(ctx, fmt.Sprintf("t%d/%s", i, phase))
					if err != nil {
						return nil, err
					}
					if ok {
						sums[pi] += time.Duration(v)
					}
				}
			}
			out[fmt.Sprintf("%d", i)] = sums
		}
		return out, nil
	}

	multi, err := runApproach("multi", false)
	if err != nil {
		return err
	}
	single, err := runApproach("single", true)
	if err != nil {
		return err
	}

	title(w, "Fig 7b: iterative task phase breakdown (modeled ms per thread)")
	row(w, "%-6s %12s %10s %10s %10s %10s", "THREAD", "INVOCATION", "S3 READ", "COMPUTE", "SYNC", "TOTAL")
	print := func(label string, p [4]time.Duration) {
		total := p[0] + p[1] + p[2] + p[3]
		row(w, "%-6s %12.0f %10.0f %10.0f %10.0f %10.0f", label,
			float64(modeled(p[0], o.Scale).Milliseconds()),
			float64(modeled(p[1], o.Scale).Milliseconds()),
			float64(modeled(p[2], o.Scale).Milliseconds()),
			float64(modeled(p[3], o.Scale).Milliseconds()),
			float64(modeled(total, o.Scale).Milliseconds()))
	}
	print("a0", multi["0"])
	print("a1", multi["1"])
	print("b0", single["0"])
	print("b1", single["1"])
	note(w, "paper shape: multi-stage (a*) pays invocation + S3 read every iteration;")
	note(w, "single stage with barrier (b*) reads once and syncs cheaply -> lower total")
	return nil
}

// Fig7c reproduces Fig. 7c: the Santa Claus problem on a single machine
// (POJO), with DSO-hosted objects, and with cloud threads.
func Fig7c(w io.Writer, o Options) error {
	o = o.withDefaults()
	profile := netsim.AWS2019(o.Scale)
	params := santa.Params{
		Elves:         10,
		Reindeer:      9,
		Deliveries:    pick(o, 3, 15),
		TotalConsults: pick(o, 6, 30),
		DeliveryTime:  200 * time.Millisecond,
		ConsultTime:   100 * time.Millisecond,
		VacationTime:  250 * time.Millisecond,
		TimeScale:     o.Scale,
		Seed:          5,
	}

	reg := crucial.NewTypeRegistry()
	santa.RegisterTypes(reg)
	rt, err := crucial.NewLocalRuntime(crucial.Options{
		DSONodes:    2,
		Profile:     profile,
		Registry:    reg,
		Concurrency: 1000,
	})
	if err != nil {
		return err
	}
	defer func() { _ = rt.Close() }()
	ctx := context.Background()

	params.Prefix = "f7c-pojo"
	pojo, err := santa.RunPOJO(ctx, params)
	if err != nil {
		return err
	}
	params.Prefix = "f7c-dso"
	dso, err := santa.RunDSO(ctx, rt, params)
	if err != nil {
		return err
	}
	if err := rt.Prewarm(1 + params.Reindeer + params.Elves); err != nil {
		return err
	}
	params.Prefix = "f7c-cloud"
	cloud, err := santa.RunCloud(ctx, rt, params)
	if err != nil {
		return err
	}

	title(w, "Fig 7c: Santa Claus problem completion time (modeled s)")
	row(w, "%-24s %10s %10s", "VARIANT", "TIME (s)", "VS POJO")
	p := modeledSeconds(pojo, o.Scale)
	d := modeledSeconds(dso, o.Scale)
	c := modeledSeconds(cloud, o.Scale)
	row(w, "%-24s %10.2f %9.0f%%", "POJO (single machine)", p, 0.0)
	row(w, "%-24s %10.2f %+9.0f%%", "DSO objects", d, 100*(d-p)/p)
	row(w, "%-24s %10.2f %+9.0f%%", "DSO + cloud threads", c, 100*(c-p)/p)
	note(w, "paper: DSO within ~8%% of POJO; cloud threads add only invocation latency")
	return nil
}
