package bench

import (
	"io"

	"crucial/internal/loc"
)

// Table4 reproduces Table 4: the lines changed to move each application
// from its plain multi-threaded form to Crucial. The variant pairs live in
// internal/loc/testdata and mirror this repository's applications. Go has
// no annotations, so the fractions run higher than the paper's Java
// numbers (where AspectJ leaves call sites untouched); the structural
// claim — most of the program is unchanged — is what reproduces.
func Table4(w io.Writer, o Options) error {
	stats, err := loc.AllStats()
	if err != nil {
		return err
	}
	title(w, "Table 4: lines changed to port each application to Crucial")
	row(w, "%-16s %12s %14s %10s", "APPLICATION", "TOTAL LINES", "CHANGED LINES", "CHANGED %")
	for _, s := range stats {
		row(w, "%-16s %12d %14d %9.1f%%", s.App, s.TotalLines, s.ChangedLines, s.Percent())
	}
	note(w, "paper (Java + AspectJ): Monte Carlo 2/44, logreg 10/430, k-means 8/329, Santa 15/255")
	note(w, "Go needs a context argument per shared call site, hence larger textual deltas")
	return nil
}
