package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"crucial/internal/client"
	"crucial/internal/cluster"
	"crucial/internal/core"
	"crucial/internal/objects"
	"crucial/internal/ring"
	"crucial/internal/telemetry"
)

// ExpReshard is the elastic-resharding experiment (not part of RunAll,
// like cache): a zipfian-style hot-spot workload — most operations hit
// one viral counter, the rest a cold tail — on a cluster whose per-node
// capacity is modeled by the ServiceTime/ServiceConcurrency admission
// gate. Three placements of the same offered load: static (the viral
// counter funnels through its one hash primary), sharded (the counter
// split crucial.ShardedCounter-style across the ring, recovery limited
// by hash placement luck), and elastic (sharded plus the rebalancer,
// which live-migrates the hot shards until no member carries more than
// its share — DESIGN.md §5g). The reproduction target: elastic recovers
// ≥3x static throughput, approaching the uniform-load ceiling of
// nodes × per-node capacity. The microbenchmark twin is `make
// bench-reshard` (BENCH_reshard.json).
const ExpReshard = "reshard"

// reshardRow is one configuration's measurement.
type reshardRow struct {
	Config     string  `json:"config"`
	Nodes      int     `json:"nodes"`
	Shards     int     `json:"shards"`
	Rebalance  bool    `json:"rebalance"`
	Ops        uint64  `json:"ops"`
	OpsPerS    float64 `json:"ops_per_sec"`
	Directives int     `json:"directives"`
	Migrations uint64  `json:"migrations"`
}

// Reshard runs the hot-spot experiment and prints one row per placement
// strategy, plus the headline recovery factors.
func Reshard(w io.Writer, o Options) error {
	o = o.withDefaults()
	nodes := pick(o, 3, 5)
	shards := pick(o, 6, 10)
	// More workers than connections: workers model offered concurrency
	// (they must be able to fill every node's admission slots at once,
	// nodes × ServiceConcurrency, with headroom to queue), connections
	// just carry the frames.
	clients := pick(o, 4, 8)
	workers := pick(o, 16, 240)
	window := pick(o, 400*time.Millisecond, 2*time.Second)
	// Service time sets per-node capacity (ServiceConcurrency/svcTime).
	// It is deliberately large enough that the admission gate — not the
	// host CPU driving all five simulated nodes, nor its timer
	// granularity at high aggregate rates — is the binding constraint at
	// the uniform-load ceiling.
	svcTime := pick(o, 10*time.Millisecond, 20*time.Millisecond)

	title(w, "Reshard: zipfian hot spot, static vs sharded vs elastic placement (ops/s, wall clock)")
	row(w, "%-8s %6s %7s %10s %9s %12s %11s %11s", "CONFIG", "NODES",
		"SHARDS", "REBALANCE", "OPS", "OPS/SEC", "DIRECTIVES", "MIGRATIONS")

	type cfg struct {
		name      string
		shards    int
		rebalance bool
	}
	cfgs := []cfg{
		{"static", 1, false},
		{"sharded", shards, false},
		{"elastic", shards, true},
	}
	rows := make([]reshardRow, 0, len(cfgs))
	recovery := make(map[string]float64)
	var base float64
	for _, c := range cfgs {
		r, err := reshardRun(c.shards, c.rebalance, nodes, clients, workers, window, svcTime)
		if err != nil {
			return fmt.Errorf("reshard %s: %w", c.name, err)
		}
		r.Config = c.name
		rows = append(rows, r)
		onOff := "off"
		if c.rebalance {
			onOff = "on"
		}
		row(w, "%-8s %6d %7d %10s %9d %12.0f %11d %11d", r.Config, r.Nodes,
			r.Shards, onOff, r.Ops, r.OpsPerS, r.Directives, r.Migrations)
		if c.name == "static" {
			base = r.OpsPerS
		} else if base > 0 {
			recovery[c.name] = r.OpsPerS / base
		}
	}
	note(w, "sharded: %.1fx static, elastic: %.1fx static (full-size target >= 3x)",
		recovery["sharded"], recovery["elastic"])
	note(w, "static funnels the hot fraction through one node's admission gate;")
	note(w, "sharding spreads it as far as hash luck allows; the rebalancer migrates")
	note(w, "the hot shards until no member carries more than its share")

	if o.JSON != nil {
		doc := struct {
			Experiment string             `json:"experiment"`
			Rows       []reshardRow       `json:"rows"`
			Recovery   map[string]float64 `json:"recovery_vs_static"`
		}{ExpReshard, rows, recovery}
		enc := json.NewEncoder(o.JSON)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return fmt.Errorf("bench: write JSON results: %w", err)
		}
	}
	return nil
}

// reshardHotFraction is the zipfian head: the share of operations aimed
// at the viral counter. The remainder spreads over the cold tail.
const reshardHotFraction = 0.85

// reshardTail is the cold-tail population size.
const reshardTail = 32

// reshardRun measures one placement strategy: `clients` workers drive
// the zipfian mix for the window against a cluster whose nodes admit at
// most ServiceConcurrency in-service operations of svcTime each. With
// rebalancing on, a warmup drive outside the measured window lets the
// coordinator converge first (detect, migrate, settle), so the window
// sees the rebalanced steady state.
func reshardRun(shards int, rebalance bool, nodes, clients, workers int, window, svcTime time.Duration) (reshardRow, error) {
	tel := telemetry.New()
	opts := cluster.Options{
		Nodes:              nodes,
		RF:                 2,
		Telemetry:          tel,
		ServiceTime:        svcTime,
		ServiceConcurrency: 4,
	}
	if rebalance {
		opts.Rebalance = core.RebalancePolicy{
			Enabled:  true,
			Interval: 100 * time.Millisecond,
			// The hot-rate floor scales with modeled capacity: per-shard
			// rates run around hotFraction/shards of the (gate-bound)
			// aggregate, far below production defaults when svcTime is
			// tens of milliseconds.
			HotRate:   float64(opts.ServiceConcurrency) / svcTime.Seconds() / float64(2*shards),
			HotFactor: 2,
			Sustain:   2,
			// Longer than two tracker rate epochs: a re-migrated key must
			// be re-measured at its new home before it may move again, or
			// stale windows drive placement ping-pong.
			Cooldown: 12 * time.Second,
		}
	}
	cl, err := cluster.StartLocal(opts)
	if err != nil {
		return reshardRow{}, err
	}
	defer func() { _ = cl.Close() }()

	var hot []core.Ref
	if shards > 1 {
		for i := 0; i < shards; i++ {
			// crucial.ShardedCounter's shard derivation: "<key>#s<i>".
			hot = append(hot, core.Ref{Type: objects.TypeAtomicLong,
				Key: fmt.Sprintf("bench/viral#s%d", i)})
		}
	} else {
		hot = []core.Ref{{Type: objects.TypeAtomicLong, Key: "bench/viral"}}
	}
	var tail []core.Ref
	for i := 0; i < reshardTail; i++ {
		tail = append(tail, core.Ref{Type: objects.TypeAtomicLong,
			Key: fmt.Sprintf("bench/tail-%d", i)})
	}

	ctx, cancel := context.WithTimeout(context.Background(), window+2*time.Minute)
	defer cancel()
	conns := make([]*client.Client, 0, clients)
	for i := 0; i < clients; i++ {
		wc, err := cl.NewClient()
		if err != nil {
			return reshardRow{}, err
		}
		defer func() { _ = wc.Close() }()
		conns = append(conns, wc)
	}
	for _, ref := range append(append([]core.Ref{}, hot...), tail...) {
		if _, err := conns[0].Call(ctx, ref, "Set", int64(0)); err != nil {
			return reshardRow{}, err
		}
	}

	oneOp := func(wc *client.Client, rng *rand.Rand) error {
		if rng.Float64() < reshardHotFraction {
			_, err := wc.Call(ctx, hot[rng.Intn(len(hot))], "AddAndGet", int64(1))
			return err
		}
		_, err := wc.Call(ctx, tail[rng.Intn(len(tail))], "Get")
		return err
	}

	var ops atomic.Uint64
	var measuring atomic.Bool
	stop := make(chan struct{})
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wc := conns[i%len(conns)]
		wg.Add(1)
		go func(wc *client.Client, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := oneOp(wc, rng); err != nil {
					errc <- err
					return
				}
				if measuring.Load() {
					ops.Add(1)
				}
			}
		}(wc, int64(i+1))
	}

	if rebalance {
		bound := 30 * time.Second
		if window < time.Second { // quick mode: cap the convergence wait too
			bound = 10 * time.Second
		}
		reshardConverge(cl, hot, bound)
	}
	measuring.Store(true)
	start := time.Now()
	time.Sleep(window)
	measuring.Store(false)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		return reshardRow{}, err
	default:
	}

	return reshardRow{
		Nodes:      nodes,
		Shards:     shards,
		Rebalance:  rebalance,
		Ops:        ops.Load(),
		OpsPerS:    float64(ops.Load()) / elapsed.Seconds(),
		Directives: cl.Dir.View().Directives.Len(),
		Migrations: tel.Metrics().Counter(telemetry.MetServerMigrations).Value(),
	}, nil
}

// reshardConverge waits (bounded) until the rebalancer has spread the
// hot shards so that no member is primary for more than its fair share —
// the signal that the measured window starts from the rebalanced steady
// state.
func reshardConverge(cl *cluster.Cluster, hot []core.Ref, bound time.Duration) {
	nodes := len(cl.NodeIDs())
	if nodes == 0 {
		return
	}
	fair := (len(hot) + nodes - 1) / nodes
	deadline := time.Now().Add(bound)
	for time.Now().Before(deadline) {
		v := cl.Dir.View()
		perNode := make(map[ring.NodeID]int)
		for _, ref := range hot {
			if set := v.Place(ref.String(), cl.RF()); len(set) > 0 {
				perNode[set[0]]++
			}
		}
		worst := 0
		for _, n := range perNode {
			if n > worst {
				worst = n
			}
		}
		// Fair spread is the goal, not directives per se: when hash
		// placement already spreads the shards, there is nothing for
		// the rebalancer to do and no directive ever appears.
		if worst <= fair {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
}
