package bench

import (
	"context"
	"fmt"
	"io"

	"crucial"
	"crucial/internal/apps/kmeansapp"
	"crucial/internal/apps/logregapp"
	"crucial/internal/costmodel"
	"crucial/internal/netsim"
	"crucial/internal/rpc"
	"crucial/internal/sparksim"
	"crucial/internal/storage/redissim"
)

// The Spark-vs-Crucial experiments run at a gentler compression than the
// micro-benchmarks: at very small scales, the (unscaled) real CPU cost of
// Go serialization would inflate the modeled coordination overheads and
// distort the comparison.
const mlMinScale = 0.2

func mlScale(o Options) float64 {
	if o.Quick {
		return o.Scale
	}
	if o.Scale < mlMinScale {
		return mlMinScale
	}
	return o.Scale
}

// sparkCluster builds the EMR-like comparator with enough executor cores
// to match the Crucial worker count (the paper equalizes CPU resources).
// TaskOverheadMs and the stagePause below are calibrated against EMR
// behaviour: per-task dispatch plus per-stage scheduling/straggler slack.
func sparkCluster(scale float64, cores int) (*sparksim.Cluster, error) {
	workers := (cores + 7) / 8
	return sparksim.NewCluster(sparksim.Config{
		Workers:        workers,
		CoresPerWorker: 8,
		Profile:        netsim.AWS2019(scale),
		TaskOverheadMs: 10,
		NetworkMBps:    250,
	})
}

// Per-iteration driver overheads of MLlib on EMR, derived from the
// paper's own measurements (Fig. 4/5 and Table 3): logistic regression's
// treeAggregate costs ~140ms of scheduling per iteration beyond the
// compute; MLlib k-means, which runs extra jobs per iteration (cost
// computation, caching), ~1300ms. See EXPERIMENTS.md.
const (
	sparkLogRegOverheadMs = 140
	sparkKMeansOverheadMs = 1300
)

// logregCfg sizes the Fig. 4 run.
func logregCfg(o Options, scale float64) logregapp.Config {
	dims := pick(o, 8, 40)
	// Per-iteration modeled compute ~0.55s (the paper's 695k-element
	// partitions at 100 features).
	const modeledPoints = 100000
	targetNs := pick(o, 1.2e8, 5.5e8)
	return logregapp.Config{
		Dims:                   dims,
		Workers:                pick(o, 4, 40),
		Iterations:             pick(o, 4, 20),
		PointsPerWorker:        pick(o, 120, 200),
		LearningRate:           2.0,
		Seed:                   17,
		ModeledPointsPerWorker: modeledPoints,
		NsPerOp:                targetNs / (modeledPoints * float64(dims)),
		TimeScale:              scale,
		SparkStageOverheadMs:   sparkLogRegOverheadMs,
	}
}

// Fig4 reproduces Fig. 4: logistic regression in Crucial versus Spark —
// completion time of the iteration phase and the loss curve.
func Fig4(w io.Writer, o Options) error {
	o = o.withDefaults()
	scale := mlScale(o)
	if !o.Quick && scale < 0.5 {
		// Fig. 4's per-iteration synchronization is small (tens of ms),
		// so it needs the least compression of all experiments to stay
		// above the harness's real CPU costs.
		scale = 0.5
	}
	cfg := logregCfg(o, scale)
	ctx := context.Background()

	reg := crucial.NewTypeRegistry()
	logregapp.RegisterTypes(reg)
	rt, err := crucial.NewLocalRuntime(crucial.Options{
		DSONodes:    1,
		Profile:     netsim.AWS2019(scale),
		Registry:    reg,
		Concurrency: 1000,
	})
	if err != nil {
		return err
	}
	defer func() { _ = rt.Close() }()
	crucial.Register(&logregapp.Worker{})
	if err := rt.Prewarm(cfg.Workers); err != nil {
		return err
	}
	crucialRes, err := logregapp.RunCrucial(ctx, rt, cfg)
	if err != nil {
		return err
	}

	sc, err := sparkCluster(scale, cfg.Workers)
	if err != nil {
		return err
	}
	sparkCfg := cfg
	sparkRes, err := logregapp.RunSpark(ctx, sc, sparkCfg)
	if err != nil {
		return err
	}

	cru := modeledSeconds(crucialRes.Total, scale)
	spk := modeledSeconds(sparkRes.Total, scale)
	title(w, "Fig 4a: logistic regression, iteration phase completion time (modeled s)")
	row(w, "%-10s %12s %14s", "SYSTEM", "TOTAL (s)", "PER-ITER (s)")
	row(w, "%-10s %12.1f %14.3f", "spark", spk, spk/float64(cfg.Iterations))
	row(w, "%-10s %12.1f %14.3f", "crucial", cru, cru/float64(cfg.Iterations))
	row(w, "%-10s %11.0f%%", "gain", 100*(spk-cru)/spk)
	note(w, "paper: spark 75.9s, crucial 62.3s over 100 iterations (18%% faster)")

	title(w, "Fig 4b: logistic loss per iteration (identical math in both systems)")
	row(w, "%6s %14s %14s", "ITER", "SPARK LOSS", "CRUCIAL LOSS")
	step := len(sparkRes.Losses) / 4
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(sparkRes.Losses); i += step {
		cl := float64(-1)
		if i < len(crucialRes.Losses) {
			cl = crucialRes.Losses[i]
		}
		row(w, "%6d %14.5f %14.5f", i+1, sparkRes.Losses[i], cl)
	}
	note(w, "paper shape: same per-iteration loss; Crucial reaches it sooner in wall-clock")
	return nil
}

// kmeansMLCfg sizes a Fig. 5 / Table 3 run for a given k.
func kmeansMLCfg(o Options, scale float64, k int, prefix string) kmeansapp.Config {
	dims := pick(o, 6, 20)
	// Per-iteration modeled compute ~ 80ms * k / dims-normalized (at
	// k=25: ~2s, matching the paper's 20.4s/10 iterations).
	const modeledPoints = 40000
	nsPerOp := pick(o, 0.4e9, 2e9) / (modeledPoints * 25.0 * float64(dims))
	return kmeansapp.Config{
		K:                      k,
		Dims:                   dims,
		Workers:                pick(o, 3, 40),
		MaxIterations:          pick(o, 2, 10),
		PointsPerWorker:        pick(o, 60, 100),
		Seed:                   23,
		ModeledPointsPerWorker: modeledPoints,
		NsPerOp:                nsPerOp,
		TimeScale:              scale,
		KeyPrefix:              prefix,
		SparkStageOverheadMs:   sparkKMeansOverheadMs,
	}
}

// Fig5 reproduces Fig. 5: k-means completion time (10 iterations) for
// varying cluster counts k — Spark, Crucial, and Crucial-over-Redis.
func Fig5(w io.Writer, o Options) error {
	o = o.withDefaults()
	scale := mlScale(o)
	ks := pick(o, []int{2, 4}, []int{25, 50, 100, 200})
	ctx := context.Background()

	rt, err := crucial.NewLocalRuntime(crucial.Options{
		DSONodes:    1,
		Profile:     netsim.AWS2019(scale),
		Registry:    kmeansRegistry(),
		Concurrency: 1000,
	})
	if err != nil {
		return err
	}
	defer func() { _ = rt.Close() }()
	crucial.Register(&kmeansapp.Worker{})

	title(w, "Fig 5: k-means completion time vs number of clusters (modeled s)")
	row(w, "%6s %12s %12s %16s", "K", "SPARK", "CRUCIAL", "CRUCIAL-REDIS")
	for _, k := range ks {
		cfg := kmeansMLCfg(o, scale, k, fmt.Sprintf("f5/%d", k))
		if err := rt.Prewarm(cfg.Workers); err != nil {
			return err
		}
		cruRes, err := kmeansapp.RunCrucial(ctx, rt, cfg)
		if err != nil {
			return err
		}
		sc, err := sparkCluster(scale, cfg.Workers)
		if err != nil {
			return err
		}
		spkRes, err := kmeansapp.RunSpark(ctx, sc, cfg)
		if err != nil {
			return err
		}
		// The Redis variant pays the same RPC costs as the DSO client.
		rc := redissim.NewCluster(1, netsim.AWS2019(scale))
		kmeansapp.RegisterRedisScripts(rc)
		rnet := rpc.NewMemNetwork()
		rsrv, err := redissim.Serve(rc, rnet, "redis")
		if err != nil {
			rc.Close()
			return err
		}
		remote, err := redissim.Dial(rnet, "redis")
		if err != nil {
			_ = rsrv.Close()
			rc.Close()
			return err
		}
		redisRes, err := kmeansapp.RunCrucialRedis(ctx, remote, cfg)
		_ = remote.Close()
		_ = rsrv.Close()
		rc.Close()
		if err != nil {
			return err
		}
		row(w, "%6d %12.1f %12.1f %16.1f", k,
			modeledSeconds(spkRes.Total, scale),
			modeledSeconds(cruRes.Total, scale),
			modeledSeconds(redisRes.Total, scale))
	}
	note(w, "paper: k=25 crucial 20.4s vs spark 34s (40%% faster); gap narrows as k grows;")
	note(w, "the Redis-backed variant is always the slowest")
	return nil
}

// Table3 reproduces Table 3: monetary cost of the k-means (k=25, k=200)
// and logistic regression experiments, priced with the 2019 AWS rates.
// Iteration times come from runs like Fig. 4/5; the load phase (reading
// and parsing the 100 GB input) is modeled from aggregate S3 bandwidth:
// Spark's 10 readers at ~100 MB/s each versus 80 concurrent functions at
// ~50 MB/s each.
func Table3(w io.Writer, o Options) error {
	o = o.withDefaults()
	scale := mlScale(o)
	ctx := context.Background()

	const (
		sparkLoadSeconds   = 134.0
		crucialLoadSeconds = 66.0
		functionMemoryMB   = 2048
		paperFunctions     = 80
		paperEMRWorkers    = 10
	)

	rt, err := crucial.NewLocalRuntime(crucial.Options{
		DSONodes:    1,
		Profile:     netsim.AWS2019(scale),
		Registry:    kmeansRegistry(),
		Concurrency: 1000,
	})
	if err != nil {
		return err
	}
	defer func() { _ = rt.Close() }()
	crucial.Register(&kmeansapp.Worker{})

	type experiment struct {
		name               string
		sparkIter, cruIter float64 // modeled iteration seconds
	}
	var exps []experiment

	for _, k := range pick(o, []int{2, 4}, []int{25, 200}) {
		cfg := kmeansMLCfg(o, scale, k, fmt.Sprintf("t3/%d", k))
		if err := rt.Prewarm(cfg.Workers); err != nil {
			return err
		}
		cru, err := kmeansapp.RunCrucial(ctx, rt, cfg)
		if err != nil {
			return err
		}
		sc, err := sparkCluster(scale, cfg.Workers)
		if err != nil {
			return err
		}
		spk, err := kmeansapp.RunSpark(ctx, sc, cfg)
		if err != nil {
			return err
		}
		exps = append(exps, experiment{
			name:      fmt.Sprintf("k-means (k=%d)", k),
			sparkIter: modeledSeconds(spk.Total, scale),
			cruIter:   modeledSeconds(cru.Total, scale),
		})
	}

	reg := crucial.NewTypeRegistry()
	logregapp.RegisterTypes(reg)
	rt2, err := crucial.NewLocalRuntime(crucial.Options{
		DSONodes:    1,
		Profile:     netsim.AWS2019(scale),
		Registry:    reg,
		Concurrency: 1000,
	})
	if err != nil {
		return err
	}
	defer func() { _ = rt2.Close() }()
	crucial.Register(&logregapp.Worker{})
	lrCfg := logregCfg(o, scale)
	if err := rt2.Prewarm(lrCfg.Workers); err != nil {
		return err
	}
	lrCru, err := logregapp.RunCrucial(ctx, rt2, lrCfg)
	if err != nil {
		return err
	}
	sc, err := sparkCluster(scale, lrCfg.Workers)
	if err != nil {
		return err
	}
	lrSpk, err := logregapp.RunSpark(ctx, sc, lrCfg)
	if err != nil {
		return err
	}
	exps = append(exps, experiment{
		name:      "logistic regression",
		sparkIter: modeledSeconds(lrSpk.Total, scale),
		cruIter:   modeledSeconds(lrCru.Total, scale),
	})

	title(w, "Table 3: monetary cost (USD; iteration times measured, load modeled)")
	row(w, "%-22s %-9s %10s %11s %11s", "EXPERIMENT", "SYSTEM", "TIME (s)", "TOTAL ($)", "ITER ($)")
	for _, e := range exps {
		s := costmodel.SparkRun(e.sparkIter+sparkLoadSeconds, e.sparkIter, paperEMRWorkers)
		c := costmodel.CrucialRun(e.cruIter+crucialLoadSeconds, e.cruIter, paperFunctions, functionMemoryMB, 1)
		row(w, "%-22s %-9s %10.0f %11.3f %11.3f", e.name, "spark", s.TotalSeconds, s.TotalUSD, s.IterUSD)
		row(w, "%-22s %-9s %10.0f %11.3f %11.3f", "", "crucial", c.TotalSeconds, c.TotalUSD, c.IterUSD)
	}
	note(w, "paper: total costs comparable at k=25 (0.246 vs 0.244); Crucial pricier when compute")
	note(w, "dominates (k=200: 0.484 vs 0.657); logreg 0.282 vs 0.302")
	return nil
}
