// Package bench regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment has a runner that builds the
// systems involved, drives the workload, and prints rows/series in the
// shape the paper reports. Absolute numbers come from the simulated
// substrates (see DESIGN.md); the comparisons — who wins, by what factor,
// where the crossovers fall — are the reproduction targets, recorded in
// EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Options control experiment sizing.
type Options struct {
	// Scale compresses simulated latencies and modeled compute
	// (default 0.1: 10x faster than the paper's wall clock). Some
	// experiments override it where measurement noise demands.
	Scale float64
	// Quick shrinks workloads to smoke-test size (used by `go test`).
	Quick bool
	// JSON, when non-nil, receives machine-readable results from
	// experiments that capture telemetry (currently the stages breakdown):
	// one JSON document with the experiment id and the final metrics
	// snapshot.
	JSON io.Writer
	// Report prints the critical-path analysis (per-category attribution of
	// trace wall time plus the slowest trace's path) after experiments that
	// run instrumented (currently the stages breakdown).
	Report bool
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.1
	}
	return o
}

// pick returns quick when o.Quick, else full.
func pick[T any](o Options, quick, full T) T {
	if o.Quick {
		return quick
	}
	return full
}

// Experiment names in paper order.
const (
	ExpTable2 = "table2"
	ExpFig2a  = "fig2a"
	ExpFig2b  = "fig2b"
	ExpFig3   = "fig3"
	ExpFig4   = "fig4"
	ExpFig5   = "fig5"
	ExpTable3 = "table3"
	ExpFig6   = "fig6"
	ExpFig7a  = "fig7a"
	ExpFig7b  = "fig7b"
	ExpFig7c  = "fig7c"
	ExpFig8   = "fig8"
	ExpTable4 = "table4"
)

// Names lists every experiment id in presentation order.
func Names() []string {
	return []string{
		ExpTable2, ExpFig2a, ExpFig2b, ExpFig3, ExpFig4, ExpFig5,
		ExpTable3, ExpFig6, ExpFig7a, ExpFig7b, ExpFig7c, ExpFig8,
		ExpTable4,
	}
}

// Run executes one experiment by id, writing its report to w.
func Run(name string, w io.Writer, o Options) error {
	o = o.withDefaults()
	switch name {
	case ExpTable2:
		return Table2(w, o)
	case ExpFig2a:
		return Fig2a(w, o)
	case ExpFig2b:
		return Fig2b(w, o)
	case ExpFig3:
		return Fig3(w, o)
	case ExpFig4:
		return Fig4(w, o)
	case ExpFig5:
		return Fig5(w, o)
	case ExpTable3:
		return Table3(w, o)
	case ExpFig6:
		return Fig6(w, o)
	case ExpFig7a:
		return Fig7a(w, o)
	case ExpFig7b:
		return Fig7b(w, o)
	case ExpFig7c:
		return Fig7c(w, o)
	case ExpFig8:
		return Fig8(w, o)
	case ExpTable4:
		return Table4(w, o)
	case ExpAblationShipping:
		return AblationShipping(w, o)
	case ExpAblationBlocking:
		return AblationBlocking(w, o)
	case ExpStages:
		return Stages(w, o)
	case ExpChaos:
		return Chaos(w, o)
	case ExpCache:
		return Cache(w, o)
	case ExpReshard:
		return Reshard(w, o)
	case ExpStatefun:
		return Statefun(w, o)
	default:
		return fmt.Errorf("bench: unknown experiment %q (known: %v + %v + %q + %q + %q + %q + %q)",
			name, Names(), AblationNames(), ExpStages, ExpChaos, ExpCache, ExpReshard, ExpStatefun)
	}
}

// RunAll executes every experiment in order, stopping on the first error.
func RunAll(w io.Writer, o Options) error {
	for _, name := range Names() {
		if err := Run(name, w, o); err != nil {
			return fmt.Errorf("bench: %s: %w", name, err)
		}
	}
	return nil
}

// --- report formatting ---

func title(w io.Writer, text string) {
	fmt.Fprintf(w, "\n=== %s ===\n", text)
}

func note(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, "    "+format+"\n", args...)
}

func row(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format+"\n", args...)
}

// modeled converts a measured real duration back to modeled (paper-scale)
// time by dividing out the compression factor.
func modeled(d time.Duration, scale float64) time.Duration {
	if scale <= 0 {
		return d
	}
	return time.Duration(float64(d) / scale)
}

// modeledSeconds is modeled as float seconds.
func modeledSeconds(d time.Duration, scale float64) float64 {
	return modeled(d, scale).Seconds()
}

// percentile returns the p-quantile (0..1) of a sample set.
func percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// mean averages a sample set.
func mean(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	return sum / time.Duration(len(samples))
}
