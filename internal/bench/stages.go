package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"crucial"
	"crucial/internal/netsim"
	"crucial/internal/telemetry"
	"crucial/internal/telemetry/analysis"
)

// ExpStages is the instrumented end-to-end breakdown (not part of RunAll,
// like the ablations): it runs a fork/join workload on a telemetry-enabled
// runtime and reports where invocation time goes — cold start, FaaS
// dispatch, DSO RPC, server execution, monitor blocking.
const ExpStages = "stages"

// stageWorker is the workload: hammer a shared counter, then meet the
// other threads at a barrier. The barrier populates server.monitor_wait;
// the counter calls populate the RPC and execution histograms.
type stageWorker struct {
	Counter *crucial.AtomicLong
	Barrier *crucial.CyclicBarrier
	Ops     int
}

// Run implements crucial.Runnable.
func (s *stageWorker) Run(tc *crucial.TC) error {
	ctx := tc.Context()
	for i := 0; i < s.Ops; i++ {
		if _, err := s.Counter.IncrementAndGet(ctx); err != nil {
			return err
		}
	}
	_, err := s.Barrier.Await(ctx)
	return err
}

// Stages runs two waves of cloud threads — the first all cold, the second
// all warm — against an instrumented runtime and prints the per-stage
// latency histograms (p50/p95/p99, modeled time). With Options.JSON set it
// also emits the full metrics snapshot as one JSON document.
func Stages(w io.Writer, o Options) error {
	o = o.withDefaults()
	profile := netsim.AWS2019(o.Scale)
	threads := pick(o, 4, 32)
	ops := pick(o, 5, 50)

	tel := telemetry.New()
	rt, err := crucial.NewLocalRuntime(crucial.Options{
		DSONodes:  2,
		Profile:   profile,
		Telemetry: tel,
	})
	if err != nil {
		return err
	}
	defer func() { _ = rt.Close() }()
	crucial.Register(&stageWorker{})

	wave := func(tag string) error {
		rs := make([]crucial.Runnable, threads)
		for i := range rs {
			rs[i] = &stageWorker{
				Counter: crucial.NewAtomicLong("stages/" + tag + "/counter"),
				Barrier: crucial.NewCyclicBarrier("stages/"+tag+"/barrier", threads),
				Ops:     ops,
			}
		}
		return crucial.JoinAll(rt.SpawnAll(rs...))
	}
	// Wave 1 pays cold starts; wave 2 reuses the warm containers.
	if err := wave("cold"); err != nil {
		return err
	}
	if err := wave("warm"); err != nil {
		return err
	}

	snap := rt.Metrics()
	title(w, "Stages: per-stage latency breakdown (modeled time, instrumented runtime)")
	row(w, "%-22s %8s %10s %10s %10s %10s %10s", "STAGE", "COUNT", "P50", "P95", "P99", "P999", "MAX")
	for _, name := range []string{
		telemetry.HistFaaSColdStart,
		telemetry.HistFaaSInvoke,
		telemetry.HistClientRPC,
		telemetry.HistServerExec,
		telemetry.HistServerMonitorWait,
		telemetry.HistThreadLifetime,
	} {
		h, ok := snap.Histograms[name]
		if !ok {
			continue
		}
		row(w, "%-22s %8d %10s %10s %10s %10s %10s", name, h.Count,
			stageDur(h.P50, o.Scale), stageDur(h.P95, o.Scale),
			stageDur(h.P99, o.Scale), stageDur(h.P999, o.Scale),
			stageDur(h.Max, o.Scale))
	}
	cold := snap.Counters[telemetry.MetFaaSColdStarts]
	total := snap.Counters[telemetry.MetFaaSInvocations]
	note(w, "%d/%d invocations were cold starts; server.exec includes monitor blocking,", cold, total)
	note(w, "subtract server.monitor_wait for pure compute (barrier waits dominate it here)")

	if o.Report {
		title(w, "Stages: critical-path attribution")
		analysis.Analyze(rt.Trace()).Format(w)
	}

	if o.JSON != nil {
		doc := struct {
			Experiment string             `json:"experiment"`
			Threads    int                `json:"threads"`
			Scale      float64            `json:"scale"`
			Metrics    telemetry.Snapshot `json:"metrics"`
		}{ExpStages, threads, o.Scale, snap}
		enc := json.NewEncoder(o.JSON)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return fmt.Errorf("bench: write JSON results: %w", err)
		}
	}
	return nil
}

// stageDur renders one histogram duration in modeled time.
func stageDur(d time.Duration, scale float64) string {
	return modeled(d, scale).Round(10 * time.Microsecond).String()
}
