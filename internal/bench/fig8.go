package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crucial"
	"crucial/internal/cluster"
	"crucial/internal/ml"
	"crucial/internal/netsim"
)

// Fig8 reproduces Fig. 8: inference throughput against a k-means model
// kept in replicated shared objects (rf=2) on a 3-node DSO cluster, while
// a storage node crashes at one third of the run and a fresh node joins at
// two thirds. The system must dip but not stop on the crash, and recover
// after the addition.
func Fig8(w io.Writer, o Options) error {
	o = o.withDefaults()
	// Latencies stay real (scale 1): the experiment measures availability
	// over wall-clock time, and compression would only multiply the op
	// rate beyond what one host can execute.
	profile := netsim.AWS2019(1.0)

	// The model is stored as many replicated chunk objects (the paper's
	// 200 centroids) so consistent hashing spreads them evenly and fleet
	// capacity scales with the node count.
	chunks := pick(o, 8, 30)
	dims := pick(o, 8, 8)     // dims per chunk row
	threads := pick(o, 8, 25) // inference clients
	duration := pick(o, 2*time.Second, 21*time.Second)
	bucket := pick(o, 250*time.Millisecond, time.Second)
	thinkTime := time.Millisecond // modeled distance computations

	// Nodes have finite modeled capacity (4 workers x 5ms service time =
	// 800 invocations/s each), so losing one of three nodes costs a third
	// of the fleet — the mechanism behind the paper's ~30% dip.
	clu, err := cluster.StartLocal(cluster.Options{
		Nodes: 3, RF: 2, Profile: profile,
		ServiceTime: 5 * time.Millisecond, ServiceConcurrency: 4,
	})
	if err != nil {
		return err
	}
	defer func() { _ = clu.Close() }()

	// Train: store the model as `chunks` persistent arrays (the 200
	// centroids of the paper, chunked).
	setup, err := clu.NewClient()
	if err != nil {
		return err
	}
	defer func() { _ = setup.Close() }()
	model := make([]*crucial.AtomicDoubleArray, chunks)
	for i := range model {
		model[i] = crucial.NewAtomicDoubleArray(fmt.Sprintf("f8/model/%d", i), dims, crucial.WithPersist())
		model[i].H.BindDSO(setup)
		vals := make([]float64, dims)
		for d := range vals {
			vals[d] = float64(i*dims + d)
		}
		if err := model[i].SetAll(context.Background(), vals); err != nil {
			return err
		}
	}

	// Inference threads: read every chunk, classify a random point.
	buckets := make([]atomic.Int64, int(duration/bucket)+2)
	stop := make(chan struct{})
	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			cl, err := clu.NewClient()
			if err != nil {
				return
			}
			defer func() { _ = cl.Close() }()
			local := make([]*crucial.AtomicDoubleArray, chunks)
			for i := range local {
				local[i] = crucial.NewAtomicDoubleArray(fmt.Sprintf("f8/model/%d", i), dims, crucial.WithPersist())
				local[i].H.BindDSO(cl)
			}
			point := make([]float64, dims)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Bounded per-round context: during membership changes an
				// individual read may stall; it must not wedge the thread.
				roundCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				centroids := make([][]float64, 0, chunks)
				ok := true
				for i := range local {
					vals, err := local[i].GetAll(roundCtx)
					if err != nil {
						// Membership is shifting; the client retries
						// internally, and residual errors during the
						// transition simply do not count as completed
						// inferences.
						ok = false
						break
					}
					centroids = append(centroids, vals)
				}
				if !ok {
					cancel()
					continue
				}
				cancel()
				ml.Predict(point, centroids)
				if err := netsim.Sleep(context.Background(), thinkTime); err != nil {
					return
				}
				idx := int(time.Since(start) / bucket)
				if idx >= 0 && idx < len(buckets) {
					buckets[idx].Add(1)
				}
			}
		}(t)
	}

	// Membership events at 1/3 and 2/3.
	crashAt := duration / 3
	addAt := 2 * duration / 3
	time.Sleep(crashAt)
	victims := clu.NodeIDs()
	if err := clu.CrashNode(victims[len(victims)-1]); err != nil {
		return err
	}
	time.Sleep(addAt - crashAt)
	if _, err := clu.AddNode(); err != nil {
		return err
	}
	time.Sleep(duration - addAt)
	close(stop)
	wg.Wait()

	// Report the throughput timeline plus phase averages.
	nBuckets := int(duration / bucket)
	phase := func(from, to int) float64 {
		var sum int64
		n := 0
		for i := from; i < to && i < nBuckets; i++ {
			sum += buckets[i].Load()
			n++
		}
		if n == 0 {
			return 0
		}
		return float64(sum) / (float64(n) * bucket.Seconds())
	}
	crashBucket := int(crashAt / bucket)
	addBucket := int(addAt / bucket)
	before := phase(0, crashBucket)
	during := phase(crashBucket+1, addBucket)
	after := phase(addBucket+1, nBuckets)

	title(w, "Fig 8: inference throughput under membership changes (inferences/s)")
	row(w, "%-28s %12s", "PHASE", "RATE (inf/s)")
	row(w, "%-28s %12.0f", "3 nodes (before crash)", before)
	row(w, "%-28s %12.0f", "2 nodes (after crash)", during)
	row(w, "%-28s %12.0f", "3 nodes (after addition)", after)
	var timeline strings.Builder
	for i := 0; i < nBuckets; i++ {
		if i > 0 {
			timeline.WriteString(" ")
		}
		marker := ""
		if i == crashBucket {
			marker = "X" // crash
		} else if i == addBucket {
			marker = "+" // addition
		}
		fmt.Fprintf(&timeline, "%d%s", buckets[i].Load(), marker)
	}
	note(w, "timeline (per-bucket counts; X=crash, +=node added): %s", timeline.String())
	note(w, "paper shape: ~30%% dip after the crash, recovery ~20s after the addition;")
	note(w, "throughput never reaches zero — the crash does not block the system")
	if during <= 0 {
		return fmt.Errorf("bench: system blocked after crash (0 inferences)")
	}
	return nil
}
