// Package membership provides the view service of the DSO layer: a
// totally-ordered sequence of views (paper Section 4.1, "a variation of
// view synchrony"). Nodes join, heartbeat, and leave; the directory
// installs a new view on every membership change and notifies subscribers
// in order, so all nodes agree on the view sequence and rebalance
// deterministically.
//
// The directory plays the role JGroups' coordinator plays for Infinispan.
// It runs in the control plane of the cluster: in-process for tests and
// benchmarks, or hosted by a seed node for the TCP deployment. Experiments
// drive membership changes through Crash and Join (Fig. 8).
package membership

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"crucial/internal/ring"
)

// View is one membership epoch. Views are immutable; Members is sorted.
// Directives carries the per-key placement overrides in force for this
// epoch (ring.Directives): the rebalancer installs a new view (same
// members, bumped directive version) to move a hot object, and every node
// and client routes from the same table.
type View struct {
	ID         uint64
	Members    []ring.NodeID
	Addrs      map[ring.NodeID]string
	Directives ring.Directives
}

// Contains reports whether node is a member of the view.
func (v View) Contains(node ring.NodeID) bool {
	for _, m := range v.Members {
		if m == node {
			return true
		}
	}
	return false
}

// Ring builds the consistent-hashing ring of this view.
func (v View) Ring() *ring.Ring {
	return ring.New(v.Members, 0)
}

// Place computes the replica set for key in this view: directive table
// first, ring otherwise (ring.Directives.Place). Convenience for cold
// paths; hot paths keep a cached Ring and call Directives.Place on it.
func (v View) Place(key string, rf int) []ring.NodeID {
	return v.Directives.Place(v.Ring(), key, rf)
}

// Fence is a digest of the view's placement function (FNV-1a over the
// sorted member list and the directive table). Two views with equal
// fences resolve every object to the same replica group and the same
// primary, so replication messages fenced on it can only commit among
// nodes that agree on who coordinates — ruling out a stale primary and a
// new one serving the same object concurrently during a view transition.
// Directives are part of the digest because a directive flip changes
// placement exactly like a membership change does: a proposal fenced on
// the pre-flip table must not commit once the flip lands. Unlike the ID,
// the fence is comparable across independently-numbered directories (each
// process of a TCP deployment runs its own).
func (v View) Fence() uint64 {
	// Inline FNV-1a, 64 bit.
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // field separator
		h *= prime64
	}
	for _, m := range v.Members {
		mix(string(m))
	}
	if v.Directives.Len() > 0 {
		for i := 0; i < 8; i++ {
			h ^= (v.Directives.Version >> (8 * i)) & 0xff
			h *= prime64
		}
		for _, k := range v.Directives.Keys() {
			mix(k)
			targets, _ := v.Directives.Lookup(k)
			for _, t := range targets {
				mix(string(t))
			}
			h ^= 0xfe // entry separator
			h *= prime64
		}
	}
	return h
}

// clone returns a deep copy so callers can never alias directory state.
func (v View) clone() View {
	out := View{
		ID:         v.ID,
		Members:    make([]ring.NodeID, len(v.Members)),
		Addrs:      make(map[ring.NodeID]string, len(v.Addrs)),
		Directives: v.Directives.Clone(),
	}
	copy(out.Members, v.Members)
	for k, a := range v.Addrs {
		out.Addrs[k] = a
	}
	return out
}

// Listener observes installed views. Listeners are invoked sequentially,
// in view order, on the goroutine that triggered the change; they must not
// call back into the directory.
type Listener func(View)

// ErrUnknownNode is returned when operating on a node that is not a
// member.
var ErrUnknownNode = errors.New("membership: unknown node")

// Directory is the membership service. Safe for concurrent use.
type Directory struct {
	mu         sync.Mutex
	view       View
	heartbeats map[ring.NodeID]time.Time
	listeners  map[int]Listener
	nextSub    int
	timeout    time.Duration
	// installMu serializes view installation + listener notification so
	// listeners observe views strictly in order.
	installMu sync.Mutex
}

// NewDirectory builds a directory. timeout is the heartbeat staleness
// threshold used by CheckFailures (and the background detector, if
// started).
func NewDirectory(timeout time.Duration) *Directory {
	return &Directory{
		view:       View{ID: 0, Addrs: map[ring.NodeID]string{}},
		heartbeats: make(map[ring.NodeID]time.Time),
		listeners:  make(map[int]Listener),
		timeout:    timeout,
	}
}

// View returns the current view.
func (d *Directory) View() View {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.view.clone()
}

// Subscribe registers a listener for future views and returns a cancel
// function. The listener is immediately called with the current view so
// subscribers need no separate bootstrap.
func (d *Directory) Subscribe(l Listener) (cancel func()) {
	d.installMu.Lock()
	d.mu.Lock()
	id := d.nextSub
	d.nextSub++
	d.listeners[id] = l
	current := d.view.clone()
	d.mu.Unlock()
	l(current)
	d.installMu.Unlock()
	return func() {
		d.mu.Lock()
		delete(d.listeners, id)
		d.mu.Unlock()
	}
}

// Join adds a node and installs the next view. Joining twice updates the
// address (a restarted node).
func (d *Directory) Join(node ring.NodeID, addr string) View {
	return d.change(func(members map[ring.NodeID]string) {
		members[node] = addr
	})
}

// Leave removes a node gracefully and installs the next view.
func (d *Directory) Leave(node ring.NodeID) View {
	return d.change(func(members map[ring.NodeID]string) {
		delete(members, node)
	})
}

// Crash removes a node abruptly (experiment hook; equivalent to the
// failure detector firing). The view change is identical to Leave — the
// difference is at the node, which gets no chance to hand off state.
// Crashing a node that is not a member is a no-op: no view is installed
// and the current view is returned (a failure detector and an explicit
// experiment step may race to remove the same node).
func (d *Directory) Crash(node ring.NodeID) View {
	return d.Leave(node)
}

// change applies a mutation to the member set and installs the next view.
// A mutation that leaves the member set unchanged (leave of a non-member,
// re-join with the same address) installs nothing: subscribers only ever
// see views that differ from their predecessor, so a redundant call can
// not trigger a spurious rebalance.
func (d *Directory) change(mutate func(map[ring.NodeID]string)) View {
	d.installMu.Lock()
	defer d.installMu.Unlock()

	d.mu.Lock()
	members := make(map[ring.NodeID]string, len(d.view.Addrs))
	for n, a := range d.view.Addrs {
		members[n] = a
	}
	mutate(members)
	if unchangedLocked(d.view.Addrs, members) {
		cur := d.view.clone()
		d.mu.Unlock()
		return cur
	}

	next := View{ID: d.view.ID + 1, Addrs: members, Directives: d.view.Directives.Clone()}
	next.Members = make([]ring.NodeID, 0, len(members))
	for n := range members {
		next.Members = append(next.Members, n)
		if _, ok := d.heartbeats[n]; !ok {
			d.heartbeats[n] = time.Now()
		}
	}
	for n := range d.heartbeats {
		if _, ok := members[n]; !ok {
			delete(d.heartbeats, n)
		}
	}
	sort.Slice(next.Members, func(i, j int) bool { return next.Members[i] < next.Members[j] })
	d.view = next

	ls := make([]Listener, 0, len(d.listeners))
	for _, l := range d.listeners {
		ls = append(ls, l)
	}
	installed := next.clone()
	d.mu.Unlock()

	for _, l := range ls {
		l(installed)
	}
	return installed
}

// SetDirective installs the next view with key directed to targets (same
// members, directive version bumped). An empty target list removes the
// override. Placement flips go through the ordinary view-installation
// path on purpose: subscribers see one totally-ordered sequence of
// placement changes, membership or directive alike, and the new view's
// fence cuts off in-flight replication rounds routed by the old table.
func (d *Directory) SetDirective(key string, targets []ring.NodeID) View {
	return d.UpdateDirectives(func(cur ring.Directives) ring.Directives {
		return cur.With(key, targets)
	})
}

// ClearDirective installs the next view with key's override removed, so
// the key falls back to hash placement. Clearing a key that has no
// override installs nothing.
func (d *Directory) ClearDirective(key string) View {
	return d.UpdateDirectives(func(cur ring.Directives) ring.Directives {
		if _, ok := cur.Lookup(key); !ok {
			return cur
		}
		return cur.Without(key)
	})
}

// UpdateDirectives applies mutate to the current directive table and, if
// the returned table's version differs, installs the next view carrying
// it. Updates are serialized under the installation lock, so concurrent
// callers each observe the latest table and versions are strictly
// monotonic. mutate must return either its argument unchanged (no
// install) or a derived table with a larger version; it must not call
// back into the directory.
func (d *Directory) UpdateDirectives(mutate func(ring.Directives) ring.Directives) View {
	d.installMu.Lock()
	defer d.installMu.Unlock()

	d.mu.Lock()
	next := mutate(d.view.Directives.Clone())
	if next.Version == d.view.Directives.Version {
		cur := d.view.clone()
		d.mu.Unlock()
		return cur
	}
	nv := d.view.clone()
	nv.ID = d.view.ID + 1
	nv.Directives = next
	d.view = nv

	ls := make([]Listener, 0, len(d.listeners))
	for _, l := range d.listeners {
		ls = append(ls, l)
	}
	installed := nv.clone()
	d.mu.Unlock()

	for _, l := range ls {
		l(installed)
	}
	return installed
}

// SyncDirectives adopts a remote directive table if it is strictly newer
// than the local one, installing the next view carrying it (same member
// set). It is the propagation half of placement flips for deployments
// where every process owns a private Directory: the primary that
// executes a migration flips its own directory, then broadcasts the new
// table to its peers, and the rebalance coordinator re-broadcasts every
// scan as anti-entropy — a node that missed the flip converges within
// one scan interval. Version-ordered adoption is last-writer-wins: the
// single rebalance coordinator serializes migrations, so competing
// tables with the same version only arise from concurrent hand-driven
// `dso-cli migrate` calls against partitioned primaries. The bool
// reports whether the table was adopted.
func (d *Directory) SyncDirectives(remote ring.Directives) (View, bool) {
	adopted := false
	v := d.UpdateDirectives(func(cur ring.Directives) ring.Directives {
		if remote.Version <= cur.Version {
			return cur
		}
		adopted = true
		return remote.Clone()
	})
	return v, adopted
}

// unchangedLocked reports whether the mutated member set equals the
// current view's.
func unchangedLocked(cur, next map[ring.NodeID]string) bool {
	if len(cur) != len(next) {
		return false
	}
	for n, a := range next {
		if prev, ok := cur[n]; !ok || prev != a {
			return false
		}
	}
	return true
}

// Heartbeat records liveness for node.
func (d *Directory) Heartbeat(node ring.NodeID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.view.Addrs[node]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, node)
	}
	d.heartbeats[node] = time.Now()
	return nil
}

// CheckFailures removes every node whose heartbeat is older than the
// timeout, installing one view per removal. It returns the removed nodes.
// Safe against concurrent Join/Leave/Heartbeat: staleness is re-validated
// under the directory lock at removal time, so a node that heartbeats (or
// leaves and rejoins) between the scan and the removal is spared instead
// of being evicted on stale evidence.
func (d *Directory) CheckFailures() []ring.NodeID {
	d.mu.Lock()
	var stale []ring.NodeID
	now := time.Now()
	for n, last := range d.heartbeats {
		if now.Sub(last) > d.timeout {
			stale = append(stale, n)
		}
	}
	d.mu.Unlock()
	sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })

	var removed []ring.NodeID
	for _, n := range stale {
		evicted := false
		d.change(func(members map[ring.NodeID]string) {
			// d.mu is held here (see change): re-read the heartbeat and
			// only remove a node that is both present and still stale.
			last, tracked := d.heartbeats[n]
			if !tracked || time.Since(last) <= d.timeout {
				return
			}
			if _, ok := members[n]; !ok {
				return
			}
			delete(members, n)
			evicted = true
		})
		if evicted {
			removed = append(removed, n)
		}
	}
	return removed
}

// RunFailureDetector polls CheckFailures every interval until the context
// is cancelled. Call it in a goroutine when heartbeat-based detection is
// wanted (the TCP deployment); tests drive CheckFailures directly.
func (d *Directory) RunFailureDetector(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			d.CheckFailures()
		}
	}
}
