package membership

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"crucial/internal/ring"
)

func TestJoinInstallsViews(t *testing.T) {
	d := NewDirectory(time.Second)
	v1 := d.Join("a", "addr-a")
	if v1.ID != 1 || len(v1.Members) != 1 {
		t.Fatalf("first view = %+v", v1)
	}
	v2 := d.Join("b", "addr-b")
	if v2.ID != 2 || len(v2.Members) != 2 {
		t.Fatalf("second view = %+v", v2)
	}
	if v2.Addrs["b"] != "addr-b" {
		t.Fatalf("address lost: %+v", v2.Addrs)
	}
}

func TestMembersSorted(t *testing.T) {
	d := NewDirectory(time.Second)
	d.Join("c", "3")
	d.Join("a", "1")
	v := d.Join("b", "2")
	want := []ring.NodeID{"a", "b", "c"}
	for i, m := range v.Members {
		if m != want[i] {
			t.Fatalf("members = %v", v.Members)
		}
	}
}

func TestLeaveAndCrash(t *testing.T) {
	d := NewDirectory(time.Second)
	d.Join("a", "1")
	d.Join("b", "2")
	v := d.Leave("a")
	if v.Contains("a") || !v.Contains("b") {
		t.Fatalf("view after leave = %+v", v)
	}
	v = d.Crash("b")
	if len(v.Members) != 0 {
		t.Fatalf("view after crash = %+v", v)
	}
}

func TestSubscribeGetsCurrentThenUpdates(t *testing.T) {
	d := NewDirectory(time.Second)
	d.Join("a", "1")

	var mu sync.Mutex
	var got []uint64
	cancel := d.Subscribe(func(v View) {
		mu.Lock()
		got = append(got, v.ID)
		mu.Unlock()
	})
	defer cancel()

	d.Join("b", "2")
	d.Leave("a")

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("listener saw views %v, want [1 2 3]", got)
	}
}

func TestCancelStopsNotifications(t *testing.T) {
	d := NewDirectory(time.Second)
	var count int
	cancel := d.Subscribe(func(View) { count++ })
	cancel()
	d.Join("a", "1")
	if count != 1 { // only the bootstrap call
		t.Fatalf("listener called %d times after cancel", count)
	}
}

func TestViewsStrictlyOrderedUnderConcurrency(t *testing.T) {
	d := NewDirectory(time.Second)
	var mu sync.Mutex
	var seen []uint64
	cancel := d.Subscribe(func(v View) {
		mu.Lock()
		seen = append(seen, v.ID)
		mu.Unlock()
	})
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d.Join(ring.NodeID(rune('a'+i)), "x")
		}(i)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(seen); i++ {
		if seen[i] != seen[i-1]+1 {
			t.Fatalf("views out of order: %v", seen)
		}
	}
	if len(seen) != 11 {
		t.Fatalf("saw %d views, want 11", len(seen))
	}
}

func TestHeartbeatUnknownNode(t *testing.T) {
	d := NewDirectory(time.Second)
	if err := d.Heartbeat("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("want ErrUnknownNode, got %v", err)
	}
}

func TestFailureDetection(t *testing.T) {
	d := NewDirectory(30 * time.Millisecond)
	d.Join("a", "1")
	d.Join("b", "2")

	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := d.Heartbeat("a"); err != nil {
			t.Fatal(err)
		}
		removed := d.CheckFailures()
		if len(removed) > 0 {
			if removed[0] != "b" || len(removed) != 1 {
				t.Fatalf("removed %v, want [b]", removed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stale node never removed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	v := d.View()
	if v.Contains("b") || !v.Contains("a") {
		t.Fatalf("view after detection = %+v", v)
	}
}

func TestCheckFailuresNoStale(t *testing.T) {
	d := NewDirectory(time.Hour)
	d.Join("a", "1")
	if removed := d.CheckFailures(); len(removed) != 0 {
		t.Fatalf("removed %v with fresh heartbeats", removed)
	}
}

func TestViewCloneIsolation(t *testing.T) {
	d := NewDirectory(time.Second)
	d.Join("a", "1")
	v := d.View()
	v.Addrs["evil"] = "x"
	v.Members[0] = "evil"
	v2 := d.View()
	if v2.Contains("evil") {
		t.Fatal("View() exposed internal members slice")
	}
	if _, ok := v2.Addrs["evil"]; ok {
		t.Fatal("View() exposed internal addr map")
	}
}

func TestViewRing(t *testing.T) {
	d := NewDirectory(time.Second)
	d.Join("a", "1")
	v := d.Join("b", "2")
	r := v.Ring()
	if r.Size() != 2 {
		t.Fatalf("ring size %d", r.Size())
	}
	owner, ok := r.Owner("some-key")
	if !ok || (owner != "a" && owner != "b") {
		t.Fatalf("owner = %v, %v", owner, ok)
	}
}

func TestRejoinUpdatesAddress(t *testing.T) {
	d := NewDirectory(time.Second)
	d.Join("a", "old")
	v := d.Join("a", "new")
	if v.Addrs["a"] != "new" {
		t.Fatalf("address not updated: %+v", v.Addrs)
	}
	if len(v.Members) != 1 {
		t.Fatalf("duplicate member: %v", v.Members)
	}
}

func TestCrashUnknownNodeNoOp(t *testing.T) {
	d := NewDirectory(time.Second)
	before := d.Join("a", "1")
	var calls int
	cancel := d.Subscribe(func(View) { calls++ })
	defer cancel()
	v := d.Crash("ghost")
	if v.ID != before.ID || !v.Contains("a") {
		t.Fatalf("crash of unknown node installed view %+v", v)
	}
	if calls != 1 { // bootstrap only — no spurious view notification
		t.Fatalf("listener called %d times", calls)
	}
}

func TestRejoinSameAddressNoOp(t *testing.T) {
	d := NewDirectory(time.Second)
	v1 := d.Join("a", "1")
	v2 := d.Join("a", "1")
	if v2.ID != v1.ID {
		t.Fatalf("redundant join bumped view %d -> %d", v1.ID, v2.ID)
	}
	// A changed address is a real change and must install a view.
	if v3 := d.Join("a", "2"); v3.ID != v1.ID+1 {
		t.Fatalf("address change did not install a view: %+v", v3)
	}
}

// TestRunFailureDetectorRemovesSilentNode covers the background ticker
// path: the detector must evict a node that stops heartbeating while a
// heartbeating one survives, and must stop when the context is cancelled.
func TestRunFailureDetectorRemovesSilentNode(t *testing.T) {
	d := NewDirectory(20 * time.Millisecond)
	d.Join("alive", "1")
	d.Join("silent", "2")

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		d.RunFailureDetector(ctx, 5*time.Millisecond)
	}()

	deadline := time.Now().Add(2 * time.Second)
	for d.View().Contains("silent") {
		if time.Now().After(deadline) {
			cancel()
			t.Fatal("failure detector never removed the silent node")
		}
		if err := d.Heartbeat("alive"); err != nil {
			cancel()
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !d.View().Contains("alive") {
		t.Fatal("heartbeating node was evicted")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("detector did not stop on context cancellation")
	}
}

// TestCheckFailuresConcurrentWithMembershipChurn races the failure
// detector against joins, leaves and heartbeats. A node that keeps
// heartbeating must never be evicted — staleness is re-validated under
// the directory lock at removal time — and the directory must stay
// internally consistent throughout (run with -race).
func TestCheckFailuresConcurrentWithMembershipChurn(t *testing.T) {
	d := NewDirectory(5 * time.Millisecond)
	d.Join("steady", "s")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // steady heartbeats
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = d.Heartbeat("steady")
				time.Sleep(time.Millisecond)
			}
		}
	}()
	go func() { // churn: join/leave a rotating cast
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				id := ring.NodeID(rune('a' + i%5))
				d.Join(id, "x")
				time.Sleep(time.Millisecond)
				d.Leave(id)
			}
		}
	}()
	go func() { // aggressive detector
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, n := range d.CheckFailures() {
					if n == "steady" {
						t.Error("heartbeating node evicted by the failure detector")
					}
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()

	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	if !d.View().Contains("steady") {
		t.Fatal("steady node missing from the final view")
	}
}

// Fence must be a pure function of the member set — equal for any two
// views with the same members (even across independently-numbered
// directories) and different when membership differs.
func TestViewFence(t *testing.T) {
	a := View{ID: 1, Members: []ring.NodeID{"n1", "n2", "n3"}}
	b := View{ID: 42, Members: []ring.NodeID{"n1", "n2", "n3"}}
	if a.Fence() != b.Fence() {
		t.Fatal("same members, different fences")
	}
	c := View{ID: 1, Members: []ring.NodeID{"n1", "n2"}}
	if a.Fence() == c.Fence() {
		t.Fatal("different members, same fence")
	}
	// Concatenation ambiguity: {"n1", "n2n3"} vs {"n1n2", "n3"}.
	d := View{Members: []ring.NodeID{"n1", "n2n3"}}
	e := View{Members: []ring.NodeID{"n1n2", "n3"}}
	if d.Fence() == e.Fence() {
		t.Fatal("member separator does not disambiguate concatenations")
	}
}
