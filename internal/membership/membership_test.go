package membership

import (
	"errors"
	"sync"
	"testing"
	"time"

	"crucial/internal/ring"
)

func TestJoinInstallsViews(t *testing.T) {
	d := NewDirectory(time.Second)
	v1 := d.Join("a", "addr-a")
	if v1.ID != 1 || len(v1.Members) != 1 {
		t.Fatalf("first view = %+v", v1)
	}
	v2 := d.Join("b", "addr-b")
	if v2.ID != 2 || len(v2.Members) != 2 {
		t.Fatalf("second view = %+v", v2)
	}
	if v2.Addrs["b"] != "addr-b" {
		t.Fatalf("address lost: %+v", v2.Addrs)
	}
}

func TestMembersSorted(t *testing.T) {
	d := NewDirectory(time.Second)
	d.Join("c", "3")
	d.Join("a", "1")
	v := d.Join("b", "2")
	want := []ring.NodeID{"a", "b", "c"}
	for i, m := range v.Members {
		if m != want[i] {
			t.Fatalf("members = %v", v.Members)
		}
	}
}

func TestLeaveAndCrash(t *testing.T) {
	d := NewDirectory(time.Second)
	d.Join("a", "1")
	d.Join("b", "2")
	v := d.Leave("a")
	if v.Contains("a") || !v.Contains("b") {
		t.Fatalf("view after leave = %+v", v)
	}
	v = d.Crash("b")
	if len(v.Members) != 0 {
		t.Fatalf("view after crash = %+v", v)
	}
}

func TestSubscribeGetsCurrentThenUpdates(t *testing.T) {
	d := NewDirectory(time.Second)
	d.Join("a", "1")

	var mu sync.Mutex
	var got []uint64
	cancel := d.Subscribe(func(v View) {
		mu.Lock()
		got = append(got, v.ID)
		mu.Unlock()
	})
	defer cancel()

	d.Join("b", "2")
	d.Leave("a")

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("listener saw views %v, want [1 2 3]", got)
	}
}

func TestCancelStopsNotifications(t *testing.T) {
	d := NewDirectory(time.Second)
	var count int
	cancel := d.Subscribe(func(View) { count++ })
	cancel()
	d.Join("a", "1")
	if count != 1 { // only the bootstrap call
		t.Fatalf("listener called %d times after cancel", count)
	}
}

func TestViewsStrictlyOrderedUnderConcurrency(t *testing.T) {
	d := NewDirectory(time.Second)
	var mu sync.Mutex
	var seen []uint64
	cancel := d.Subscribe(func(v View) {
		mu.Lock()
		seen = append(seen, v.ID)
		mu.Unlock()
	})
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d.Join(ring.NodeID(rune('a'+i)), "x")
		}(i)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(seen); i++ {
		if seen[i] != seen[i-1]+1 {
			t.Fatalf("views out of order: %v", seen)
		}
	}
	if len(seen) != 11 {
		t.Fatalf("saw %d views, want 11", len(seen))
	}
}

func TestHeartbeatUnknownNode(t *testing.T) {
	d := NewDirectory(time.Second)
	if err := d.Heartbeat("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("want ErrUnknownNode, got %v", err)
	}
}

func TestFailureDetection(t *testing.T) {
	d := NewDirectory(30 * time.Millisecond)
	d.Join("a", "1")
	d.Join("b", "2")

	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := d.Heartbeat("a"); err != nil {
			t.Fatal(err)
		}
		removed := d.CheckFailures()
		if len(removed) > 0 {
			if removed[0] != "b" || len(removed) != 1 {
				t.Fatalf("removed %v, want [b]", removed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stale node never removed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	v := d.View()
	if v.Contains("b") || !v.Contains("a") {
		t.Fatalf("view after detection = %+v", v)
	}
}

func TestCheckFailuresNoStale(t *testing.T) {
	d := NewDirectory(time.Hour)
	d.Join("a", "1")
	if removed := d.CheckFailures(); len(removed) != 0 {
		t.Fatalf("removed %v with fresh heartbeats", removed)
	}
}

func TestViewCloneIsolation(t *testing.T) {
	d := NewDirectory(time.Second)
	d.Join("a", "1")
	v := d.View()
	v.Addrs["evil"] = "x"
	v.Members[0] = "evil"
	v2 := d.View()
	if v2.Contains("evil") {
		t.Fatal("View() exposed internal members slice")
	}
	if _, ok := v2.Addrs["evil"]; ok {
		t.Fatal("View() exposed internal addr map")
	}
}

func TestViewRing(t *testing.T) {
	d := NewDirectory(time.Second)
	d.Join("a", "1")
	v := d.Join("b", "2")
	r := v.Ring()
	if r.Size() != 2 {
		t.Fatalf("ring size %d", r.Size())
	}
	owner, ok := r.Owner("some-key")
	if !ok || (owner != "a" && owner != "b") {
		t.Fatalf("owner = %v, %v", owner, ok)
	}
}

func TestRejoinUpdatesAddress(t *testing.T) {
	d := NewDirectory(time.Second)
	d.Join("a", "old")
	v := d.Join("a", "new")
	if v.Addrs["a"] != "new" {
		t.Fatalf("address not updated: %+v", v.Addrs)
	}
	if len(v.Members) != 1 {
		t.Fatalf("duplicate member: %v", v.Members)
	}
}
