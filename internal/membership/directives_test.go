package membership

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"crucial/internal/ring"
)

func threeNodeDir() *Directory {
	d := NewDirectory(time.Second)
	d.Join("n1", "addr1")
	d.Join("n2", "addr2")
	d.Join("n3", "addr3")
	return d
}

func TestSetDirectiveInstallsNextView(t *testing.T) {
	d := threeNodeDir()
	before := d.View()

	v := d.SetDirective("Obj[hot]", []ring.NodeID{"n2", "n3"})
	if v.ID != before.ID+1 {
		t.Fatalf("view ID %d, want %d", v.ID, before.ID+1)
	}
	if len(v.Members) != len(before.Members) {
		t.Fatal("directive flip changed membership")
	}
	if v.Directives.Version != before.Directives.Version+1 {
		t.Fatalf("directive version %d, want %d", v.Directives.Version, before.Directives.Version+1)
	}
	got, ok := v.Directives.Lookup("Obj[hot]")
	if !ok || len(got) != 2 || got[0] != "n2" || got[1] != "n3" {
		t.Fatalf("directive entry = %v, ok=%v", got, ok)
	}
	if set := v.Place("Obj[hot]", 2); set[0] != "n2" || set[1] != "n3" {
		t.Fatalf("Place ignored the directive: %v", set)
	}
}

// A directive flip must change the view fence (it changes placement like a
// membership change does), and clearing the last directive must restore
// the directive-free fence — views without overrides keep the legacy fence
// so mixed-version replicas still agree.
func TestDirectiveFlipChangesFence(t *testing.T) {
	d := threeNodeDir()
	f0 := d.View().Fence()

	pinned := d.SetDirective("Obj[hot]", []ring.NodeID{"n2"})
	if pinned.Fence() == f0 {
		t.Fatal("directive install left the fence unchanged")
	}
	cleared := d.ClearDirective("Obj[hot]")
	if cleared.Fence() != f0 {
		t.Fatalf("fence %#x after clearing all directives, want the original %#x",
			cleared.Fence(), f0)
	}
}

func TestClearDirectiveAbsentKeyInstallsNothing(t *testing.T) {
	d := threeNodeDir()
	before := d.View()
	v := d.ClearDirective("Obj[never-pinned]")
	if v.ID != before.ID || v.Directives.Version != before.Directives.Version {
		t.Fatalf("no-op clear installed view %d (directives v%d)", v.ID, v.Directives.Version)
	}
}

// Directive-table versions must be strictly monotonic under concurrent
// updates: every install observed by a subscriber carries a larger version
// and a larger view ID than the one before it, and no update is lost.
func TestDirectiveVersionMonotonicUnderConcurrency(t *testing.T) {
	d := threeNodeDir()

	var seenMu sync.Mutex
	var versions, viewIDs []uint64
	cancel := d.Subscribe(func(v View) {
		seenMu.Lock()
		versions = append(versions, v.Directives.Version)
		viewIDs = append(viewIDs, v.ID)
		seenMu.Unlock()
	})
	defer cancel()

	const workers, updates = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("Obj[k%d]", w)
			for i := 0; i < updates; i++ {
				v := d.SetDirective(key, []ring.NodeID{"n2"})
				if v.Directives.Version == 0 {
					t.Errorf("worker %d: install returned version 0", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	seenMu.Lock()
	defer seenMu.Unlock()
	// Subscribe bootstraps with the current view, so one extra delivery
	// precedes the installs.
	if len(versions) != workers*updates+1 {
		t.Fatalf("subscriber saw %d deliveries, want %d", len(versions), workers*updates+1)
	}
	for i := 1; i < len(versions); i++ {
		if versions[i] <= versions[i-1] {
			t.Fatalf("install %d: version %d not greater than predecessor %d",
				i, versions[i], versions[i-1])
		}
		if viewIDs[i] <= viewIDs[i-1] {
			t.Fatalf("install %d: view ID %d not greater than predecessor %d",
				i, viewIDs[i], viewIDs[i-1])
		}
	}
	final := d.View()
	if final.Directives.Len() != workers {
		t.Fatalf("final table has %d entries, want %d", final.Directives.Len(), workers)
	}
	if final.Directives.Version != uint64(workers*updates) {
		t.Fatalf("final version %d, want %d (one bump per install)",
			final.Directives.Version, workers*updates)
	}
}

// Directives survive membership changes: a join or crash re-derives the
// view but carries the override table along.
func TestDirectivesSurviveMembershipChange(t *testing.T) {
	d := threeNodeDir()
	d.SetDirective("Obj[hot]", []ring.NodeID{"n2", "n3"})

	v := d.Join("n4", "addr4")
	got, ok := v.Directives.Lookup("Obj[hot]")
	if !ok || got[0] != "n2" {
		t.Fatalf("directive lost across join: %v, ok=%v", got, ok)
	}
	v = d.Crash("n2")
	if _, ok := v.Directives.Lookup("Obj[hot]"); !ok {
		t.Fatal("directive lost across crash")
	}
	// The dead target is filtered at placement time, not table time.
	set := v.Place("Obj[hot]", 2)
	if set[0] != "n3" {
		t.Fatalf("placement after target crash = %v, want n3 primary", set)
	}
}

// SyncDirectives is the propagation half of placement flips between
// processes with private directories: a strictly newer remote table is
// adopted wholesale (next view, same members), anything else no-ops.
func TestSyncDirectivesAdoptsStrictlyNewer(t *testing.T) {
	d := threeNodeDir()
	before := d.View()

	remote := ring.Directives{}.With("Obj[hot]", []ring.NodeID{"n3", "n1"})
	v, adopted := d.SyncDirectives(remote)
	if !adopted {
		t.Fatal("newer remote table not adopted")
	}
	if v.ID != before.ID+1 {
		t.Fatalf("adoption installed view %d, want %d", v.ID, before.ID+1)
	}
	if set, ok := v.Directives.Lookup("Obj[hot]"); !ok || set[0] != "n3" {
		t.Fatalf("adopted table lookup = %v, ok=%v", set, ok)
	}

	// Same version again: no-op, no new view.
	if _, adopted := d.SyncDirectives(remote); adopted {
		t.Fatal("equal-version table adopted twice")
	}
	// A local flip after adoption keeps versions strictly monotonic.
	v3 := d.SetDirective("Obj[other]", []ring.NodeID{"n2"})
	if v3.Directives.Version <= remote.Version {
		t.Fatalf("local flip version %d not past adopted %d",
			v3.Directives.Version, remote.Version)
	}
	// Older than local: no-op even with different content.
	older := ring.Directives{}.With("Obj[stale]", []ring.NodeID{"n1"})
	if older.Version >= v3.Directives.Version {
		t.Fatalf("test setup: older table version %d not older", older.Version)
	}
	if v4, adopted := d.SyncDirectives(older); adopted || v4.ID != v3.ID {
		t.Fatalf("older table adopted (adopted=%v view=%d)", adopted, v4.ID)
	}
}
