package durability

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"crucial/internal/core"
	"crucial/internal/ring"
	"crucial/internal/telemetry"
)

// Checkpoint layout under one node's namespace:
//
//	snap/<node>/ep-<epoch>/obj-<i>   one snapshot blob per object
//	snap/<node>/ep-<epoch>/manifest  the epoch's manifest (CAS-created)
//	snap/<node>/latest               pointer to the newest epoch
//
// The manifest is written last, with PutIfAbsent: an epoch exists only
// once its manifest does, a half-written checkpoint (crash mid-pass) is
// invisible, and two recovering instances of one node identity cannot
// both claim the same epoch. The latest pointer is a plain Put — it is an
// optimization over LIST (whose eventual consistency could hide a fresh
// manifest); LoadLatest validates it and falls back to a listing scan.

// ErrEpochClaimed reports a manifest CAS loss: some other writer already
// owns the epoch. The snapshotter retries with a higher epoch.
var ErrEpochClaimed = errors.New("durability: checkpoint epoch already claimed")

func snapPrefix(node string) string { return "snap/" + node + "/" }

func epochPrefix(node string, epoch uint64) string {
	return fmt.Sprintf("%sep-%016d/", snapPrefix(node), epoch)
}

func manifestKey(node string, epoch uint64) string {
	return epochPrefix(node, epoch) + "manifest"
}

func objectKey(node string, epoch uint64, i int) string {
	return fmt.Sprintf("%sobj-%06d", epochPrefix(node, epoch), i)
}

func latestKey(node string) string { return snapPrefix(node) + "latest" }

// Manifest indexes one checkpoint epoch: which snapshot blobs belong to
// it, where replay resumes, and the control-plane state that must survive
// a full-cluster restart — the placement directive table (hot-key pins)
// and the membership the node checkpointed under.
type Manifest struct {
	Node  string
	Epoch uint64
	// CutSeg is the WAL position of this checkpoint: every record in
	// segments below it is reflected in the epoch's snapshots; recovery
	// replays segments >= CutSeg.
	CutSeg uint64
	// Objects lists the epoch's snapshot blob keys, in write order.
	Objects []string
	// Directives is the placement directive table in force at the
	// checkpoint; recovery re-installs it (version-checked) so hot-key
	// pins survive a cold start.
	Directives ring.Directives
	// Members and ViewID record the membership the checkpoint was taken
	// under (informational: recovery logs them; the restart re-forms the
	// cluster through the directory as usual).
	Members []ring.NodeID
	ViewID  uint64
}

// SaveCheckpoint writes one epoch: every snapshot blob, then the manifest
// via compare-and-set, then the latest pointer. blobs[i] lands under
// man.Objects[i] (filled in here). Counters for the checkpoint component
// of the storage bill land in reg (nil-safe).
func SaveCheckpoint(ctx context.Context, store Storage, man Manifest, blobs [][]byte, reg *telemetry.Registry) error {
	cPuts := reg.Counter(telemetry.MetSnapshotPuts)
	cBytes := reg.Counter(telemetry.MetSnapshotBytes)
	man.Objects = make([]string, len(blobs))
	for i, blob := range blobs {
		key := objectKey(man.Node, man.Epoch, i)
		if err := store.Put(ctx, key, blob); err != nil {
			return fmt.Errorf("durability: checkpoint blob %s: %w", key, err)
		}
		man.Objects[i] = key
		cPuts.Inc()
		cBytes.Add(uint64(len(blob)))
	}
	body, err := core.EncodeValue(man)
	if err != nil {
		return fmt.Errorf("durability: encode manifest: %w", err)
	}
	created, err := store.PutIfAbsent(ctx, manifestKey(man.Node, man.Epoch), body)
	if err != nil {
		return fmt.Errorf("durability: write manifest: %w", err)
	}
	if !created {
		return fmt.Errorf("%w: %s epoch %d", ErrEpochClaimed, man.Node, man.Epoch)
	}
	cPuts.Inc()
	cBytes.Add(uint64(len(body)))
	_ = store.Put(ctx, latestKey(man.Node), []byte(strconv.FormatUint(man.Epoch, 10)))
	return nil
}

// loadEpoch fetches and decodes one epoch's manifest plus all its blobs.
func loadEpoch(ctx context.Context, store Storage, node string, epoch uint64) (Manifest, [][]byte, error) {
	body, err := store.Get(ctx, manifestKey(node, epoch))
	if err != nil {
		return Manifest{}, nil, err
	}
	var man Manifest
	if err := core.DecodeValue(body, &man); err != nil {
		return Manifest{}, nil, err
	}
	blobs := make([][]byte, len(man.Objects))
	for i, key := range man.Objects {
		if blobs[i], err = store.Get(ctx, key); err != nil {
			return Manifest{}, nil, fmt.Errorf("durability: blob %s of epoch %d: %w", key, epoch, err)
		}
	}
	return man, blobs, nil
}

// LoadLatest finds the newest fully-loadable checkpoint for node: the
// latest pointer's epoch first, then — pointer missing, stale or its
// epoch damaged — every manifest a listing surfaces, newest first. found
// is false when no checkpoint exists (first boot): recovery starts empty
// and replays the whole log.
func LoadLatest(ctx context.Context, store Storage, node string) (man Manifest, blobs [][]byte, found bool, err error) {
	var candidates []uint64
	seen := make(map[uint64]bool)
	if body, gerr := store.Get(ctx, latestKey(node)); gerr == nil {
		if ep, perr := strconv.ParseUint(strings.TrimSpace(string(body)), 10, 64); perr == nil {
			candidates = append(candidates, ep)
			seen[ep] = true
		}
	}
	keys, lerr := store.List(ctx, snapPrefix(node)+"ep-")
	if lerr == nil {
		for _, k := range keys {
			if !strings.HasSuffix(k, "/manifest") {
				continue
			}
			rest := strings.TrimPrefix(k, snapPrefix(node)+"ep-")
			ep, perr := strconv.ParseUint(strings.TrimSuffix(rest, "/manifest"), 10, 64)
			if perr == nil && !seen[ep] {
				candidates = append(candidates, ep)
				seen[ep] = true
			}
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] > candidates[j] })
	var lastErr error
	for _, ep := range candidates {
		m, bs, eerr := loadEpoch(ctx, store, node, ep)
		if eerr == nil {
			return m, bs, true, nil
		}
		lastErr = eerr
	}
	// Candidates existed but none loaded (stale pointer, GC'd or damaged
	// epoch): report the damage alongside found=false so the caller can
	// log it; recovery proceeds from whatever the log still holds.
	return Manifest{}, nil, false, lastErr
}

// ReadLog loads every readable record from segment fromSeg onward, in
// delivery order. Segments are probed by dense sequence number (GET has
// read-after-write consistency where LIST does not); if fromSeg itself is
// gone — a manifest pointing at a truncated segment — the listing locates
// the earliest surviving segment at or above it and reading resumes
// there, which is safe because replay is version-gated: anything the
// missing segments held is either in the checkpoint or unacknowledged.
// torn counts segments truncated at damage (torn tail or CRC mismatch);
// per the log's prefix consistency, reading stops at the first damaged
// segment. maxSeg is the highest segment observed (damaged or not), so
// the reopened log writes strictly after history.
func ReadLog(ctx context.Context, store Storage, node string, fromSeg uint64) (recs []Record, maxSeg uint64, torn int, err error) {
	if fromSeg == 0 {
		fromSeg = 1
	}
	maxSeg = fromSeg - 1
	seg := fromSeg
	if _, gerr := store.Get(ctx, segmentKey(node, seg)); gerr != nil {
		// The first expected segment is missing: either the log is empty
		// past the checkpoint, or truncation outran the manifest. A listing
		// finds the earliest survivor; eventual LIST consistency can only
		// hide the very freshest segments, which the dense probe below
		// reaches anyway once a listed segment anchors it.
		keys, lerr := store.List(ctx, walPrefix(node))
		if lerr != nil {
			return nil, maxSeg, 0, nil
		}
		next := uint64(0)
		for _, k := range keys {
			s, perr := strconv.ParseUint(strings.TrimPrefix(k, walPrefix(node)+"seg-"), 10, 64)
			if perr == nil && s >= fromSeg && (next == 0 || s < next) {
				next = s
			}
		}
		if next == 0 {
			return nil, maxSeg, 0, nil
		}
		seg = next
	}
	for {
		data, gerr := store.Get(ctx, segmentKey(node, seg))
		if gerr != nil {
			return recs, maxSeg, torn, nil
		}
		maxSeg = seg
		segRecs, derr := DecodeSegment(data)
		recs = append(recs, segRecs...)
		if derr != nil {
			// Damage truncates the log here; later segments, if any, are
			// beyond the break and must not be replayed over the gap.
			return recs, maxSeg, torn + 1, nil
		}
		seg++
	}
}

// TruncateSegments deletes every sealed segment below cutSeg — they are
// fully covered by the checkpoint that supplied the cut. Returns how many
// were deleted.
func TruncateSegments(ctx context.Context, store Storage, node string, cutSeg uint64) (int, error) {
	keys, err := store.List(ctx, walPrefix(node))
	if err != nil {
		return 0, err
	}
	deleted := 0
	for _, k := range keys {
		s, perr := strconv.ParseUint(strings.TrimPrefix(k, walPrefix(node)+"seg-"), 10, 64)
		if perr != nil || s >= cutSeg {
			continue
		}
		if derr := store.Delete(ctx, k); derr == nil {
			deleted++
		}
	}
	return deleted, nil
}

// PruneEpochs deletes checkpoint epochs older than keepFrom (manifest
// last, so a partially-pruned epoch is already invisible to LoadLatest's
// manifest scan... the manifest going first would instead orphan blobs).
// The caller keeps at least one epoch before the newest as a fallback.
func PruneEpochs(ctx context.Context, store Storage, node string, keepFrom uint64) error {
	keys, err := store.List(ctx, snapPrefix(node)+"ep-")
	if err != nil {
		return err
	}
	for _, k := range keys {
		rest := strings.TrimPrefix(k, snapPrefix(node)+"ep-")
		slash := strings.IndexByte(rest, '/')
		if slash < 0 {
			continue
		}
		ep, perr := strconv.ParseUint(rest[:slash], 10, 64)
		if perr != nil || ep >= keepFrom {
			continue
		}
		if strings.HasSuffix(k, "/manifest") {
			continue // deleted below, after the epoch's blobs
		}
		_ = store.Delete(ctx, k)
	}
	for _, k := range keys {
		rest := strings.TrimPrefix(k, snapPrefix(node)+"ep-")
		slash := strings.IndexByte(rest, '/')
		if slash < 0 || !strings.HasSuffix(k, "/manifest") {
			continue
		}
		ep, perr := strconv.ParseUint(rest[:slash], 10, 64)
		if perr != nil || ep >= keepFrom {
			continue
		}
		_ = store.Delete(ctx, k)
	}
	return nil
}
