package durability

import (
	"bytes"
	"testing"
)

// FuzzDecodeSegment feeds arbitrary bytes to the segment decoder — the one
// component that parses data straight off cold storage, where a torn flush
// or bit rot produces exactly this kind of input. Invariants: never panic,
// and every record the decoder does accept must re-encode byte-identically
// to the prefix it was decoded from (the codec is canonical, so a decoded
// record that would not round-trip is a parser bug, not damage).
func FuzzDecodeSegment(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeAll(sampleRecords()))
	f.Add(encodeAll(sampleRecords())[:11])
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	long := AppendRecord(nil, Record{Origin: "node-with-a-long-name", Seq: 1 << 60, Version: 1 << 50, Payload: bytes.Repeat([]byte{0xAB}, 300)})
	f.Add(long)
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, _ := DecodeSegment(data)
		var enc []byte
		for _, r := range recs {
			enc = AppendRecord(enc, r)
		}
		if !bytes.HasPrefix(data, enc) {
			t.Fatalf("decoded records do not re-encode to the input prefix:\n in: %x\nout: %x", data, enc)
		}
	})
}
