package durability

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"crucial/internal/telemetry"
)

// Storage is the slice of a cold object store the durability tier needs.
// *s3sim.Store satisfies it; a real deployment would back it with S3.
type Storage interface {
	Put(ctx context.Context, key string, data []byte) error
	PutIfAbsent(ctx context.Context, key string, data []byte) (bool, error)
	Get(ctx context.Context, key string) ([]byte, error)
	List(ctx context.Context, prefix string) ([]string, error)
	Delete(ctx context.Context, key string) error
}

// ErrLogClosed fails commits whose flush the closing node abandoned.
var ErrLogClosed = errors.New("durability: log closed")

// walPrefix is the key namespace of one node's segments.
func walPrefix(node string) string { return "wal/" + node + "/" }

// segmentKey names one segment blob. Sequence numbers are dense and
// zero-padded so lexicographic key order is replay order.
func segmentKey(node string, seq uint64) string {
	return fmt.Sprintf("%sseg-%016d", walPrefix(node), seq)
}

// Commit is the durability ticket of one appended record: Wait blocks
// until the flush covering the record lands in cold storage (or fails).
// The coordinator's ack path waits on its own record's commit — that wait
// is what turns "applied in memory" into "survives a full-cluster crash".
type Commit struct {
	ch chan error
}

// Wait blocks for the record's flush outcome.
func (c *Commit) Wait(ctx context.Context) error {
	select {
	case err := <-c.ch:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

type queuedRecord struct {
	frame []byte
	done  chan error
}

// LogOptions configures OpenLog.
type LogOptions struct {
	Store Storage
	// Node namespaces the segment keys; each server logs under its own
	// prefix so independent recoveries never contend.
	Node string
	// SyncEvery caps records per flush (>= 1); SegmentBytes is the roll
	// threshold. Both arrive pre-normalized from core.DurabilityPolicy.
	SyncEvery    int
	SegmentBytes int
	// StartSeg is the first segment sequence to write: 1 on a fresh
	// store, maxSeg+1 after recovery so restarts never overwrite history.
	StartSeg uint64
	// Metrics and Tracer instrument the flush loop (both nil-safe).
	Metrics *telemetry.Registry
	Tracer  *telemetry.Tracer
}

// Log is one node's segmented write-ahead log. Appends enqueue encoded
// frames; a single flusher goroutine drains the queue in groups of up to
// SyncEvery records, rewriting the open segment blob per flush (object
// stores cannot append) and resolving each record's Commit when its flush
// lands. Group commit emerges naturally: every record that queues while a
// flush is in flight shares the next one.
type Log struct {
	store     Storage
	node      string
	syncEvery int
	segBytes  int
	tracer    *telemetry.Tracer

	cAppends *telemetry.Counter
	cFsyncs  *telemetry.Counter
	cBytes   *telemetry.Counter

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []queuedRecord
	buf    []byte // flushed content of the open segment
	segSeq uint64
	// appendSeq/flushedSeq order appends against flushes so SealSegment
	// can wait for exactly the records that preceded it (no starvation
	// under constant append load).
	appendSeq  uint64
	flushedSeq uint64
	closed     bool
}

// OpenLog starts a log's flusher.
func OpenLog(opts LogOptions) *Log {
	if opts.SyncEvery < 1 {
		opts.SyncEvery = 1
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 10
	}
	if opts.StartSeg == 0 {
		opts.StartSeg = 1
	}
	l := &Log{
		store:     opts.Store,
		node:      opts.Node,
		syncEvery: opts.SyncEvery,
		segBytes:  opts.SegmentBytes,
		tracer:    opts.Tracer,
		cAppends:  opts.Metrics.Counter(telemetry.MetWALAppends),
		cFsyncs:   opts.Metrics.Counter(telemetry.MetWALFsyncs),
		cBytes:    opts.Metrics.Counter(telemetry.MetWALBytes),
		segSeq:    opts.StartSeg,
	}
	l.cond = sync.NewCond(&l.mu)
	go l.flusher()
	return l
}

// Append queues one record and returns its durability ticket. The append
// itself never blocks on storage.
func (l *Log) Append(rec Record) *Commit {
	frame := AppendRecord(nil, rec)
	c := &Commit{ch: make(chan error, 1)}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		c.ch <- ErrLogClosed
		return c
	}
	l.queue = append(l.queue, queuedRecord{frame: frame, done: c.ch})
	l.appendSeq++
	l.cond.Broadcast()
	l.mu.Unlock()
	l.cAppends.Inc()
	return c
}

// flusher is the single writer to cold storage: it groups queued records,
// rewrites the open segment, rolls it past the size threshold and
// resolves the group's commits.
func (l *Log) flusher() {
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.closed {
			l.cond.Wait()
		}
		if l.closed {
			// Abrupt stop: unflushed records are lost exactly as they would
			// be in a crash — none were acked, since acks wait on commits.
			queue := l.queue
			l.queue = nil
			l.mu.Unlock()
			for _, q := range queue {
				q.done <- ErrLogClosed
			}
			return
		}
		take := len(l.queue)
		if take > l.syncEvery {
			take = l.syncEvery
		}
		batch := l.queue[:take:take]
		l.queue = l.queue[take:]
		for _, q := range batch {
			l.buf = append(l.buf, q.frame...)
		}
		seg := l.segSeq
		data := append([]byte(nil), l.buf...)
		l.mu.Unlock()

		err := l.putSegment(seg, data)

		l.mu.Lock()
		l.flushedSeq += uint64(take)
		if err == nil && len(l.buf) >= l.segBytes {
			// Seal: the blob already holds the full content; later appends
			// start the next segment.
			l.segSeq++
			l.buf = nil
		}
		l.cond.Broadcast()
		l.mu.Unlock()
		for _, q := range batch {
			q.done <- err
		}
	}
}

// putSegment writes one segment blob, retrying transient storage faults —
// a flush is the durability tier's fsync, and a single injected 5xx must
// not fail an ack the workload would simply have retried against S3.
func (l *Log) putSegment(seq uint64, data []byte) error {
	ctx, span := l.tracer.Start(context.Background(), telemetry.SpanWALAppend)
	defer span.End()
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 2 * time.Millisecond)
			l.mu.Lock()
			closed := l.closed
			l.mu.Unlock()
			if closed {
				return ErrLogClosed
			}
		}
		if err = l.store.Put(ctx, segmentKey(l.node, seq), data); err == nil {
			l.cFsyncs.Inc()
			l.cBytes.Add(uint64(len(data)))
			return nil
		}
	}
	span.SetAttr(telemetry.AttrError, err.Error())
	return err
}

// SealSegment flushes every record appended before the call and cuts the
// open segment, returning the sequence number the next append will write
// to. The checkpoint protocol snapshots object state only after sealing:
// every record in segments below the returned cut was applied before the
// seal, so the snapshots taken after it cover them and the sealed
// segments can be truncated once the manifest lands.
func (l *Log) SealSegment(ctx context.Context) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	target := l.appendSeq
	for l.flushedSeq < target && !l.closed {
		// Poll via the flusher's broadcast; bail out if the caller's
		// context dies so a wedged store cannot hang the snapshotter.
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		l.cond.Wait()
	}
	if l.closed {
		return 0, ErrLogClosed
	}
	if len(l.buf) > 0 {
		l.segSeq++
		l.buf = nil
	}
	return l.segSeq, nil
}

// Close stops the flusher abruptly; queued records fail with ErrLogClosed.
func (l *Log) Close() {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
}
