package durability

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"crucial/internal/netsim"
	"crucial/internal/storage/s3sim"
	"crucial/internal/telemetry"
)

// testStore builds a zero-latency store with immediate LIST consistency,
// so tests assert WAL logic rather than storage timing.
func testStore() *s3sim.Store {
	return s3sim.New(s3sim.Options{Profile: netsim.Zero(), ListLag: -1})
}

func TestWALAppendFlushCommit(t *testing.T) {
	store := testStore()
	l := OpenLog(LogOptions{Store: store, Node: "n1", SyncEvery: 4})
	defer l.Close()
	ctx := context.Background()
	commits := make([]*Commit, 10)
	for i := range commits {
		commits[i] = l.Append(Record{Origin: "n1", Seq: uint64(i + 1), Version: uint64(i + 1), Payload: []byte{byte(i)}})
	}
	for i, c := range commits {
		if err := c.Wait(ctx); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	recs, maxSeg, torn, err := ReadLog(ctx, store, "n1", 0)
	if err != nil || torn != 0 {
		t.Fatalf("ReadLog = torn %d, err %v", torn, err)
	}
	if len(recs) != 10 || maxSeg != 1 {
		t.Fatalf("ReadLog = %d records, maxSeg %d; want 10, 1", len(recs), maxSeg)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d out of order: seq %d", i, r.Seq)
		}
	}
}

func TestWALGroupCommitFewerFsyncsThanAppends(t *testing.T) {
	reg := telemetry.NewRegistry()
	l := OpenLog(LogOptions{Store: testStore(), Node: "n1", SyncEvery: 64, Metrics: reg})
	defer l.Close()
	ctx := context.Background()
	const n = 200
	commits := make([]*Commit, n)
	for i := range commits {
		commits[i] = l.Append(Record{Origin: "n1", Seq: uint64(i + 1), Payload: []byte("x")})
	}
	for _, c := range commits {
		if err := c.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	appends := snap.Counters[telemetry.MetWALAppends]
	fsyncs := snap.Counters[telemetry.MetWALFsyncs]
	if appends != n {
		t.Fatalf("wal.appends = %d, want %d", appends, n)
	}
	if fsyncs == 0 || fsyncs >= n {
		t.Fatalf("wal.fsyncs = %d: group commit should batch %d appends into fewer flushes", fsyncs, n)
	}
}

func TestWALSealRollsAndReadSpansSegments(t *testing.T) {
	store := testStore()
	// Tiny segments: every ~2 records roll.
	l := OpenLog(LogOptions{Store: store, Node: "n1", SyncEvery: 1, SegmentBytes: 48})
	defer l.Close()
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if err := l.Append(Record{Origin: "n1", Seq: uint64(i + 1), Payload: []byte("payload")}).Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	cut, err := l.SealSegment(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cut < 2 {
		t.Fatalf("cut = %d: 8 records against 48-byte segments must have rolled", cut)
	}
	// Records appended after the seal land in segments >= cut.
	if err := l.Append(Record{Origin: "n1", Seq: 99, Payload: []byte("post-seal")}).Wait(ctx); err != nil {
		t.Fatal(err)
	}
	recs, _, torn, err := ReadLog(ctx, store, "n1", 0)
	if err != nil || torn != 0 {
		t.Fatalf("ReadLog: torn %d, err %v", torn, err)
	}
	if len(recs) != 9 {
		t.Fatalf("ReadLog = %d records across segments, want 9", len(recs))
	}
	for i := 0; i < 8; i++ {
		if recs[i].Seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d — cross-segment order broken", i, recs[i].Seq)
		}
	}
	recs, _, _, err = ReadLog(ctx, store, "n1", cut)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 99 {
		t.Fatalf("ReadLog from cut %d = %d records (want just the post-seal one)", cut, len(recs))
	}
}

func TestWALFlushRetriesTransientFaults(t *testing.T) {
	store := testStore()
	l := OpenLog(LogOptions{Store: store, Node: "n1", SyncEvery: 8})
	defer l.Close()
	ctx := context.Background()
	// Every PUT fails: the commit must surface an error, not hang or ack.
	store.SetFaults(s3sim.Faults{PutErrRate: 1.0})
	c := l.Append(Record{Origin: "n1", Seq: 1, Payload: []byte("a")})
	if err := c.Wait(ctx); !errors.Is(err, s3sim.ErrInjected) {
		t.Fatalf("commit under total PUT failure = %v, want ErrInjected", err)
	}
	// Heal the store: the failed frame stays in the open segment buffer and
	// ships with the next flush — nothing acknowledged is ever dropped, and
	// nothing unacknowledged is lost either if the node stays up.
	store.SetFaults(s3sim.Faults{})
	if err := l.Append(Record{Origin: "n1", Seq: 2, Payload: []byte("b")}).Wait(ctx); err != nil {
		t.Fatal(err)
	}
	recs, _, _, err := ReadLog(ctx, store, "n1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("ReadLog = %d records, want both (failed frame re-shipped)", len(recs))
	}
}

func TestWALClosed(t *testing.T) {
	l := OpenLog(LogOptions{Store: testStore(), Node: "n1", SyncEvery: 4})
	l.Close()
	ctx := context.Background()
	if err := l.Append(Record{Origin: "n1", Seq: 1}).Wait(ctx); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("append after close = %v, want ErrLogClosed", err)
	}
	if _, err := l.SealSegment(ctx); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("seal after close = %v, want ErrLogClosed", err)
	}
}

func TestWALConcurrentAppends(t *testing.T) {
	store := testStore()
	l := OpenLog(LogOptions{Store: store, Node: "n1", SyncEvery: 16, SegmentBytes: 256})
	defer l.Close()
	ctx := context.Background()
	const workers, per = 8, 25
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				rec := Record{Origin: fmt.Sprintf("w%d", w), Seq: uint64(i + 1), Payload: []byte("p")}
				if err := l.Append(rec).Wait(ctx); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	recs, _, torn, err := ReadLog(ctx, store, "n1", 0)
	if err != nil || torn != 0 {
		t.Fatalf("ReadLog: torn %d, err %v", torn, err)
	}
	if len(recs) != workers*per {
		t.Fatalf("ReadLog = %d records, want %d", len(recs), workers*per)
	}
}

func TestWALSealUnderLoadDoesNotHang(t *testing.T) {
	l := OpenLog(LogOptions{Store: testStore(), Node: "n1", SyncEvery: 4})
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	stop := make(chan struct{})
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				l.Append(Record{Origin: "n1", Seq: uint64(i), Payload: []byte("x")})
			}
		}
	}()
	// SealSegment waits only for appends that preceded the call; constant
	// new load must not starve it past the context deadline.
	if _, err := l.SealSegment(ctx); err != nil {
		t.Fatalf("SealSegment under append load: %v", err)
	}
	close(stop)
}
