package durability

import (
	"bytes"
	"errors"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{Origin: "dso-01", Seq: 1, Version: 1, Payload: []byte{1, 'a', 'b'}},
		{Origin: "dso-02", Seq: 9, Version: 2, Payload: nil},
		{Origin: "", Seq: 0, Version: 0, Payload: []byte("genesis payload with some length")},
	}
}

func encodeAll(recs []Record) []byte {
	var b []byte
	for _, r := range recs {
		b = AppendRecord(b, r)
	}
	return b
}

func TestRecordRoundTrip(t *testing.T) {
	want := sampleRecords()
	got, err := DecodeSegment(encodeAll(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Origin != want[i].Origin || got[i].Seq != want[i].Seq ||
			got[i].Version != want[i].Version || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestDecodeEmptySegment(t *testing.T) {
	recs, err := DecodeSegment(nil)
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty segment = (%d records, %v), want (0, nil)", len(recs), err)
	}
}

func TestDecodeTornTail(t *testing.T) {
	seg := encodeAll(sampleRecords())
	for cut := 1; cut < 8; cut++ {
		// Chop partway into the LAST frame: a crash mid-flush.
		torn := seg[:len(seg)-cut]
		recs, err := DecodeSegment(torn)
		if !errors.Is(err, ErrTornTail) && !errors.Is(err, ErrBadChecksum) {
			t.Fatalf("cut %d: err = %v, want torn tail or checksum", cut, err)
		}
		if len(recs) != 2 {
			t.Fatalf("cut %d: %d records survive, want the 2 intact ones", cut, len(recs))
		}
	}
}

func TestDecodeCorruptCRCMidSegment(t *testing.T) {
	recs := sampleRecords()
	seg := encodeAll(recs)
	// Flip a byte inside the SECOND record's body.
	first := encodeAll(recs[:1])
	seg[len(first)+recordHeaderSize] ^= 0xFF
	got, err := DecodeSegment(seg)
	if !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
	if len(got) != 1 {
		t.Fatalf("%d records before the damage, want 1 — corruption must truncate, not skip", len(got))
	}
	if got[0].Origin != recs[0].Origin {
		t.Fatalf("surviving record = %+v", got[0])
	}
}

func TestDecodeRecordShortHeader(t *testing.T) {
	if _, _, err := DecodeRecord([]byte{1, 2, 3}); !errors.Is(err, ErrTornTail) {
		t.Fatalf("short header err = %v, want ErrTornTail", err)
	}
}
