// Package durability implements the cold-storage durability tier
// (DESIGN.md §5h): a per-node segmented, checksummed write-ahead log of
// committed SMR deliveries, periodic object-state checkpoints with a
// manifest, and the recovery reader that reconstructs a node's state from
// the latest valid checkpoint plus a replay of the surviving log. The
// package is generic over the payloads it stores — the server layer owns
// what a record or snapshot blob means — and talks to cold storage through
// the minimal Storage interface, which internal/storage/s3sim satisfies.
package durability

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record is one committed delivery in the log. Origin and Seq are the
// delivery's total-order message identity (totalorder.MsgID), recorded so
// replay tooling can correlate log entries with traces; Version is the
// object copy's apply version immediately after the delivery — the replay
// gate: recovery re-applies a record only onto a copy whose version is
// strictly lower, which makes replay idempotent against the checkpoint
// (a record the snapshot already covers is skipped) and against duplicate
// records (a retry that re-delivered through a later round). Payload is
// the raw SMR payload exactly as delivered: genesis/batch prefix plus the
// encoded invocation(s) with their (ClientID, Seq) dedup stamps.
type Record struct {
	Origin  string
	Seq     uint64
	Version uint64
	Payload []byte
}

// Framing: every record is [len u32][crc u32][body], little-endian, where
// crc is CRC-32 (IEEE) over body. The body packs
// uvarint(len(Origin)) Origin uvarint(Seq) uvarint(Version) Payload,
// with Payload running to the end of the body. A reader that hits a short
// frame reports a torn tail (the flush carrying it never completed); a
// CRC mismatch reports corruption. Both truncate the log at the damage.
const recordHeaderSize = 8

// Errors reported by DecodeSegment at the first damaged record.
var (
	// ErrTornTail marks an incomplete final frame: the segment ends
	// mid-record, the signature of a crash between append and flush
	// completion (or a truncated blob).
	ErrTornTail = errors.New("durability: torn record at segment tail")
	// ErrBadChecksum marks a frame whose body fails its CRC.
	ErrBadChecksum = errors.New("durability: record checksum mismatch")
)

// AppendRecord appends rec's frame to dst and returns the extended slice.
func AppendRecord(dst []byte, rec Record) []byte {
	body := make([]byte, 0, 2*binary.MaxVarintLen64+len(rec.Origin)+len(rec.Payload)+binary.MaxVarintLen64)
	body = binary.AppendUvarint(body, uint64(len(rec.Origin)))
	body = append(body, rec.Origin...)
	body = binary.AppendUvarint(body, rec.Seq)
	body = binary.AppendUvarint(body, rec.Version)
	body = append(body, rec.Payload...)

	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// decodeBody unpacks a checksum-verified body into a Record.
func decodeBody(body []byte) (Record, error) {
	var rec Record
	n, w := binary.Uvarint(body)
	if w <= 0 || n > uint64(len(body)-w) {
		return rec, fmt.Errorf("durability: bad origin length")
	}
	rec.Origin = string(body[w : w+int(n)])
	rest := body[w+int(n):]
	seq, w := binary.Uvarint(rest)
	if w <= 0 {
		return rec, fmt.Errorf("durability: bad seq varint")
	}
	rest = rest[w:]
	ver, w := binary.Uvarint(rest)
	if w <= 0 {
		return rec, fmt.Errorf("durability: bad version varint")
	}
	rest = rest[w:]
	rec.Seq, rec.Version = seq, ver
	rec.Payload = append([]byte(nil), rest...)
	return rec, nil
}

// DecodeRecord decodes the first frame of b, returning the record and the
// frame's total size. ErrTornTail means b ends mid-frame; ErrBadChecksum
// means the frame is complete but its body fails the CRC.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < recordHeaderSize {
		return Record{}, 0, ErrTornTail
	}
	bodyLen := binary.LittleEndian.Uint32(b[0:4])
	sum := binary.LittleEndian.Uint32(b[4:8])
	if uint64(bodyLen) > uint64(len(b)-recordHeaderSize) {
		return Record{}, 0, ErrTornTail
	}
	body := b[recordHeaderSize : recordHeaderSize+int(bodyLen)]
	if crc32.ChecksumIEEE(body) != sum {
		return Record{}, 0, ErrBadChecksum
	}
	rec, err := decodeBody(body)
	if err != nil {
		// A body that checksums but does not parse is corruption all the
		// same; report it under the checksum error class so readers
		// truncate at it uniformly.
		return Record{}, 0, fmt.Errorf("%w: %v", ErrBadChecksum, err)
	}
	return rec, recordHeaderSize + int(bodyLen), nil
}

// DecodeSegment decodes every intact record of a segment in order. An
// empty segment decodes to zero records and no error. At the first
// damaged frame it stops and returns the records before it together with
// ErrTornTail or ErrBadChecksum — the WAL is prefix-consistent (flushes
// are sequential), so everything after the damage is unreachable history
// and recovery truncates there.
func DecodeSegment(b []byte) ([]Record, error) {
	var recs []Record
	for len(b) > 0 {
		rec, n, err := DecodeRecord(b)
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
		b = b[n:]
	}
	return recs, nil
}
