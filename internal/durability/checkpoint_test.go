package durability

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"crucial/internal/ring"
)

func testManifest(epoch, cut uint64) Manifest {
	return Manifest{
		Node:   "n1",
		Epoch:  epoch,
		CutSeg: cut,
		Directives: ring.Directives{
			Version: 3,
			Entries: map[string][]ring.NodeID{"Counter/hot": {"n2", "n1"}},
		},
		Members: []ring.NodeID{"n1", "n2"},
		ViewID:  7,
	}
}

func TestSaveLoadCheckpoint(t *testing.T) {
	store := testStore()
	ctx := context.Background()
	blobs := [][]byte{[]byte("obj-a"), []byte("obj-b")}
	if err := SaveCheckpoint(ctx, store, testManifest(1, 4), blobs, nil); err != nil {
		t.Fatal(err)
	}
	man, got, found, err := LoadLatest(ctx, store, "n1")
	if err != nil || !found {
		t.Fatalf("LoadLatest = found %v, err %v", found, err)
	}
	if man.Epoch != 1 || man.CutSeg != 4 || man.ViewID != 7 {
		t.Fatalf("manifest = %+v", man)
	}
	if len(got) != 2 || !bytes.Equal(got[0], blobs[0]) || !bytes.Equal(got[1], blobs[1]) {
		t.Fatalf("blobs = %q", got)
	}
	// The directive table — hot-key pins — must survive the round trip.
	targets, ok := man.Directives.Lookup("Counter/hot")
	if !ok || man.Directives.Version != 3 || len(targets) != 2 || targets[0] != "n2" {
		t.Fatalf("directives lost in checkpoint: %+v", man.Directives)
	}
}

func TestLoadLatestFirstBoot(t *testing.T) {
	_, _, found, err := LoadLatest(context.Background(), testStore(), "n1")
	if found || err != nil {
		t.Fatalf("fresh store LoadLatest = (found %v, err %v), want (false, nil)", found, err)
	}
}

func TestSaveCheckpointEpochCAS(t *testing.T) {
	store := testStore()
	ctx := context.Background()
	if err := SaveCheckpoint(ctx, store, testManifest(2, 1), nil, nil); err != nil {
		t.Fatal(err)
	}
	err := SaveCheckpoint(ctx, store, testManifest(2, 9), nil, nil)
	if !errors.Is(err, ErrEpochClaimed) {
		t.Fatalf("second save of epoch 2 = %v, want ErrEpochClaimed", err)
	}
	// The loser must not have clobbered the winner.
	man, _, _, err := LoadLatest(ctx, store, "n1")
	if err != nil || man.CutSeg != 1 {
		t.Fatalf("winner manifest = %+v, err %v", man, err)
	}
}

func TestLoadLatestFallsBackPastDamagedEpoch(t *testing.T) {
	store := testStore()
	ctx := context.Background()
	if err := SaveCheckpoint(ctx, store, testManifest(1, 2), [][]byte{[]byte("old")}, nil); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(ctx, store, testManifest(2, 5), [][]byte{[]byte("new")}, nil); err != nil {
		t.Fatal(err)
	}
	// Damage epoch 2: its snapshot blob vanishes (partial GC, bit rot).
	// The latest pointer still says 2; LoadLatest must fall back to 1.
	if err := store.Delete(ctx, objectKey("n1", 2, 0)); err != nil {
		t.Fatal(err)
	}
	man, blobs, found, err := LoadLatest(ctx, store, "n1")
	if err != nil || !found {
		t.Fatalf("LoadLatest = found %v, err %v", found, err)
	}
	if man.Epoch != 1 || string(blobs[0]) != "old" {
		t.Fatalf("fell back to epoch %d blob %q, want epoch 1 %q", man.Epoch, blobs[0], "old")
	}
}

func TestLoadLatestAllEpochsDamaged(t *testing.T) {
	store := testStore()
	ctx := context.Background()
	if err := SaveCheckpoint(ctx, store, testManifest(1, 2), [][]byte{[]byte("x")}, nil); err != nil {
		t.Fatal(err)
	}
	if err := store.Delete(ctx, objectKey("n1", 1, 0)); err != nil {
		t.Fatal(err)
	}
	_, _, found, err := LoadLatest(ctx, store, "n1")
	if found {
		t.Fatal("damaged-only checkpoints must not report found")
	}
	if err == nil {
		t.Fatal("the damage must be reported so the caller can log it")
	}
}

func TestReadLogManifestPointsAtTruncatedSegment(t *testing.T) {
	store := testStore()
	ctx := context.Background()
	// Segments 3 and 4 survive; 1 and 2 were truncated by a later
	// checkpoint whose manifest never landed (crash between truncate and
	// manifest CAS is impossible by ordering, but an OLD manifest with
	// CutSeg=1 plus segments GC'd by a newer, lost epoch is this shape).
	put := func(seq uint64, recs []Record) {
		if err := store.Put(ctx, segmentKey("n1", seq), encodeAll(recs)); err != nil {
			t.Fatal(err)
		}
	}
	put(3, []Record{{Origin: "n1", Seq: 30, Version: 30}})
	put(4, []Record{{Origin: "n1", Seq: 40, Version: 40}})
	recs, maxSeg, torn, err := ReadLog(ctx, store, "n1", 1)
	if err != nil || torn != 0 {
		t.Fatalf("ReadLog: torn %d, err %v", torn, err)
	}
	if len(recs) != 2 || recs[0].Seq != 30 || recs[1].Seq != 40 {
		t.Fatalf("ReadLog past the gap = %+v, want segments 3 and 4", recs)
	}
	if maxSeg != 4 {
		t.Fatalf("maxSeg = %d, want 4", maxSeg)
	}
}

func TestReadLogStopsAtDamagedSegment(t *testing.T) {
	store := testStore()
	ctx := context.Background()
	good := encodeAll([]Record{{Origin: "n1", Seq: 1, Version: 1}, {Origin: "n1", Seq: 2, Version: 2}})
	if err := store.Put(ctx, segmentKey("n1", 1), good); err != nil {
		t.Fatal(err)
	}
	// Segment 2: one good record, then a torn frame.
	torn := encodeAll([]Record{{Origin: "n1", Seq: 3, Version: 3}})
	torn = append(torn, AppendRecord(nil, Record{Origin: "n1", Seq: 4, Version: 4})[:5]...)
	if err := store.Put(ctx, segmentKey("n1", 2), torn); err != nil {
		t.Fatal(err)
	}
	// Segment 3 exists but lies beyond the break: it must NOT be replayed
	// over the gap.
	if err := store.Put(ctx, segmentKey("n1", 3), encodeAll([]Record{{Origin: "n1", Seq: 9, Version: 9}})); err != nil {
		t.Fatal(err)
	}
	recs, _, tornN, err := ReadLog(ctx, store, "n1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if tornN != 1 {
		t.Fatalf("torn = %d, want 1", tornN)
	}
	if len(recs) != 3 || recs[2].Seq != 3 {
		t.Fatalf("ReadLog = %+v, want records 1-3 and a stop at the tear", recs)
	}
}

func TestReadLogEmptySegment(t *testing.T) {
	store := testStore()
	ctx := context.Background()
	if err := store.Put(ctx, segmentKey("n1", 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ctx, segmentKey("n1", 2), encodeAll([]Record{{Origin: "n1", Seq: 5, Version: 5}})); err != nil {
		t.Fatal(err)
	}
	recs, maxSeg, torn, err := ReadLog(ctx, store, "n1", 1)
	if err != nil || torn != 0 {
		t.Fatalf("ReadLog: torn %d, err %v", torn, err)
	}
	if len(recs) != 1 || maxSeg != 2 {
		t.Fatalf("an empty segment must read as zero records, not damage: %d recs, maxSeg %d", len(recs), maxSeg)
	}
}

func TestTruncateSegments(t *testing.T) {
	store := testStore()
	ctx := context.Background()
	for seq := uint64(1); seq <= 4; seq++ {
		if err := store.Put(ctx, segmentKey("n1", seq), encodeAll([]Record{{Origin: "n1", Seq: seq}})); err != nil {
			t.Fatal(err)
		}
	}
	deleted, err := TruncateSegments(ctx, store, "n1", 3)
	if err != nil || deleted != 2 {
		t.Fatalf("TruncateSegments = (%d, %v), want (2, nil)", deleted, err)
	}
	recs, _, _, err := ReadLog(ctx, store, "n1", 3)
	if err != nil || len(recs) != 2 {
		t.Fatalf("post-truncate ReadLog = %d records, err %v", len(recs), err)
	}
}

func TestPruneEpochs(t *testing.T) {
	store := testStore()
	ctx := context.Background()
	for ep := uint64(1); ep <= 3; ep++ {
		if err := SaveCheckpoint(ctx, store, testManifest(ep, ep), [][]byte{[]byte("b")}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := PruneEpochs(ctx, store, "n1", 2); err != nil {
		t.Fatal(err)
	}
	// Epoch 1 gone, epochs 2 and 3 intact.
	if _, _, err := loadEpoch(ctx, store, "n1", 1); err == nil {
		t.Fatal("epoch 1 survived the prune")
	}
	for ep := uint64(2); ep <= 3; ep++ {
		if _, _, err := loadEpoch(ctx, store, "n1", ep); err != nil {
			t.Fatalf("epoch %d damaged by prune: %v", ep, err)
		}
	}
	man, _, found, err := LoadLatest(ctx, store, "n1")
	if err != nil || !found || man.Epoch != 3 {
		t.Fatalf("LoadLatest after prune = (%+v, %v, %v)", man, found, err)
	}
}
