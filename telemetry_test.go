package crucial

import (
	"testing"
	"time"

	"crucial/internal/telemetry"
)

// telemWorker is the instrumented-path workload: bump a counter, then
// optionally meet the others at a barrier (which blocks server side).
type telemWorker struct {
	Counter *AtomicLong
	Barrier *CyclicBarrier
	Pause   time.Duration
}

func (w *telemWorker) Run(tc *TC) error {
	ctx := tc.Context()
	if w.Pause > 0 {
		time.Sleep(w.Pause)
	}
	if _, err := w.Counter.IncrementAndGet(ctx); err != nil {
		return err
	}
	if w.Barrier != nil {
		if _, err := w.Barrier.Await(ctx); err != nil {
			return err
		}
	}
	return nil
}

// TestSpanPropagationColdWarm runs one cold and one warm invocation and
// checks that each produces a single trace spanning all four layers, with
// correct parent links and cold/warm annotation.
func TestSpanPropagationColdWarm(t *testing.T) {
	Register(&telemWorker{})
	tel := telemetry.New()
	rt := testRuntime(t, Options{Telemetry: tel})

	for i := 0; i < 2; i++ {
		th := rt.NewThread(&telemWorker{Counter: NewAtomicLong("tspan/counter")})
		th.Start()
		if err := th.Join(); err != nil {
			t.Fatal(err)
		}
	}

	spans := rt.Trace()
	byName := make(map[string][]telemetry.SpanData)
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	threadSpans := byName[telemetry.SpanThread]
	faasSpans := byName[telemetry.SpanFaaSInvoke]
	if len(threadSpans) != 2 || len(faasSpans) != 2 {
		t.Fatalf("got %d thread and %d faas.invoke spans, want 2 and 2",
			len(threadSpans), len(faasSpans))
	}

	// Each trace must contain the full chain thread -> faas.invoke ->
	// client.invoke -> server.invoke with parent links intact.
	for _, root := range threadSpans {
		if root.ParentID != 0 {
			t.Fatalf("thread span has parent %d, want root", root.ParentID)
		}
		var faas, cli, srv *telemetry.SpanData
		for i := range spans {
			s := &spans[i]
			if s.TraceID != root.TraceID {
				continue
			}
			switch s.Name {
			case telemetry.SpanFaaSInvoke:
				faas = s
			case telemetry.SpanClientInvoke:
				cli = s
			case telemetry.SpanServerInvoke:
				srv = s
			}
		}
		if faas == nil || cli == nil || srv == nil {
			t.Fatalf("trace %x missing layers: faas=%v cli=%v srv=%v",
				root.TraceID, faas != nil, cli != nil, srv != nil)
		}
		if faas.ParentID != root.SpanID {
			t.Fatalf("faas.invoke parent = %d, want thread span %d", faas.ParentID, root.SpanID)
		}
		if cli.ParentID != faas.SpanID {
			t.Fatalf("client.invoke parent = %d, want faas.invoke %d", cli.ParentID, faas.SpanID)
		}
		if srv.ParentID != cli.SpanID {
			t.Fatalf("server.invoke parent = %d, want client.invoke %d (cross-RPC propagation)",
				srv.ParentID, cli.SpanID)
		}
		if srv.Attrs[telemetry.AttrMethod] != "IncrementAndGet" {
			t.Fatalf("server.invoke method = %q", srv.Attrs[telemetry.AttrMethod])
		}
	}

	// First invocation cold, second warm (the container is reused).
	colds := map[string]int{}
	for _, f := range faasSpans {
		colds[f.Attrs[telemetry.AttrCold]]++
	}
	if colds["true"] != 1 || colds["false"] != 1 {
		t.Fatalf("cold annotations = %v, want one cold and one warm", colds)
	}
	if c := tel.Snapshot().Counters[telemetry.MetFaaSColdStarts]; c != 1 {
		t.Fatalf("faas.cold_starts = %d, want 1", c)
	}
}

// TestMonitorWaitAttribution blocks one thread on a barrier and checks the
// wait shows up in the server.monitor_wait histogram and is attributed to
// the Await invocation's span (so slow-barrier and slow-method are
// distinguishable in reports).
func TestMonitorWaitAttribution(t *testing.T) {
	Register(&telemWorker{})
	tel := telemetry.New()
	rt := testRuntime(t, Options{Telemetry: tel})

	const parties = 2
	rs := make([]Runnable, parties)
	for i := range rs {
		w := &telemWorker{
			Counter: NewAtomicLong("tmon/counter"),
			Barrier: NewCyclicBarrier("tmon/barrier", parties),
		}
		if i == parties-1 {
			// The last thread arrives late, so the others measurably block.
			w.Pause = 30 * time.Millisecond
		}
		rs[i] = w
	}
	if err := JoinAll(rt.SpawnAll(rs...)); err != nil {
		t.Fatal(err)
	}

	h, ok := rt.Metrics().Histograms[telemetry.HistServerMonitorWait]
	if !ok || h.Count == 0 {
		t.Fatalf("server.monitor_wait empty: %+v", h)
	}
	if h.Max < 10*time.Millisecond {
		t.Fatalf("server.monitor_wait max = %v, want >= 10ms of real blocking", h.Max)
	}
	var attributed bool
	for _, s := range rt.Trace() {
		if s.Name == telemetry.SpanServerInvoke &&
			s.Attrs[telemetry.AttrMethod] == "Await" &&
			s.Timings[telemetry.TimingMonitor] >= 10*time.Millisecond {
			attributed = true
		}
	}
	if !attributed {
		t.Fatal("no server.invoke span for Await carries a monitor_wait timing")
	}
}

// TestTelemetryDisabled checks the nil-telemetry runtime degrades cleanly.
func TestTelemetryDisabled(t *testing.T) {
	Register(&telemWorker{})
	rt := testRuntime(t, Options{})
	th := rt.NewThread(&telemWorker{Counter: NewAtomicLong("toff/counter")})
	th.Start()
	if err := th.Join(); err != nil {
		t.Fatal(err)
	}
	if rt.Telemetry() != nil {
		t.Fatal("Telemetry() non-nil without Options.Telemetry")
	}
	if !rt.Metrics().Empty() {
		t.Fatalf("Metrics() = %+v, want empty", rt.Metrics())
	}
	if len(rt.Trace()) != 0 {
		t.Fatalf("Trace() returned %d spans, want none", len(rt.Trace()))
	}
}

// benchInvoke measures one master-client DSO read through the full client
// and server path, with and without telemetry, guarding the claim that
// disabled instrumentation costs nothing measurable.
func benchInvoke(b *testing.B, tel *telemetry.Telemetry) {
	rt, err := NewLocalRuntime(Options{Telemetry: tel})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = rt.Close() }()
	a := NewAtomicLong("bench/counter")
	rt.Bind(a)
	if _, err := a.IncrementAndGet(bg()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Get(bg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInvokeTelemetryOff(b *testing.B) { benchInvoke(b, nil) }
func BenchmarkInvokeTelemetryOn(b *testing.B)  { benchInvoke(b, telemetry.New()) }
