package crucial

import (
	"testing"
	"time"
)

// The read path through the public API: a runtime with leases + client
// caching serves read-mostly traffic coherently.
func TestRuntimeClientCache(t *testing.T) {
	rt := testRuntime(t, Options{LeaseTTL: time.Second, ClientCache: true})
	ctr := NewAtomicLong("api-cached")
	rt.Bind(ctr)
	ctx := bg()

	if err := ctr.Set(ctx, 5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		v, err := ctr.Get(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if v != 5 {
			t.Fatalf("Get = %d, want 5", v)
		}
	}
	// A write through the same proxy must invalidate the cached copy.
	if _, err := ctr.AddAndGet(ctx, 2); err != nil {
		t.Fatal(err)
	}
	v, err := ctr.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("Get after write = %d, want 7", v)
	}
}
