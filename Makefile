GO ?= go

.PHONY: build test vet fmt race bench bench-rpc cover verify chaos chaos-short

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails (listing the offenders) when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the telemetry-overhead spot check plus the RPC hot-path
# microbenchmark suite (which refreshes BENCH_rpc.json).
bench: bench-rpc
	$(GO) test -run '^$$' -bench 'BenchmarkInvokeTelemetry' -benchtime 2000x .

# bench-rpc runs the wire-codec and RPC hot-path microbenchmarks and
# commits their aggregate (min ns/op over 5 runs, allocs/op) to
# BENCH_rpc.json via cmd/benchfmt. The *Gob benchmarks are the retained
# pre-codec encoder, kept as the before/after baseline.
bench-rpc:
	$(GO) test -run '^$$' -bench 'BenchmarkEncodeInvocation|BenchmarkDecodeInvocation|BenchmarkInvocationRoundTrip|BenchmarkResponseRoundTrip' \
		-benchmem -count=5 ./internal/core/ > /tmp/bench_rpc_raw.txt
	$(GO) test -run '^$$' -bench 'BenchmarkRPCEcho' -benchmem -count=5 \
		./internal/rpc/ >> /tmp/bench_rpc_raw.txt
	$(GO) test -run '^$$' -bench 'BenchmarkInvokeObject' -benchmem -count=5 \
		./internal/client/ >> /tmp/bench_rpc_raw.txt
	$(GO) run ./cmd/benchfmt < /tmp/bench_rpc_raw.txt > BENCH_rpc.json
	@echo "wrote BENCH_rpc.json"

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# chaos runs the nemesis linearizability suite under the race detector:
# five seeded fault schedules (partitions, drop/delay, duplication,
# crash/restart, combined) plus the at-most-once blackhole regressions.
# Schedules are deterministic in their seeds, so a failure reproduces.
chaos:
	$(GO) test -race -count=1 -run 'TestNemesis|TestAtMostOnce' ./internal/chaos/

# chaos-short is the verify-gate slice of the nemesis: one partition
# schedule and one crash/restart schedule, shrunk by -short.
chaos-short:
	$(GO) test -race -count=1 -short -run 'TestNemesisPartition|TestNemesisCrashRestart' ./internal/chaos/

# verify is the tier-1 gate (see ROADMAP.md): everything must be gofmt
# clean, compile, vet clean, pass under the race detector, and survive
# the short nemesis slice.
verify: fmt vet build race chaos-short
