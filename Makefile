GO ?= go

.PHONY: build test vet fmt race bench bench-rpc bench-cache bench-write bench-reshard bench-wal bench-statefun wal-fuzz cover verify chaos chaos-short doclint alloc-guard

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails (listing the offenders) when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the telemetry-overhead spot check plus the RPC hot-path
# microbenchmark suite (which refreshes BENCH_rpc.json).
bench: bench-rpc bench-cache bench-write bench-reshard
	$(GO) test -run '^$$' -bench 'BenchmarkInvokeTelemetry' -benchtime 2000x .

# bench-rpc runs the wire-codec and RPC hot-path microbenchmarks and
# commits their aggregate (min ns/op over 5 runs, allocs/op) to
# BENCH_rpc.json via cmd/benchfmt. The *Gob benchmarks are the retained
# pre-codec encoder, kept as the before/after baseline.
bench-rpc:
	$(GO) test -run '^$$' -bench 'BenchmarkEncodeInvocation|BenchmarkDecodeInvocation|BenchmarkInvocationRoundTrip|BenchmarkResponseRoundTrip' \
		-benchmem -count=5 ./internal/core/ > /tmp/bench_rpc_raw.txt
	$(GO) test -run '^$$' -bench 'BenchmarkRPCEcho' -benchmem -count=5 \
		./internal/rpc/ >> /tmp/bench_rpc_raw.txt
	$(GO) test -run '^$$' -bench 'BenchmarkInvokeObject' -benchmem -count=5 \
		./internal/client/ >> /tmp/bench_rpc_raw.txt
	$(GO) test -run '^$$' -bench 'BenchmarkTrackerObserve' -benchmem -count=5 \
		./internal/telemetry/ >> /tmp/bench_rpc_raw.txt
	$(GO) run ./cmd/benchfmt < /tmp/bench_rpc_raw.txt > BENCH_rpc.json
	@echo "wrote BENCH_rpc.json"

# bench-cache runs the read-path microbenchmarks (the same hot-object Get
# with the lease cache off and on) and commits their aggregate to
# BENCH_cache.json via cmd/benchfmt. The throughput-level view of the same
# story is `crucial-bench -exp cache` (EXPERIMENTS.md).
bench-cache:
	$(GO) test -run '^$$' -bench 'BenchmarkReadUncached|BenchmarkReadCached' \
		-benchmem -count=5 ./internal/cluster/ > /tmp/bench_cache_raw.txt
	$(GO) run ./cmd/benchfmt < /tmp/bench_cache_raw.txt > BENCH_cache.json
	@echo "wrote BENCH_cache.json"

# bench-write runs the write-path group-commit benchmarks (parallel
# hot-counter increments with batching off and on, plus a batch-size and
# linger ablation) and commits their aggregate to BENCH_write.json via
# cmd/benchfmt. DESIGN.md §5e explains the protocol being measured.
bench-write:
	$(GO) test -run '^$$' -bench 'BenchmarkWrite' \
		-benchmem -count=5 ./internal/cluster/ > /tmp/bench_write_raw.txt
	$(GO) run ./cmd/benchfmt < /tmp/bench_write_raw.txt > BENCH_write.json
	@echo "wrote BENCH_write.json"

# bench-reshard runs the elastic-resharding benchmarks (a zipfian
# hot-spot workload under the ServiceTime capacity gate: static
# placement vs sharded counters vs sharded + rebalancer) and commits
# their aggregate to BENCH_reshard.json via cmd/benchfmt. Fixed
# iteration counts keep go test from re-probing b.N — each probe would
# pay a full cluster start plus, for Elastic, the rebalancer
# convergence warmup. Acceptance: Elastic ≥ 3x the ops/s of Static
# (DESIGN.md §5g, EXPERIMENTS.md).
bench-reshard:
	$(GO) test -run '^$$' -bench 'BenchmarkReshard' -benchtime 1500x \
		-benchmem -count=5 ./internal/cluster/ > /tmp/bench_reshard_raw.txt
	$(GO) run ./cmd/benchfmt < /tmp/bench_reshard_raw.txt > BENCH_reshard.json
	@echo "wrote BENCH_reshard.json"

# bench-wal runs the durability-overhead benchmarks (the bench-write
# contended hot-counter workload with the durability tier off,
# snapshot-only, group-fsynced every 64 records, and fsynced per op) and
# commits their aggregate to BENCH_wal.json via cmd/benchfmt. Acceptance:
# GroupFsync within ~2x of Off (DESIGN.md §5h, EXPERIMENTS.md).
bench-wal:
	$(GO) test -run '^$$' -bench 'BenchmarkWAL' \
		-benchmem -count=5 ./internal/cluster/ > /tmp/bench_wal_raw.txt
	$(GO) run ./cmd/benchfmt < /tmp/bench_wal_raw.txt > BENCH_wal.json
	@echo "wrote BENCH_wal.json"

# bench-statefun runs the stateful-functions sustained-throughput
# benchmarks (one op = one message pushed, dispatched, handled, and
# atomically committed; per-instance drain probes close each run) across
# 100 and 1000 instances with the durability tier off and on, and
# commits their aggregate to BENCH_statefun.json via cmd/benchfmt. Fixed
# iteration counts keep go test from re-probing b.N — each probe pays a
# full runtime boot. The table-level view is `crucial-bench -exp
# statefun` (DESIGN.md §5i, EXPERIMENTS.md).
bench-statefun:
	$(GO) test -run '^$$' -bench 'BenchmarkStatefun' -benchtime 3000x \
		-benchmem -count=3 . > /tmp/bench_statefun_raw.txt
	$(GO) run ./cmd/benchfmt < /tmp/bench_statefun_raw.txt > BENCH_statefun.json
	@echo "wrote BENCH_statefun.json"

# wal-fuzz fuzzes the WAL segment decoder — the one parser fed raw bytes
# off cold storage, where torn flushes and bit rot are the expected input.
# Invariants: no panics, and accepted records re-encode byte-identically.
wal-fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeSegment' -fuzztime 30s ./internal/durability/

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# chaos runs the nemesis suite under the race detector: ten seeded
# linearizability schedules (partitions, drop/delay, duplication,
# crash/restart, combined, with the lease cache on, with write batching
# on, with live migration mid-partition), the kill-everything
# full-cluster recovery audit, the stateful-functions kill-everything
# delivery audit, and the at-most-once blackhole regressions. Schedules
# are deterministic in their seeds, so a failure reproduces.
chaos:
	$(GO) test -race -count=1 -run 'TestNemesis|TestAtMostOnce' ./internal/chaos/

# chaos-short is the verify-gate slice of the nemesis: one partition
# schedule, one crash/restart schedule, the cache-on partition schedule
# (with its invalidation-blackhole window), the group-commit partition
# schedule (write batching on), the live-migration partition schedule
# (hot object migrated mid-partition), the kill-everything schedule
# (full-cluster crash recovered from cold storage), and the stateful-
# functions kill-everything schedule (exactly-once-visible delivery
# audited across the same full-cluster crash), shrunk by -short.
chaos-short:
	$(GO) test -race -count=1 -short -run 'TestNemesisPartition|TestNemesisCrashRestart|TestNemesisCachePartition|TestNemesisWriteBatchPartition|TestNemesisMigrationPartition|TestNemesisKillEverything|TestNemesisStatefunKillEverything' ./internal/chaos/

# doclint fails when an exported identifier in the public API (the root
# package) has no doc comment.
doclint:
	$(GO) run ./cmd/doclint .

# alloc-guard enforces the hot-path allocation budgets: the invocation
# round trip must hold PR 3's 8 allocs/op, and the per-object tracker's
# warm-path Observe must stay allocation-free (the telemetry-overhead
# guard for the always-on accounting plane). These tests self-skip under
# -race, so they need this dedicated non-race invocation to actually
# bite; the measured numbers live in BENCH_rpc.json.
alloc-guard:
	$(GO) test -count=1 -run 'AllocBudget|TrackerObserveAllocs' \
		./internal/core/ ./internal/telemetry/

# verify is the tier-1 gate (see ROADMAP.md): everything must be gofmt
# clean, compile, vet clean, doc-complete on the public API, hold the
# hot-path allocation budgets, pass under the race detector, and survive
# the short nemesis slice (which includes one cache-on schedule).
verify: fmt vet build doclint alloc-guard race chaos-short
