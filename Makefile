GO ?= go

.PHONY: build test vet fmt race bench cover verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails (listing the offenders) when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkInvokeTelemetry' -benchtime 2000x .

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# verify is the tier-1 gate (see ROADMAP.md): everything must be gofmt
# clean, compile, vet clean, and pass under the race detector.
verify: fmt vet build race
