GO ?= go

.PHONY: build test vet race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkInvokeTelemetry' -benchtime 2000x .

# verify is the tier-1 gate (see ROADMAP.md): everything must compile, vet
# clean, and pass under the race detector.
verify: vet build race
