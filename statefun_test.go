package crucial

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// counterState is the private state of the test counter function.
type counterState struct {
	Count int64
}

// waitFor polls cond until it returns true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestStatefunCounterFaaS drives the default execution path: handlers
// run inside FaaS containers via the statefun runner function. Messages
// accumulate in durable per-instance state; a Call reads it back through
// a reply future.
func TestStatefunCounterFaaS(t *testing.T) {
	rt := testRuntime(t, Options{DSONodes: 2, RF: 2})
	fn, err := rt.DeployStatefulFunction("counter", func(c *FnCtx, m FnMsg) error {
		var st counterState
		if _, err := c.State(&st); err != nil {
			return err
		}
		switch m.Name() {
		case "add":
			var n int64
			if err := m.Body(&n); err != nil {
				return err
			}
			st.Count += n
			if err := c.SetState(st); err != nil {
				return err
			}
		case "get":
			return c.Reply(st.Count)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := fn.Send(bg(), "c1", "add", int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	var got int64
	// The mailbox is FIFO, so by the time "get" runs every "add" has
	// been applied.
	if err := fn.Call(bg(), "c1", "get", nil, &got); err != nil {
		t.Fatal(err)
	}
	if got != 55 {
		t.Fatalf("count = %d, want 55", got)
	}
	var st counterState
	ok, err := fn.State(bg(), "c1", &st)
	if err != nil || !ok || st.Count != 55 {
		t.Fatalf("state read: ok=%v err=%v st=%+v", ok, err, st)
	}
	status, err := fn.Status(bg(), "c1")
	if err != nil {
		t.Fatal(err)
	}
	if status.Processed != 11 || status.Dups != 0 {
		t.Fatalf("status: %+v", status)
	}
}

// TestStatefunSendToSelf runs a countdown chain where each handler run
// re-sends to its own instance; the chain must terminate with every hop
// applied exactly once.
func TestStatefunSendToSelf(t *testing.T) {
	rt := testRuntime(t, Options{Statefun: StatefunOptions{InProcess: true}})
	fn, err := rt.DeployStatefulFunction("countdown", func(c *FnCtx, m FnMsg) error {
		var n int64
		if err := m.Body(&n); err != nil {
			return err
		}
		var st counterState
		if _, err := c.State(&st); err != nil {
			return err
		}
		st.Count++
		if err := c.SetState(st); err != nil {
			return err
		}
		if n > 1 {
			return c.Send(c.Self(), "tick", n-1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.Send(bg(), "x", "tick", int64(25)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "countdown chain", func() bool {
		var st counterState
		ok, err := fn.State(bg(), "x", &st)
		return err == nil && ok && st.Count == 25
	})
	status, err := fn.Status(bg(), "x")
	if err != nil {
		t.Fatal(err)
	}
	if status.Processed != 25 || status.QueueLen != 0 || status.OutboxLen != 0 {
		t.Fatalf("status after chain: %+v", status)
	}
}

// TestStatefunHandlerPanicRedelivery proves the at-least-once/
// exactly-once-visible contract around a crashing handler: the panicking
// runs stage effects (a state write AND a send) that must never become
// visible, the message is redelivered until a run succeeds, and the
// successful run's effects apply exactly once.
func TestStatefunHandlerPanicRedelivery(t *testing.T) {
	rt := testRuntime(t, Options{Statefun: StatefunOptions{InProcess: true}})
	var attempts atomic.Int64
	var sinkCount atomic.Int64
	sink, err := rt.DeployStatefulFunction("sink", func(c *FnCtx, m FnMsg) error {
		sinkCount.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := rt.DeployStatefulFunction("flaky", func(c *FnCtx, m FnMsg) error {
		n := attempts.Add(1)
		// Effects staged BEFORE the panic must be discarded with the run.
		if err := c.SetState(counterState{Count: 1000 + n}); err != nil {
			return err
		}
		if err := c.Send(FnAddress{FnType: "sink", ID: "s"}, "poke", n); err != nil {
			return err
		}
		if n < 3 {
			panic(fmt.Sprintf("induced failure %d", n))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.Send(bg(), "f1", "go", int64(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "message to survive two panics", func() bool {
		st, err := fn.Status(bg(), "f1")
		return err == nil && st.Processed == 1 && st.OutboxLen == 0
	})
	waitFor(t, "the surviving run's send", func() bool { return sinkCount.Load() == 1 })
	if got := attempts.Load(); got != 3 {
		t.Fatalf("handler ran %d times, want 3", got)
	}
	var st counterState
	if ok, err := fn.State(bg(), "f1", &st); err != nil || !ok {
		t.Fatalf("state: ok=%v err=%v", ok, err)
	}
	// Only the third (successful) run's state may be visible.
	if st.Count != 1003 {
		t.Fatalf("state = %+v, want Count=1003", st)
	}
	// Exactly one send must have reached the sink despite three runs.
	time.Sleep(50 * time.Millisecond)
	if got := sinkCount.Load(); got != 1 {
		t.Fatalf("sink saw %d pokes, want 1", got)
	}
	sinkStatus, err := sink.Status(bg(), "s")
	if err != nil || sinkStatus.Processed != 1 {
		t.Fatalf("sink status: %+v err=%v", sinkStatus, err)
	}
}

// TestStatefunMailboxOverflow fills a tiny mailbox behind a blocked
// handler and checks that sends bounce with ErrMailboxFull, nothing is
// lost or double-applied, and the instance drains once unblocked.
func TestStatefunMailboxOverflow(t *testing.T) {
	rt := testRuntime(t, Options{Statefun: StatefunOptions{InProcess: true, MailboxCap: 4}})
	release := make(chan struct{})
	var processed atomic.Int64
	fn, err := rt.DeployStatefulFunction("slow", func(c *FnCtx, m FnMsg) error {
		select {
		case <-release:
		case <-c.Context().Done():
			return c.Context().Err()
		}
		processed.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The first message blocks in the handler but stays queued (it only
	// pops at commit), so capacity 4 admits exactly 4 sends.
	var accepted, bounced int
	for i := 0; i < 8; i++ {
		err := fn.Send(bg(), "s1", "work", int64(i))
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrMailboxFull):
			bounced++
		default:
			t.Fatal(err)
		}
	}
	if accepted != 4 || bounced != 4 {
		t.Fatalf("accepted=%d bounced=%d, want 4/4", accepted, bounced)
	}
	close(release)
	waitFor(t, "drain after release", func() bool { return processed.Load() == 4 })
	// Backpressure must be lossless for the caller: bounced messages can
	// be resent and arrive exactly once.
	for i := 0; i < bounced; i++ {
		if err := fn.Send(bg(), "s1", "work", int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "resent messages", func() bool { return processed.Load() == 8 })
	status, err := fn.Status(bg(), "s1")
	if err != nil || status.Processed != 8 || status.Dups != 0 {
		t.Fatalf("status: %+v err=%v", status, err)
	}
	if status.Rejected != 4 {
		t.Fatalf("rejected = %d, want 4", status.Rejected)
	}
}

// TestStatefunIdleGC checks that an instance idle past the TTL is
// retired from the dispatch directory — and that its durable state
// survives retirement and the instance re-activates on the next message.
func TestStatefunIdleGC(t *testing.T) {
	rt := testRuntime(t, Options{Statefun: StatefunOptions{
		InProcess:    true,
		IdleTTL:      80 * time.Millisecond,
		PollInterval: 5 * time.Millisecond,
	}})
	fn, err := rt.DeployStatefulFunction("ephemeral", func(c *FnCtx, m FnMsg) error {
		var st counterState
		if _, err := c.State(&st); err != nil {
			return err
		}
		st.Count++
		return c.SetState(st)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.Send(bg(), "e1", "tick", int64(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first message", func() bool {
		st, err := fn.Status(bg(), "e1")
		return err == nil && st.Processed == 1
	})
	waitFor(t, "idle retirement", func() bool { return rt.statefun().engine.Instances() == 0 })
	// Retirement is directory-only: the mailbox (and its state) is durable.
	var st counterState
	if ok, err := fn.State(bg(), "e1", &st); err != nil || !ok || st.Count != 1 {
		t.Fatalf("state after GC: ok=%v err=%v st=%+v", ok, err, st)
	}
	// The next message re-registers and re-dispatches the instance.
	if err := fn.Send(bg(), "e1", "tick", int64(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "re-activation", func() bool {
		_, err := fn.State(bg(), "e1", &st)
		return err == nil && st.Count == 2
	})
}

// TestStatefunFanOutAcrossInstances checks per-instance isolation: one
// coordinator fans a batch out to many worker instances, each keeping
// its own state, and collects acks back — the canonical scatter/gather.
func TestStatefunFanOutAcrossInstances(t *testing.T) {
	const workers = 20
	rt := testRuntime(t, Options{DSONodes: 2, Statefun: StatefunOptions{InProcess: true}})
	_, err := rt.DeployStatefulFunction("worker", func(c *FnCtx, m FnMsg) error {
		var n int64
		if err := m.Body(&n); err != nil {
			return err
		}
		if err := c.SetState(counterState{Count: n * n}); err != nil {
			return err
		}
		return c.Send(FnAddress{FnType: "boss", ID: "b"}, "done", n)
	})
	if err != nil {
		t.Fatal(err)
	}
	boss, err := rt.DeployStatefulFunction("boss", func(c *FnCtx, m FnMsg) error {
		var st counterState
		if _, err := c.State(&st); err != nil {
			return err
		}
		switch m.Name() {
		case "start":
			for i := 1; i <= workers; i++ {
				if err := c.Send(FnAddress{FnType: "worker", ID: fmt.Sprint(i)}, "job", int64(i)); err != nil {
					return err
				}
			}
		case "done":
			st.Count++
			if err := c.SetState(st); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := boss.Send(bg(), "b", "start", int64(0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "all worker acks", func() bool {
		var st counterState
		ok, err := boss.State(bg(), "b", &st)
		return err == nil && ok && st.Count == workers
	})
	ctx := context.Background()
	for i := 1; i <= workers; i++ {
		var st counterState
		ok, err := statefunWorkerState(ctx, rt, fmt.Sprint(i), &st)
		if err != nil || !ok || st.Count != int64(i*i) {
			t.Fatalf("worker %d state: ok=%v err=%v st=%+v", i, ok, err, st)
		}
	}
}

// statefunWorkerState reads a worker instance's state without holding a
// StatefulFunction handle for it.
func statefunWorkerState(ctx context.Context, rt *Runtime, id string, v any) (bool, error) {
	f := &StatefulFunction{rt: rt, fnType: "worker"}
	return f.State(ctx, id, v)
}
