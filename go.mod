module crucial

go 1.24
