package crucial

import (
	"context"
	"errors"
	"testing"
	"time"
)

// unregisteredRunnable is deliberately never passed to crucial.Register.
type unregisteredRunnable struct{ X int }

func (u *unregisteredRunnable) Run(*TC) error { return nil }

func TestUnregisteredRunnableFailsAtStart(t *testing.T) {
	rt := testRuntime(t, Options{})
	th := rt.NewThread(&unregisteredRunnable{X: 1})
	th.Start()
	err := th.Join()
	if err == nil {
		t.Fatal("unregistered runnable shipped successfully")
	}
}

func TestThreadIDsAreUnique(t *testing.T) {
	Register(&flakyWorker{})
	rt := testRuntime(t, Options{})
	seen := map[int]bool{}
	for i := 0; i < 5; i++ {
		th := rt.NewThread(&flakyWorker{Done: NewAtomicLong("ids")})
		th.Start()
		if err := th.Join(); err != nil {
			t.Fatal(err)
		}
		if th.ID() == 0 || seen[th.ID()] {
			t.Fatalf("thread id %d reused or zero", th.ID())
		}
		seen[th.ID()] = true
	}
}

func TestDoubleStartIsIdempotent(t *testing.T) {
	Register(&flakyWorker{})
	rt := testRuntime(t, Options{})
	th := rt.NewThread(&flakyWorker{Done: NewAtomicLong("dbl")})
	th.Start()
	th.Start() // second Start must not spawn a second invocation
	if err := th.Join(); err != nil {
		t.Fatal(err)
	}
	done := NewAtomicLong("dbl")
	rt.Bind(done)
	v, err := done.Get(bg())
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("runnable executed %d times", v)
	}
}

func TestJoinAllAggregatesFirstError(t *testing.T) {
	Register(&failingWorker{})
	Register(&flakyWorker{})
	rt := testRuntime(t, Options{})
	ts := rt.SpawnAll(
		&flakyWorker{Done: NewAtomicLong("agg")},
		&failingWorker{},
		&flakyWorker{Done: NewAtomicLong("agg")},
	)
	if err := JoinAll(ts); err == nil {
		t.Fatal("JoinAll swallowed the failure")
	}
	// All threads joined despite the error.
	done := NewAtomicLong("agg")
	rt.Bind(done)
	v, err := done.Get(bg())
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("only %d healthy workers completed", v)
	}
}

// ctxProbe captures what the TC exposes.
type ctxProbe struct {
	Out *AtomicLong
}

func (p *ctxProbe) Run(tc *TC) error {
	if tc.Context() == nil {
		return errors.New("nil context")
	}
	if tc.ThreadID() == 0 {
		return errors.New("zero thread id")
	}
	if tc.Invoker() == nil {
		return errors.New("nil invoker")
	}
	// Proxies created at run time bind through tc.Bind.
	local := NewAtomicLong("ctx-probe-local")
	tc.Bind(local)
	if _, err := local.AddAndGet(tc.Context(), 1); err != nil {
		return err
	}
	_, err := p.Out.AddAndGet(tc.Context(), 1)
	return err
}

func TestThreadContextSurface(t *testing.T) {
	Register(&ctxProbe{})
	rt := testRuntime(t, Options{})
	th := rt.NewThread(&ctxProbe{Out: NewAtomicLong("ctx-probe")})
	th.Start()
	if err := th.Join(); err != nil {
		t.Fatal(err)
	}
}

func TestStartCtxCancellation(t *testing.T) {
	Register(&sleeperWorker{})
	rt := testRuntime(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	th := rt.NewThread(&sleeperWorker{Millis: 10_000})
	th.StartCtx(ctx)
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := th.Join(); err == nil {
		t.Fatal("cancelled thread joined without error")
	}
}

type sleeperWorker struct{ Millis int64 }

func (s *sleeperWorker) Run(tc *TC) error {
	select {
	case <-tc.Context().Done():
		return tc.Context().Err()
	case <-time.After(time.Duration(s.Millis) * time.Millisecond):
		return nil
	}
}

func TestRuntimePrewarmEliminatesColdStarts(t *testing.T) {
	Register(&flakyWorker{})
	rt := testRuntime(t, Options{})
	if err := rt.Prewarm(3); err != nil {
		t.Fatal(err)
	}
	ts := rt.SpawnAll(
		&flakyWorker{Done: NewAtomicLong("warm")},
		&flakyWorker{Done: NewAtomicLong("warm")},
		&flakyWorker{Done: NewAtomicLong("warm")},
	)
	if err := JoinAll(ts); err != nil {
		t.Fatal(err)
	}
	if rt.Platform().Stats().ColdStarts != 0 {
		t.Fatalf("cold starts after prewarm: %d", rt.Platform().Stats().ColdStarts)
	}
}

func TestRuntimeAccessors(t *testing.T) {
	rt := testRuntime(t, Options{})
	if rt.Platform() == nil || rt.Cluster() == nil || rt.Profile() == nil || rt.Invoker() == nil {
		t.Fatal("runtime accessor returned nil")
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal("double Close errored")
	}
}

func TestSharedCallVoidAndErrors(t *testing.T) {
	rt := testRuntime(t, Options{})
	s := NewShared("AtomicLong", "shared-void", []any{int64(5)})
	rt.Bind(s)
	if err := s.CallVoid(bg(), "Set", int64(9)); err != nil {
		t.Fatal(err)
	}
	v, err := CallOne[int64](bg(), s, "Get")
	if err != nil || v != 9 {
		t.Fatalf("CallOne = %d, %v", v, err)
	}
	if _, err := CallOne[string](bg(), s, "Get"); err == nil {
		t.Fatal("type-mismatched CallOne succeeded")
	}
	if _, err := s.Call(bg(), "Bogus"); err == nil {
		t.Fatal("unknown method accepted")
	}
}
