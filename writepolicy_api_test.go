package crucial

import (
	"sync"
	"testing"

	"crucial/internal/telemetry"
)

// incWorker bumps one shared persistent counter n times from a cloud
// thread; many of them concurrently is the group-commit hot-spot pattern.
type incWorker struct {
	N       int
	Counter *AtomicLong
}

func (w *incWorker) Run(tc *TC) error {
	for i := 0; i < w.N; i++ {
		if _, err := w.Counter.IncrementAndGet(tc.Context()); err != nil {
			return err
		}
	}
	return nil
}

// TestWritePolicyOptionRoundTrip pins the single-seam contract of the
// WritePolicy API: the struct handed to Options.Write is the same one the
// cluster gives every server (server.Config.Write) and client
// (client.Config.Write), and with batching enabled the runtime's whole
// write path — cloud threads included — flows through group commit while
// staying exact.
func TestWritePolicyOptionRoundTrip(t *testing.T) {
	Register(&incWorker{})
	tel := telemetry.New()
	rt := testRuntime(t, Options{
		DSONodes:  3,
		RF:        2,
		Telemetry: tel,
		Write:     DefaultWritePolicy(),
	})

	const threads, perThread = 6, 30
	rs := make([]Runnable, threads)
	for i := range rs {
		rs[i] = &incWorker{N: perThread, Counter: NewAtomicLong("wp/counter", WithPersist())}
	}
	if err := JoinAll(rt.SpawnAll(rs...)); err != nil {
		t.Fatal(err)
	}

	counter := NewAtomicLong("wp/counter", WithPersist())
	rt.Bind(counter)
	total, err := counter.Get(bg())
	if err != nil {
		t.Fatal(err)
	}
	if total != threads*perThread {
		t.Fatalf("counter = %d after %d batched increments", total, threads*perThread)
	}
	if tel.Metrics().Counter(telemetry.MetServerBatches).Value() == 0 {
		t.Error("Options.Write enabled batching but no batch round was cut")
	}
}

// TestWritePolicyZeroKeepsClassicPath pins backward compatibility at the
// runtime level: without Options.Write the counter still works and no
// batch round ever exists.
func TestWritePolicyZeroKeepsClassicPath(t *testing.T) {
	Register(&incWorker{})
	tel := telemetry.New()
	rt := testRuntime(t, Options{DSONodes: 2, RF: 2, Telemetry: tel})

	ctr := NewAtomicLong("wp/classic", WithPersist())
	rt.Bind(ctr)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := ctr.IncrementAndGet(bg()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	total, err := ctr.Get(bg())
	if err != nil {
		t.Fatal(err)
	}
	if total != 40 {
		t.Fatalf("counter = %d after 40 increments", total)
	}
	if n := tel.Metrics().Counter(telemetry.MetServerBatches).Value(); n != 0 {
		t.Errorf("zero Options.Write cut %d batch rounds", n)
	}
}
