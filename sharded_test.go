package crucial

import (
	"sync"
	"testing"
)

func TestShardedCounterBasics(t *testing.T) {
	rt := testRuntime(t, Options{DSONodes: 2})
	c := NewShardedCounter("sc-basic", 4)
	rt.Bind(c)
	ctx := bg()

	if c.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d", c.ShardCount())
	}
	for i := 0; i < 10; i++ {
		if err := c.Increment(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Add(ctx, 32); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("Get = %d, want 42", got)
	}
	if err := c.Reset(ctx); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Get(ctx); got != 0 {
		t.Fatalf("Get after Reset = %d", got)
	}
}

func TestShardedCounterDefaultShards(t *testing.T) {
	c := NewShardedCounter("sc-default", 0)
	if c.ShardCount() != DefaultCounterShards {
		t.Fatalf("default ShardCount = %d, want %d", c.ShardCount(), DefaultCounterShards)
	}
}

// Writes actually spread: after many increments, no single shard holds the
// whole count (that would mean the counter re-created the hot spot it
// exists to remove).
func TestShardedCounterSpreadsWrites(t *testing.T) {
	rt := testRuntime(t, Options{DSONodes: 2})
	c := NewShardedCounter("sc-spread", 4)
	rt.Bind(c)
	ctx := bg()

	const total = 100
	for i := 0; i < total; i++ {
		if err := c.Increment(ctx); err != nil {
			t.Fatal(err)
		}
	}
	nonZero := 0
	for _, s := range c.Shards {
		v, err := s.Get(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if v > 0 {
			nonZero++
		}
		if v == total {
			t.Fatal("one shard absorbed every write")
		}
	}
	if nonZero < 2 {
		t.Fatalf("only %d shards touched by %d round-robin writes", nonZero, total)
	}
}

// shardedWorker is a Runnable carrying a ShardedCounter: the proxy must
// survive the gob round trip into the cloud function and re-bind there.
type shardedWorker struct {
	N       int
	Counter *ShardedCounter
}

func (w *shardedWorker) Run(tc *TC) error {
	ctx := tc.Context()
	for i := 0; i < w.N; i++ {
		if err := w.Counter.Increment(ctx); err != nil {
			return err
		}
	}
	return nil
}

func TestShardedCounterAcrossCloudThreads(t *testing.T) {
	Register(&shardedWorker{})
	rt := testRuntime(t, Options{DSONodes: 3})

	const threads, per = 8, 50
	rs := make([]Runnable, threads)
	for i := range rs {
		rs[i] = &shardedWorker{N: per, Counter: NewShardedCounter("sc-cloud", 4)}
	}
	for _, th := range rt.SpawnAll(rs...) {
		if err := th.Join(); err != nil {
			t.Fatal(err)
		}
	}

	c := NewShardedCounter("sc-cloud", 4)
	rt.Bind(c)
	got, err := c.Get(bg())
	if err != nil {
		t.Fatal(err)
	}
	if got != threads*per {
		t.Fatalf("Get = %d, want %d", got, threads*per)
	}
}

// Concurrent local adders: the proxy is safe for concurrent use like every
// other proxy, and no increment is lost.
func TestShardedCounterConcurrentAdds(t *testing.T) {
	rt := testRuntime(t, Options{DSONodes: 2})
	c := NewShardedCounter("sc-conc", 8)
	rt.Bind(c)
	ctx := bg()

	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := c.Increment(ctx); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := c.Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != workers*per {
		t.Fatalf("Get = %d, want %d", got, workers*per)
	}
}
