package crucial

import (
	"context"
	"fmt"

	"crucial/internal/objects"
)

func typeError[T any](got any) error {
	var zero T
	return fmt.Errorf("crucial: value has type %T, want %T", got, zero)
}

// List is a linearizable growable list of T values shared by all cloud
// threads. Register non-basic T with crucial.RegisterValue first.
type List[T any] struct {
	H Handle // H is the underlying object handle (ref + client binding).
}

// NewList builds a proxy for the list named key.
func NewList[T any](key string, opts ...Option) *List[T] {
	return &List[T]{H: NewHandle(objects.TypeList, key, opts...)}
}

// Add appends v and returns its index.
func (l *List[T]) Add(ctx context.Context, v T) (int64, error) {
	return result0[int64](l.H.Invoke(ctx, "Add", v))
}

// Get returns element i.
func (l *List[T]) Get(ctx context.Context, i int) (T, error) {
	return result0[T](l.H.Invoke(ctx, "Get", int64(i)))
}

// Set replaces element i, returning the previous value.
func (l *List[T]) Set(ctx context.Context, i int, v T) (T, error) {
	return result0[T](l.H.Invoke(ctx, "Set", int64(i), v))
}

// Remove deletes element i, returning it.
func (l *List[T]) Remove(ctx context.Context, i int) (T, error) {
	return result0[T](l.H.Invoke(ctx, "Remove", int64(i)))
}

// Size returns the element count.
func (l *List[T]) Size(ctx context.Context) (int64, error) {
	return result0[int64](l.H.Invoke(ctx, "Size"))
}

// Clear removes every element.
func (l *List[T]) Clear(ctx context.Context) error {
	return resultVoid(l.H.Invoke(ctx, "Clear"))
}

// Contains reports membership by serialized equality.
func (l *List[T]) Contains(ctx context.Context, v T) (bool, error) {
	return result0[bool](l.H.Invoke(ctx, "Contains", v))
}

// GetAll returns a copy of all elements.
func (l *List[T]) GetAll(ctx context.Context) ([]T, error) {
	raw, err := result0[[]any](l.H.Invoke(ctx, "GetAll"))
	if err != nil {
		return nil, err
	}
	out := make([]T, len(raw))
	for i, r := range raw {
		v, ok := r.(T)
		if !ok {
			return nil, typeError[T](r)
		}
		out[i] = v
	}
	return out, nil
}

// Map is a linearizable string-keyed map of T values shared by all cloud
// threads.
type Map[T any] struct {
	H Handle // H is the underlying object handle (ref + client binding).
}

// NewMap builds a proxy for the map named key.
func NewMap[T any](key string, opts ...Option) *Map[T] {
	return &Map[T]{H: NewHandle(objects.TypeMap, key, opts...)}
}

// Put stores k=v; ok reports whether a previous value existed (returned as
// prev).
func (m *Map[T]) Put(ctx context.Context, k string, v T) (prev T, ok bool, err error) {
	var zero T
	res, err := m.H.Invoke(ctx, "Put", k, v)
	if err != nil {
		return zero, false, err
	}
	had := res[1].(bool)
	if !had {
		return zero, false, nil
	}
	p, good := res[0].(T)
	if !good {
		return zero, false, typeError[T](res[0])
	}
	return p, true, nil
}

// Get returns the value at k.
func (m *Map[T]) Get(ctx context.Context, k string) (T, bool, error) {
	var zero T
	res, err := m.H.Invoke(ctx, "Get", k)
	if err != nil {
		return zero, false, err
	}
	if !res[1].(bool) {
		return zero, false, nil
	}
	v, good := res[0].(T)
	if !good {
		return zero, false, typeError[T](res[0])
	}
	return v, true, nil
}

// PutIfAbsent stores k=v only when absent; it returns the winning value
// and whether this call inserted it.
func (m *Map[T]) PutIfAbsent(ctx context.Context, k string, v T) (T, bool, error) {
	var zero T
	res, err := m.H.Invoke(ctx, "PutIfAbsent", k, v)
	if err != nil {
		return zero, false, err
	}
	w, good := res[0].(T)
	if !good {
		return zero, false, typeError[T](res[0])
	}
	return w, res[1].(bool), nil
}

// Remove deletes k, returning the removed value if any.
func (m *Map[T]) Remove(ctx context.Context, k string) (T, bool, error) {
	var zero T
	res, err := m.H.Invoke(ctx, "Remove", k)
	if err != nil {
		return zero, false, err
	}
	if !res[1].(bool) {
		return zero, false, nil
	}
	v, good := res[0].(T)
	if !good {
		return zero, false, typeError[T](res[0])
	}
	return v, true, nil
}

// ContainsKey reports key membership.
func (m *Map[T]) ContainsKey(ctx context.Context, k string) (bool, error) {
	return result0[bool](m.H.Invoke(ctx, "ContainsKey", k))
}

// Size returns the entry count.
func (m *Map[T]) Size(ctx context.Context) (int64, error) {
	return result0[int64](m.H.Invoke(ctx, "Size"))
}

// Keys returns all keys (order unspecified).
func (m *Map[T]) Keys(ctx context.Context) ([]string, error) {
	return result0[[]string](m.H.Invoke(ctx, "Keys"))
}

// Clear removes every entry.
func (m *Map[T]) Clear(ctx context.Context) error {
	return resultVoid(m.H.Invoke(ctx, "Clear"))
}

// KV is a single binary cell (used by the storage-baseline benchmarks and
// handy for PyWren-style result drops).
type KV struct {
	H Handle // H is the underlying object handle (ref + client binding).
}

// NewKV builds a proxy for the cell named key.
func NewKV(key string, opts ...Option) *KV {
	return &KV{H: NewHandle(objects.TypeKV, key, opts...)}
}

// Put stores the cell contents.
func (c *KV) Put(ctx context.Context, v []byte) error {
	return resultVoid(c.H.Invoke(ctx, "Put", v))
}

// Get returns the cell contents.
func (c *KV) Get(ctx context.Context) ([]byte, bool, error) {
	res, err := c.H.Invoke(ctx, "Get")
	if err != nil {
		return nil, false, err
	}
	if !res[1].(bool) {
		return nil, false, nil
	}
	return res[0].([]byte), true, nil
}

// Exists reports whether the cell holds data.
func (c *KV) Exists(ctx context.Context) (bool, error) {
	return result0[bool](c.H.Invoke(ctx, "Exists"))
}

// Delete clears the cell.
func (c *KV) Delete(ctx context.Context) error {
	return resultVoid(c.H.Invoke(ctx, "Delete"))
}
