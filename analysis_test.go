package crucial

import (
	"testing"

	"crucial/internal/netsim"
	"crucial/internal/telemetry"
	"crucial/internal/telemetry/analysis"
)

// TestCriticalPathReportCoversWallTime is the acceptance check for the
// analytics layer: on a real instrumented runtime, the per-category
// attribution must account for (nearly) all trace wall time — every
// nanosecond of every root span lands in exactly one category, so the sum
// may only drift from the total by clock-clamping noise, bounded at 5%.
func TestCriticalPathReportCoversWallTime(t *testing.T) {
	Register(&telemWorker{})
	tel := telemetry.New()
	// A compressed AWS profile so cold starts and RPC hops take real
	// (if tiny) time: the category assertions below must not depend on
	// nanosecond clock deltas.
	rt := testRuntime(t, Options{
		DSONodes:  2,
		Profile:   netsim.AWS2019(0.002),
		Telemetry: tel,
	})

	const threads = 6
	rs := make([]Runnable, threads)
	for i := range rs {
		rs[i] = &telemWorker{
			Counter: NewAtomicLong("analysis/counter"),
			Barrier: NewCyclicBarrier("analysis/barrier", threads),
		}
	}
	if err := JoinAll(rt.SpawnAll(rs...)); err != nil {
		t.Fatal(err)
	}

	rep := analysis.Analyze(rt.Trace())
	if rep.Traces != threads {
		t.Fatalf("analyzed %d traces, want %d", rep.Traces, threads)
	}
	if rep.Total <= 0 {
		t.Fatal("report total is zero")
	}
	sum := rep.CategorySum()
	diff := rep.Total - sum
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.05*float64(rep.Total) {
		t.Fatalf("category sum %v deviates from total %v by %v (> 5%%)\n%s",
			sum, rep.Total, diff, rep)
	}

	// The workload blocks threads on a barrier and pays cold starts, so
	// those categories must be populated — an all-"other" report would
	// trivially pass the sum check while attributing nothing.
	for _, cat := range []string{analysis.CatColdStart, analysis.CatMonitorWait, analysis.CatRPC} {
		if rep.Categories[cat] <= 0 {
			t.Fatalf("category %s empty in report:\n%s", cat, rep)
		}
	}
	if rep.Slowest == nil || len(rep.Slowest.Path) == 0 {
		t.Fatal("report has no critical path for the slowest trace")
	}
	// The critical path starts at the thread root and is time-ordered.
	if rep.Slowest.Path[0].Name != telemetry.SpanThread {
		t.Fatalf("critical path starts at %q, want %q",
			rep.Slowest.Path[0].Name, telemetry.SpanThread)
	}
}

// TestEnableTelemetryOption covers the runtime-level enablement knob: the
// runtime builds its own bundle, sized by TelemetrySpanCapacity.
func TestEnableTelemetryOption(t *testing.T) {
	rt := testRuntime(t, Options{EnableTelemetry: true, TelemetrySpanCapacity: 64})
	if rt.Telemetry() == nil {
		t.Fatal("EnableTelemetry did not build a bundle")
	}
	Register(&telemWorker{})
	th := rt.NewThread(&telemWorker{Counter: NewAtomicLong("enable/counter")})
	th.Start()
	if err := th.Join(); err != nil {
		t.Fatal(err)
	}
	if len(rt.Trace()) == 0 {
		t.Fatal("instrumented runtime recorded no spans")
	}
}

// TestTelemetryEnvToggle covers CRUCIAL_TELEMETRY: a runtime built with a
// zero Options still comes up instrumented when the environment asks.
func TestTelemetryEnvToggle(t *testing.T) {
	t.Setenv("CRUCIAL_TELEMETRY", "1")
	t.Setenv("CRUCIAL_SPAN_CAPACITY", "32")
	rt := testRuntime(t, Options{})
	if rt.Telemetry() == nil {
		t.Fatal("CRUCIAL_TELEMETRY=1 did not enable instrumentation")
	}
	Register(&telemWorker{})
	for i := 0; i < 3; i++ {
		th := rt.NewThread(&telemWorker{Counter: NewAtomicLong("envtel/counter")})
		th.Start()
		if err := th.Join(); err != nil {
			t.Fatal(err)
		}
	}
	// The ring was sized by CRUCIAL_SPAN_CAPACITY: spans are recorded and
	// bounded by it.
	n := len(rt.Trace())
	if n == 0 || n > 32 {
		t.Fatalf("trace holds %d spans, want 1..32", n)
	}
}
