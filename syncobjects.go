package crucial

import (
	"context"

	"crucial/internal/objects"
)

// Synchronization objects (Table 1): shared objects whose methods block
// server side, giving cloud threads the coordination surface of
// java.util.concurrent without any polling. They are ephemeral and never
// replicated.

// CyclicBarrier blocks parties cloud threads until all have arrived, then
// releases them together and resets for the next generation — the
// iteration synchronizer of the paper's k-means (Listing 2, line 19).
type CyclicBarrier struct {
	H Handle // H is the underlying object handle (ref + client binding).
}

// NewCyclicBarrier builds a proxy for a barrier of the given party count
// (applied on first access).
func NewCyclicBarrier(key string, parties int, opts ...Option) *CyclicBarrier {
	opts = append(opts, withInit(int64(parties)))
	return &CyclicBarrier{H: NewHandle(objects.TypeCyclicBarrier, key, opts...)}
}

// Await blocks until all parties arrive, returning this caller's arrival
// index (parties-1 for the first arrival, 0 for the last, like Java).
func (b *CyclicBarrier) Await(ctx context.Context) (int64, error) {
	return result0[int64](b.H.Invoke(ctx, "Await"))
}

// GetParties returns the configured party count.
func (b *CyclicBarrier) GetParties(ctx context.Context) (int64, error) {
	return result0[int64](b.H.Invoke(ctx, "GetParties"))
}

// GetNumberWaiting returns how many threads are currently blocked.
func (b *CyclicBarrier) GetNumberWaiting(ctx context.Context) (int64, error) {
	return result0[int64](b.H.Invoke(ctx, "GetNumberWaiting"))
}

// Reset breaks the current generation (waiters receive an error) and
// reopens the barrier.
func (b *CyclicBarrier) Reset(ctx context.Context) error {
	return resultVoid(b.H.Invoke(ctx, "Reset"))
}

// Semaphore is a distributed counting semaphore.
type Semaphore struct {
	H Handle // H is the underlying object handle (ref + client binding).
}

// NewSemaphore builds a proxy for a semaphore with the given initial
// permit count (applied on first access).
func NewSemaphore(key string, permits int, opts ...Option) *Semaphore {
	opts = append(opts, withInit(int64(permits)))
	return &Semaphore{H: NewHandle(objects.TypeSemaphore, key, opts...)}
}

// Acquire blocks until one permit is available and takes it.
func (s *Semaphore) Acquire(ctx context.Context) error {
	return resultVoid(s.H.Invoke(ctx, "Acquire"))
}

// AcquireN blocks until n permits are available and takes them.
func (s *Semaphore) AcquireN(ctx context.Context, n int) error {
	return resultVoid(s.H.Invoke(ctx, "Acquire", int64(n)))
}

// TryAcquire takes a permit without blocking, reporting success.
func (s *Semaphore) TryAcquire(ctx context.Context) (bool, error) {
	return result0[bool](s.H.Invoke(ctx, "TryAcquire"))
}

// Release returns one permit.
func (s *Semaphore) Release(ctx context.Context) error {
	return resultVoid(s.H.Invoke(ctx, "Release"))
}

// ReleaseN returns n permits.
func (s *Semaphore) ReleaseN(ctx context.Context, n int) error {
	return resultVoid(s.H.Invoke(ctx, "Release", int64(n)))
}

// AvailablePermits returns the free permit count.
func (s *Semaphore) AvailablePermits(ctx context.Context) (int64, error) {
	return result0[int64](s.H.Invoke(ctx, "AvailablePermits"))
}

// DrainPermits takes every available permit, returning how many.
func (s *Semaphore) DrainPermits(ctx context.Context) (int64, error) {
	return result0[int64](s.H.Invoke(ctx, "DrainPermits"))
}

// Future is a single-assignment distributed cell: Get blocks until some
// thread Sets it. The Fig. 6 map-phase synchronization is built on these.
type Future[T any] struct {
	H Handle // H is the underlying object handle (ref + client binding).
}

// NewFuture builds a proxy for the future named key.
func NewFuture[T any](key string, opts ...Option) *Future[T] {
	return &Future[T]{H: NewHandle(objects.TypeFuture, key, opts...)}
}

// Set completes the future with v. Completing twice is an error.
func (f *Future[T]) Set(ctx context.Context, v T) error {
	return resultVoid(f.H.Invoke(ctx, "Set", v))
}

// Fail completes the future exceptionally; Get returns the message as an
// error.
func (f *Future[T]) Fail(ctx context.Context, msg string) error {
	return resultVoid(f.H.Invoke(ctx, "Fail", msg))
}

// Get blocks until the future completes and returns its value.
func (f *Future[T]) Get(ctx context.Context) (T, error) {
	return result0[T](f.H.Invoke(ctx, "Get"))
}

// IsDone reports completion without blocking.
func (f *Future[T]) IsDone(ctx context.Context) (bool, error) {
	return result0[bool](f.H.Invoke(ctx, "IsDone"))
}

// GetNow returns the value if the future completed successfully.
func (f *Future[T]) GetNow(ctx context.Context) (T, bool, error) {
	var zero T
	res, err := f.H.Invoke(ctx, "GetNow")
	if err != nil {
		return zero, false, err
	}
	if !res[1].(bool) {
		return zero, false, nil
	}
	v, ok := res[0].(T)
	if !ok {
		return zero, false, typeError[T](res[0])
	}
	return v, true, nil
}

// CountDownLatch blocks waiters until count threads have counted down.
type CountDownLatch struct {
	H Handle // H is the underlying object handle (ref + client binding).
}

// NewCountDownLatch builds a proxy for a latch with the given count
// (applied on first access).
func NewCountDownLatch(key string, count int, opts ...Option) *CountDownLatch {
	opts = append(opts, withInit(int64(count)))
	return &CountDownLatch{H: NewHandle(objects.TypeCountDownLatch, key, opts...)}
}

// CountDown decrements the latch, returning the remaining count.
func (l *CountDownLatch) CountDown(ctx context.Context) (int64, error) {
	return result0[int64](l.H.Invoke(ctx, "CountDown"))
}

// Await blocks until the latch reaches zero.
func (l *CountDownLatch) Await(ctx context.Context) error {
	return resultVoid(l.H.Invoke(ctx, "Await"))
}

// GetCount returns the remaining count.
func (l *CountDownLatch) GetCount(ctx context.Context) (int64, error) {
	return result0[int64](l.H.Invoke(ctx, "GetCount"))
}
