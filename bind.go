package crucial

import (
	"reflect"

	"crucial/internal/core"
)

// Bind weaving (the AspectJ analog, paper Section 5): when a Runnable is
// decoded inside a cloud function, its proxy fields carry only object
// references — no live connection. BindShared walks the value graph and
// attaches the function's DSO client to every Bindable it finds: proxy
// fields, proxies nested in user structs, and proxies inside slices,
// arrays and maps.

// BindShared binds every reachable shared-object proxy in targets to inv.
// Unexported fields are skipped (export the proxy fields of a Runnable,
// exactly as they must be serializable).
func BindShared(inv core.Invoker, targets ...any) {
	seen := make(map[uintptr]struct{})
	for _, t := range targets {
		if t == nil {
			continue
		}
		bindValue(reflect.ValueOf(t), inv, seen, 0)
	}
}

var bindableType = reflect.TypeOf((*core.Bindable)(nil)).Elem()

// maxBindDepth bounds recursion on pathological graphs.
const maxBindDepth = 32

func bindValue(v reflect.Value, inv core.Invoker, seen map[uintptr]struct{}, depth int) {
	if !v.IsValid() || depth > maxBindDepth {
		return
	}
	// Bind the value itself when possible, then keep descending: a user
	// struct may both be bindable and contain nested proxies.
	if v.CanInterface() && v.Type().Implements(bindableType) {
		if v.Kind() != reflect.Pointer || !v.IsNil() {
			v.Interface().(core.Bindable).BindDSO(inv)
			return
		}
	}
	if v.CanAddr() {
		a := v.Addr()
		if a.CanInterface() && a.Type().Implements(bindableType) {
			a.Interface().(core.Bindable).BindDSO(inv)
			return
		}
	}

	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() {
			return
		}
		ptr := v.Pointer()
		if _, dup := seen[ptr]; dup {
			return
		}
		seen[ptr] = struct{}{}
		bindValue(v.Elem(), inv, seen, depth+1)
	case reflect.Interface:
		if !v.IsNil() {
			bindValue(v.Elem(), inv, seen, depth+1)
		}
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			if t.Field(i).PkgPath != "" {
				continue // unexported
			}
			bindValue(v.Field(i), inv, seen, depth+1)
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			bindValue(v.Index(i), inv, seen, depth+1)
		}
	case reflect.Map:
		// Map values are not addressable; only pointer/interface values
		// can be bound in place.
		iter := v.MapRange()
		for iter.Next() {
			mv := iter.Value()
			if mv.Kind() == reflect.Pointer || mv.Kind() == reflect.Interface {
				bindValue(mv, inv, seen, depth+1)
			}
		}
	default:
	}
}
