// Persistent state (paper Sections 4.1/6.4): a counter marked
// @Shared(persistent=true) is replicated across the DSO cluster with
// state-machine replication and survives the crash of its primary node.
//
//	go run ./examples/counter
package main

import (
	"context"
	"fmt"
	"os"

	"crucial"
)

func main() {
	os.Exit(run())
}

func run() int {
	// Three storage nodes, replication factor two.
	rt, err := crucial.NewLocalRuntime(crucial.Options{DSONodes: 3, RF: 2})
	if err != nil {
		fmt.Fprintln(os.Stderr, "counter:", err)
		return 1
	}
	defer func() { _ = rt.Close() }()
	ctx := context.Background()

	counter := crucial.NewAtomicLong("bank-balance", crucial.WithPersist())
	rt.Bind(counter)
	for i := 0; i < 10; i++ {
		if _, err := counter.AddAndGet(ctx, 100); err != nil {
			fmt.Fprintln(os.Stderr, "counter:", err)
			return 1
		}
	}
	before, err := counter.Get(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "counter:", err)
		return 1
	}
	fmt.Printf("balance with 3 nodes: %d\n", before)

	// Kill the node that owns the counter's primary replica.
	view := rt.Cluster().Dir.View()
	primary := view.Ring().ReplicaSet(counter.H.Ref().String(), 2)[0]
	fmt.Printf("crashing primary replica %s...\n", primary)
	if err := rt.Cluster().CrashNode(primary); err != nil {
		fmt.Fprintln(os.Stderr, "counter:", err)
		return 1
	}

	after, err := counter.Get(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "counter:", err)
		return 1
	}
	fmt.Printf("balance after the crash: %d\n", after)
	if after != before {
		fmt.Fprintln(os.Stderr, "counter: state lost!")
		return 1
	}
	// And the object is writable again on its new replica group.
	v, err := counter.AddAndGet(ctx, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "counter:", err)
		return 1
	}
	fmt.Printf("balance after one more deposit: %d (replicas repaired)\n", v)
	return 0
}
