// Quickstart: the paper's Listing 1 — a multi-threaded Monte Carlo
// estimation of pi where the threads are cloud functions and the only
// shared state is one crucial.AtomicLong.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"

	"crucial"
)

const (
	iterations = 200_000
	nThreads   = 8
)

// piEstimator is a plain Runnable; its exported fields ship to the cloud
// function, and the Counter proxy is re-bound to the DSO layer there.
type piEstimator struct {
	Seed    int64
	Counter *crucial.AtomicLong
}

func (p *piEstimator) Run(tc *crucial.TC) error {
	rng := rand.New(rand.NewSource(p.Seed))
	var count int64
	for i := 0; i < iterations; i++ {
		x, y := rng.Float64(), rng.Float64()
		if x*x+y*y <= 1.0 {
			count++
		}
	}
	_, err := p.Counter.AddAndGet(tc.Context(), count)
	return err
}

func main() {
	os.Exit(run())
}

func run() int {
	// One call boots the whole local deployment: a FaaS platform plus a
	// DSO cluster.
	rt, err := crucial.NewLocalRuntime(crucial.Options{DSONodes: 2})
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		return 1
	}
	defer func() { _ = rt.Close() }()
	crucial.Register(&piEstimator{})

	// Fork: one cloud thread per estimator (Listing 1, lines 19-23).
	threads := make([]*crucial.CloudThread, nThreads)
	for i := range threads {
		threads[i] = rt.NewThread(&piEstimator{
			Seed:    int64(i + 1),
			Counter: crucial.NewAtomicLong("counter"),
		})
		threads[i].Start()
	}
	// Join (line 24).
	if err := crucial.JoinAll(threads); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		return 1
	}

	// The master thread reads the same shared counter (line 25).
	counter := crucial.NewAtomicLong("counter")
	rt.Bind(counter)
	hits, err := counter.Get(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		return 1
	}
	pi := 4.0 * float64(hits) / float64(nThreads*iterations)
	fmt.Printf("pi ~= %.5f (from %d points across %d cloud threads)\n",
		pi, nThreads*iterations, nThreads)

	// Observability in 60 seconds: run with CRUCIAL_TELEMETRY=1 and the
	// runtime records counters, latency histograms, and one distributed
	// trace per invocation (thread -> faas.invoke -> client.invoke ->
	// server.invoke) — dump the metrics on the way out.
	if rt.Telemetry() != nil {
		fmt.Print(rt.Metrics())
	}
	return 0
}
