// Serverless k-means (the paper's Listing 2): cloud threads cluster a
// synthetic dataset, sharing the centroids through user-defined DSO
// objects that aggregate updates server side, pacing iterations with a
// distributed cyclic barrier.
//
//	go run ./examples/kmeans
package main

import (
	"context"
	"fmt"
	"os"

	"crucial"
	"crucial/internal/apps/kmeansapp"
	"crucial/internal/ml"
)

func main() {
	os.Exit(run())
}

func run() int {
	// The custom shared types (GlobalCentroids, GlobalDelta) are the
	// @Shared analog: registered once, their methods execute on the DSO
	// nodes that own them.
	reg := crucial.NewTypeRegistry()
	kmeansapp.RegisterTypes(reg)
	rt, err := crucial.NewLocalRuntime(crucial.Options{DSONodes: 2, Registry: reg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kmeans:", err)
		return 1
	}
	defer func() { _ = rt.Close() }()
	crucial.Register(&kmeansapp.Worker{})

	cfg := kmeansapp.Config{
		K:               4,
		Dims:            8,
		Workers:         6,
		MaxIterations:   8,
		PointsPerWorker: 500,
		Seed:            42,
	}
	res, err := kmeansapp.RunCrucial(context.Background(), rt, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kmeans:", err)
		return 1
	}

	// Evaluate the model on freshly drawn points from the same blobs.
	test := ml.GeneratePointsPartition(2000, cfg.Dims, cfg.K, cfg.Seed, 999)
	var cost float64
	for _, p := range test {
		_, d2 := ml.NearestCentroid(p, res.Centroids)
		cost += d2
	}
	fmt.Printf("trained %d centroids with %d cloud threads in %v\n",
		cfg.K, cfg.Workers, res.Total.Round(1e6))
	fmt.Printf("mean squared distance on held-out points: %.3f\n",
		cost/float64(len(test)))
	for i, c := range res.Centroids {
		fmt.Printf("centroid %d: [%.2f %.2f ...]\n", i, c[0], c[1])
	}
	return 0
}
