// Serverless logistic regression (paper Section 6.2.2): cloud threads
// train a binary classifier by pushing sub-gradients into a shared model
// object that applies the descent step server side when the round's last
// contribution arrives.
//
//	go run ./examples/logreg
package main

import (
	"context"
	"fmt"
	"os"

	"crucial"
	"crucial/internal/apps/logregapp"
	"crucial/internal/ml"
)

func main() {
	os.Exit(run())
}

func run() int {
	reg := crucial.NewTypeRegistry()
	logregapp.RegisterTypes(reg)
	rt, err := crucial.NewLocalRuntime(crucial.Options{DSONodes: 2, Registry: reg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "logreg:", err)
		return 1
	}
	defer func() { _ = rt.Close() }()
	crucial.Register(&logregapp.Worker{})

	cfg := logregapp.Config{
		Dims:            10,
		Workers:         5,
		Iterations:      25,
		PointsPerWorker: 400,
		LearningRate:    2.0,
		Seed:            7,
	}
	res, err := logregapp.RunCrucial(context.Background(), rt, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "logreg:", err)
		return 1
	}

	fmt.Printf("trained %d weights with %d cloud threads in %v\n",
		cfg.Dims, cfg.Workers, res.Total.Round(1e6))
	fmt.Println("loss curve (avg log-loss per iteration):")
	for i := 0; i < len(res.Losses); i += 5 {
		fmt.Printf("  iter %2d: %.5f\n", i+1, res.Losses[i])
	}
	fmt.Printf("  iter %2d: %.5f (final)\n", len(res.Losses), res.Losses[len(res.Losses)-1])

	// Accuracy on held-out data drawn from the same ground-truth model.
	test, labels := ml.GenerateLabeledPartition(4000, cfg.Dims, cfg.Seed, 1234)
	fmt.Printf("held-out accuracy: %.1f%%\n", 100*ml.Accuracy(test, labels, res.Weights))
	return 0
}
