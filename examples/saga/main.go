// Durable workflows (DESIGN.md §5i): an order saga on stateful
// functions. Each order instance walks reserve → charge → dispatch,
// with a compensating release when the payment declines; every step's
// state change and next message commit atomically, so the saga survives
// node crashes mid-flight with no step lost or doubled.
//
// Two modes:
//
//	go run ./examples/saga
//	    Self-contained: an in-process durable cluster, a batch of
//	    concurrent orders, and a node crash in the middle of them.
//
//	go run ./examples/saga -members n1=:7001,n2=:7002,n3=:7003
//	    Against a live dso-server cluster (started separately, ideally
//	    with -wal-dir for durability). The example hosts the handlers
//	    and a dispatch engine over a TCP client; kill and restart a
//	    server mid-run to watch the sagas resume. Inspect the mailbox
//	    traffic afterwards with dso-cli top/stats.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"crucial"
	"crucial/internal/apps/saga"
	"crucial/internal/client"
	"crucial/internal/membership"
	"crucial/internal/ring"
	"crucial/internal/rpc"
	"crucial/internal/statefun"
)

func main() {
	members := flag.String("members", "", "comma-separated id=addr pairs of a live cluster (empty: run an in-process cluster)")
	orders := flag.Int("orders", 10, "orders to place")
	stock := flag.Int64("stock", 8, "initial stock (orders beyond it fail and compensate)")
	flag.Parse()
	// Order instances are durable, so repeated runs against a live
	// cluster need distinct order keys — a placement reusing an id gets
	// the old saga's status back instead of starting a new one.
	runID = fmt.Sprintf("%x", time.Now().UnixNano()&0xffffff)
	if *members == "" {
		os.Exit(runLocal(*orders, *stock))
	}
	os.Exit(runRemote(*members, *orders, *stock))
}

// runID distinguishes this process's order keys on a shared cluster.
var runID string

// placeAll runs the batch of sagas concurrently through place and
// prints a receipt summary.
func placeAll(ctx context.Context, place func(ctx context.Context, id string, po saga.PlaceOrder) (saga.Receipt, error), orders int, mid func()) bool {
	receipts := make([]saga.Receipt, orders)
	errs := make([]error, orders)
	var wg sync.WaitGroup
	for i := 0; i < orders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			receipts[i], errs[i] = place(ctx, fmt.Sprintf("order-%s-%03d", runID, i),
				saga.PlaceOrder{SKU: "widget", Qty: 1, Amount: 40, Account: "acme"})
		}(i)
		if mid != nil && i == orders/2 {
			mid()
		}
	}
	wg.Wait()
	var completed, failed int
	for i, r := range receipts {
		if errs[i] != nil {
			fmt.Printf("  order-%03d: ERROR %v\n", i, errs[i])
			continue
		}
		switch r.Status {
		case saga.PhaseCompleted:
			completed++
		default:
			failed++
			fmt.Printf("  order-%03d: %s (%s)\n", i, r.Status, r.Reason)
		}
	}
	fmt.Printf("%d sagas completed, %d failed-and-compensated\n", completed, failed)
	return completed+failed == orders
}

// runLocal drives the saga on an in-process durable cluster and crashes
// a node while half the orders are still in flight.
func runLocal(orders int, stock int64) int {
	rt, err := crucial.NewLocalRuntime(crucial.Options{
		DSONodes:   3,
		RF:         2,
		Durability: crucial.DefaultDurabilityPolicy(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "saga:", err)
		return 1
	}
	defer func() { _ = rt.Close() }()
	h, err := saga.Deploy(rt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saga:", err)
		return 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := h.Restock(ctx, "widget", stock); err != nil {
		fmt.Fprintln(os.Stderr, "saga:", err)
		return 1
	}
	if err := h.Deposit(ctx, "acme", int64(orders)*40); err != nil {
		fmt.Fprintln(os.Stderr, "saga:", err)
		return 1
	}
	fmt.Printf("placing %d orders over %d units of stock (3 nodes, RF 2, durability on)\n", orders, stock)
	crash := func() {
		view := rt.Cluster().Dir.View()
		victim := view.Members[len(view.Members)-1]
		fmt.Printf("  crashing node %s mid-batch...\n", victim)
		if err := rt.Cluster().CrashNode(victim); err != nil {
			fmt.Fprintln(os.Stderr, "saga: crash:", err)
		}
	}
	if !placeAll(ctx, h.Place, orders, crash) {
		return 1
	}
	return report(ctx, func(v any) (bool, error) { return h.Inventory.State(ctx, "widget", v) },
		func(v any) (bool, error) { return h.Payment.State(ctx, "acme", v) })
}

// runRemote drives the saga against a live dso-server cluster: the
// example process hosts the handlers and the dispatch engine, the
// cluster hosts the durable mailboxes.
func runRemote(members string, orders int, stock int64) int {
	view, err := staticView(members)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saga:", err)
		return 1
	}
	// Registers the mailbox wire types process-wide as a side effect.
	_ = crucial.NewTypeRegistry()
	c, err := client.New(client.Config{
		Transport:      rpc.TCP{},
		Views:          client.NewRemoteViews(rpc.TCP{}, view),
		AttemptTimeout: 2 * time.Second,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "saga:", err)
		return 1
	}
	defer func() { _ = c.Close() }()

	hs := statefun.NewHandlerSet()
	if err := saga.RegisterAll(hs); err != nil {
		fmt.Fprintln(os.Stderr, "saga:", err)
		return 1
	}
	eng := statefun.NewEngine(statefun.EngineConfig{
		Invoker: c,
		Runner:  statefun.NewProc(c, hs, statefun.ProcOptions{}),
	})
	defer eng.Close()
	sender := statefun.NewSender(c, fmt.Sprintf("saga-client/%d", os.Getpid()), 0)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	send := func(to statefun.Address, name string, body any) error {
		data, err := statefun.EncodeBody(body)
		if err != nil {
			return err
		}
		if err := sender.Send(ctx, to, name, data, ""); err != nil {
			return err
		}
		eng.Notify(to)
		return nil
	}
	if err := send(statefun.Address{FnType: saga.FnInventory, ID: "widget"}, "restock", saga.Step{Qty: stock}); err != nil {
		fmt.Fprintln(os.Stderr, "saga:", err)
		return 1
	}
	if err := send(statefun.Address{FnType: saga.FnPayment, ID: "acme"}, "deposit", saga.Step{Amount: int64(orders) * 40}); err != nil {
		fmt.Fprintln(os.Stderr, "saga:", err)
		return 1
	}
	fmt.Printf("placing %d orders over %d units of stock against %s\n", orders, stock, members)
	fmt.Println("(kill and restart a dso-server mid-run to watch the sagas resume)")
	place := func(ctx context.Context, id string, po saga.PlaceOrder) (saga.Receipt, error) {
		to := statefun.Address{FnType: saga.FnOrder, ID: id}
		body, err := statefun.EncodeBody(po)
		if err != nil {
			return saga.Receipt{}, err
		}
		replyKey := "saga/reply/" + id
		if err := sender.Send(ctx, to, "place", body, replyKey); err != nil {
			return saga.Receipt{}, err
		}
		eng.Notify(to)
		raw, err := statefun.AwaitReply(ctx, c, replyKey)
		if err != nil {
			return saga.Receipt{}, err
		}
		var r saga.Receipt
		return r, statefun.DecodeBody(raw, &r)
	}
	if !placeAll(ctx, place, orders, nil) {
		return 1
	}
	return report(ctx,
		func(v any) (bool, error) {
			return statefun.StateOf(ctx, c, statefun.Address{FnType: saga.FnInventory, ID: "widget"}, 0, v)
		},
		func(v any) (bool, error) {
			return statefun.StateOf(ctx, c, statefun.Address{FnType: saga.FnPayment, ID: "acme"}, 0, v)
		})
}

// report prints the final inventory and payment books.
func report(_ context.Context, invState, payState func(v any) (bool, error)) int {
	var inv saga.InventoryState
	if _, err := invState(&inv); err != nil {
		fmt.Fprintln(os.Stderr, "saga:", err)
		return 1
	}
	var pay saga.PaymentState
	if _, err := payState(&pay); err != nil {
		fmt.Fprintln(os.Stderr, "saga:", err)
		return 1
	}
	fmt.Printf("inventory: %d left in stock, %d units in completed reservations\n",
		inv.Stock, sum(inv.Reserved))
	fmt.Printf("payment:   %d remaining balance, %d charged across %d orders\n",
		pay.Balance, sum(pay.Charged), len(pay.Charged))
	return 0
}

// sum totals a per-order ledger.
func sum(m map[string]int64) int64 {
	var t int64
	for _, v := range m {
		t += v
	}
	return t
}

// staticView builds the seed membership view from an id=addr list.
func staticView(members string) (membership.View, error) {
	v := membership.View{ID: 1, Addrs: make(map[ring.NodeID]string)}
	for _, pair := range strings.Split(members, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || id == "" || addr == "" {
			return membership.View{}, fmt.Errorf("bad member %q, want id=addr", pair)
		}
		v.Addrs[ring.NodeID(id)] = addr
		v.Members = append(v.Members, ring.NodeID(id))
	}
	sort.Slice(v.Members, func(i, j int) bool { return v.Members[i] < v.Members[j] })
	return v, nil
}
