// The Santa Claus problem (paper Section 6.3.3) four ways: local
// goroutines with monitors, the same algorithm with DSO-hosted groups and
// gates, every entity on its own cloud thread, and finally the whole cast
// rewritten event-driven on stateful functions (DESIGN.md §5i). The
// entity code is byte-for-byte identical across the first three variants
// — only the object factory changes; the fourth trades blocking waits
// for durable mailboxes, so no entity ever holds a thread while waiting.
//
//	go run ./examples/santa
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"crucial"
	"crucial/internal/apps/santa"
)

func main() {
	os.Exit(run())
}

func run() int {
	reg := crucial.NewTypeRegistry()
	santa.RegisterTypes(reg)
	rt, err := crucial.NewLocalRuntime(crucial.Options{DSONodes: 2, Registry: reg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "santa:", err)
		return 1
	}
	defer func() { _ = rt.Close() }()

	params := santa.Params{
		Elves:         10,
		Reindeer:      9,
		Deliveries:    15,
		TotalConsults: 30,
		DeliveryTime:  20 * time.Millisecond,
		ConsultTime:   10 * time.Millisecond,
		VacationTime:  25 * time.Millisecond,
		Seed:          3,
	}
	ctx := context.Background()

	params.Prefix = "santa-pojo"
	pojo, err := santa.RunPOJO(ctx, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "santa POJO:", err)
		return 1
	}
	params.Prefix = "santa-dso"
	dso, err := santa.RunDSO(ctx, rt, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "santa DSO:", err)
		return 1
	}
	params.Prefix = "santa-cloud"
	cloud, err := santa.RunCloud(ctx, rt, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "santa cloud:", err)
		return 1
	}
	santaFn, reindeerFn, elfFn, err := santa.DeployStatefun(rt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "santa statefun:", err)
		return 1
	}
	params.Prefix = "santa-statefun"
	statefun, err := santa.RunStatefun(ctx, params, santaFn, reindeerFn, elfFn)
	if err != nil {
		fmt.Fprintln(os.Stderr, "santa statefun:", err)
		return 1
	}

	fmt.Printf("%d deliveries with %d reindeer and %d elves:\n",
		params.Deliveries, params.Reindeer, params.Elves)
	fmt.Printf("  POJO (goroutines + monitors):   %v\n", pojo.Round(time.Millisecond))
	fmt.Printf("  DSO objects (@Shared analog):   %v\n", dso.Round(time.Millisecond))
	fmt.Printf("  DSO + cloud threads:            %v\n", cloud.Round(time.Millisecond))
	fmt.Printf("  stateful functions (no waits):  %v\n", statefun.Round(time.Millisecond))
	return 0
}
