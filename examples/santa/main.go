// The Santa Claus problem (paper Section 6.3.3) three ways: local
// goroutines with monitors, the same algorithm with DSO-hosted groups and
// gates, and finally every entity on its own cloud thread. The entity code
// is byte-for-byte identical across variants — only the object factory
// changes.
//
//	go run ./examples/santa
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"crucial"
	"crucial/internal/apps/santa"
)

func main() {
	os.Exit(run())
}

func run() int {
	reg := crucial.NewTypeRegistry()
	santa.RegisterTypes(reg)
	rt, err := crucial.NewLocalRuntime(crucial.Options{DSONodes: 2, Registry: reg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "santa:", err)
		return 1
	}
	defer func() { _ = rt.Close() }()

	params := santa.Params{
		Elves:         10,
		Reindeer:      9,
		Deliveries:    15,
		TotalConsults: 30,
		DeliveryTime:  20 * time.Millisecond,
		ConsultTime:   10 * time.Millisecond,
		VacationTime:  25 * time.Millisecond,
		Seed:          3,
	}
	ctx := context.Background()

	params.Prefix = "santa-pojo"
	pojo, err := santa.RunPOJO(ctx, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "santa POJO:", err)
		return 1
	}
	params.Prefix = "santa-dso"
	dso, err := santa.RunDSO(ctx, rt, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "santa DSO:", err)
		return 1
	}
	params.Prefix = "santa-cloud"
	cloud, err := santa.RunCloud(ctx, rt, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "santa cloud:", err)
		return 1
	}

	fmt.Printf("%d deliveries with %d reindeer and %d elves:\n",
		params.Deliveries, params.Reindeer, params.Elves)
	fmt.Printf("  POJO (goroutines + monitors):   %v\n", pojo.Round(time.Millisecond))
	fmt.Printf("  DSO objects (@Shared analog):   %v\n", dso.Round(time.Millisecond))
	fmt.Printf("  DSO + cloud threads:            %v\n", cloud.Round(time.Millisecond))
	return 0
}
