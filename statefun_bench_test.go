package crucial

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// The stateful-functions throughput benchmarks: sustained message
// processing across many durable instances (DESIGN.md §5i). One
// benchmark op is one message pushed, dispatched, handled, and
// committed, so ns/op inverts to sustained msgs/sec; the final
// per-instance drain calls (one replying message each, included in the
// measurement) guarantee every pushed message was actually processed,
// not merely enqueued. `make bench-statefun` aggregates these into
// BENCH_statefun.json; the table-level view is `crucial-bench -exp
// statefun` (EXPERIMENTS.md).

// benchCountMsg is the benchmark handler's state and reply body.
type benchCountMsg struct {
	N int64
}

// benchmarkStatefun pushes b.N messages round-robin across the given
// number of function instances and waits until every one is handled.
func benchmarkStatefun(b *testing.B, instances int, durable bool) {
	opts := Options{
		DSONodes: 4,
		Statefun: StatefunOptions{InProcess: true, Workers: 16},
	}
	if durable {
		opts.Durability = DefaultDurabilityPolicy()
	}
	rt, err := NewLocalRuntime(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = rt.Close() }()
	fn, err := rt.DeployStatefulFunction("bcount", func(c *FnCtx, m FnMsg) error {
		var st benchCountMsg
		if _, err := c.State(&st); err != nil {
			return err
		}
		switch m.Name() {
		case "add":
			st.N++
			return c.SetState(&st)
		case "get":
			return c.Reply(st)
		default:
			return fmt.Errorf("bench: unknown message %q", m.Name())
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	workers := instances
	if workers > 64 {
		workers = 64
	}
	b.ResetTimer()
	// Phase 1: fire-and-forget adds. Worker w owns instances w, w+W,
	// w+2W, ... so no two workers contend on one sender stream.
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	for w := 0; w < workers; w++ {
		share := b.N / workers
		if w < b.N%workers {
			share++
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			for k := 0; k < share; k++ {
				id := fmt.Sprintf("i%d", (w+k*workers)%instances)
				if err := fn.Send(ctx, id, "add", nil); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}(w, share)
	}
	wg.Wait()
	if firstErr != nil {
		b.Fatal(firstErr)
	}
	// Phase 2: drain barrier. Mailboxes are FIFO, so a reply to a "get"
	// pushed after the adds proves the instance's adds are all applied.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < instances; i += workers {
				var st benchCountMsg
				if err := fn.Call(ctx, fmt.Sprintf("i%d", i), "get", nil, &st); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		b.Fatal(firstErr)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
}

func BenchmarkStatefun100(b *testing.B)         { benchmarkStatefun(b, 100, false) }
func BenchmarkStatefun100Durable(b *testing.B)  { benchmarkStatefun(b, 100, true) }
func BenchmarkStatefun1000(b *testing.B)        { benchmarkStatefun(b, 1000, false) }
func BenchmarkStatefun1000Durable(b *testing.B) { benchmarkStatefun(b, 1000, true) }
