package crucial_test

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each iteration regenerates the experiment's report at smoke scale;
// cmd/crucial-bench runs the same experiments at full workload sizes.
//
//	go test -bench=. -benchmem
//	go run ./cmd/crucial-bench -exp all        # full-size reports

import (
	"io"
	"testing"

	"crucial/internal/bench"
)

// benchOpts compresses latencies hard; Quick shrinks the workloads.
func benchOpts() bench.Options {
	return bench.Options{Scale: 0.01, Quick: true}
}

func runBench(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(name, io.Discard, benchOpts()); err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
}

// BenchmarkTable2Latency regenerates Table 2 (storage access latency).
func BenchmarkTable2Latency(b *testing.B) { runBench(b, bench.ExpTable2) }

// BenchmarkFig2aThroughput regenerates Fig. 2a (simple vs complex ops).
func BenchmarkFig2aThroughput(b *testing.B) { runBench(b, bench.ExpFig2a) }

// BenchmarkFig2bMonteCarloScaling regenerates Fig. 2b (scalability).
func BenchmarkFig2bMonteCarloScaling(b *testing.B) { runBench(b, bench.ExpFig2b) }

// BenchmarkFig3KMeansScaleUp regenerates Fig. 3 (k-means scale-up).
func BenchmarkFig3KMeansScaleUp(b *testing.B) { runBench(b, bench.ExpFig3) }

// BenchmarkFig4LogReg regenerates Fig. 4 (logistic regression vs Spark).
func BenchmarkFig4LogReg(b *testing.B) { runBench(b, bench.ExpFig4) }

// BenchmarkFig5KMeansVsK regenerates Fig. 5 (k-means vs cluster count).
func BenchmarkFig5KMeansVsK(b *testing.B) { runBench(b, bench.ExpFig5) }

// BenchmarkTable3Costs regenerates Table 3 (monetary cost).
func BenchmarkTable3Costs(b *testing.B) { runBench(b, bench.ExpTable3) }

// BenchmarkFig6MapSync regenerates Fig. 6 (map-phase synchronization).
func BenchmarkFig6MapSync(b *testing.B) { runBench(b, bench.ExpFig6) }

// BenchmarkFig7aBarrier regenerates Fig. 7a (barrier wait time).
func BenchmarkFig7aBarrier(b *testing.B) { runBench(b, bench.ExpFig7a) }

// BenchmarkFig7bBreakdown regenerates Fig. 7b (phase breakdown).
func BenchmarkFig7bBreakdown(b *testing.B) { runBench(b, bench.ExpFig7b) }

// BenchmarkFig7cSantaClaus regenerates Fig. 7c (Santa Claus problem).
func BenchmarkFig7cSantaClaus(b *testing.B) { runBench(b, bench.ExpFig7c) }

// BenchmarkFig8Elasticity regenerates Fig. 8 (crash + elasticity).
func BenchmarkFig8Elasticity(b *testing.B) { runBench(b, bench.ExpFig8) }

// BenchmarkTable4LinesChanged regenerates Table 4 (porting effort).
func BenchmarkTable4LinesChanged(b *testing.B) { runBench(b, bench.ExpTable4) }

// BenchmarkAblationShipping regenerates the method-vs-data shipping
// ablation (DESIGN.md, paper Section 4.2).
func BenchmarkAblationShipping(b *testing.B) { runBench(b, bench.ExpAblationShipping) }

// BenchmarkAblationBlocking regenerates the blocking-vs-polling ablation.
func BenchmarkAblationBlocking(b *testing.B) { runBench(b, bench.ExpAblationBlocking) }
