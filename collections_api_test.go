package crucial

import "testing"

// Exercises the full surface of the collection proxies against a live
// runtime.
func TestListProxyFullSurface(t *testing.T) {
	rt := testRuntime(t, Options{})
	l := NewList[string]("api-list")
	rt.Bind(l)
	ctx := bg()

	if _, err := l.Add(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Add(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	if v, err := l.Get(ctx, 0); err != nil || v != "a" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if old, err := l.Set(ctx, 0, "z"); err != nil || old != "a" {
		t.Fatalf("Set = %q, %v", old, err)
	}
	if ok, err := l.Contains(ctx, "z"); err != nil || !ok {
		t.Fatalf("Contains = %v, %v", ok, err)
	}
	if n, err := l.Size(ctx); err != nil || n != 2 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if v, err := l.Remove(ctx, 1); err != nil || v != "b" {
		t.Fatalf("Remove = %q, %v", v, err)
	}
	if err := l.Clear(ctx); err != nil {
		t.Fatal(err)
	}
	all, err := l.GetAll(ctx)
	if err != nil || len(all) != 0 {
		t.Fatalf("GetAll after clear = %v, %v", all, err)
	}
}

func TestMapProxyFullSurface(t *testing.T) {
	rt := testRuntime(t, Options{})
	m := NewMap[int64]("api-map")
	rt.Bind(m)
	ctx := bg()

	if _, _, err := m.Put(ctx, "a", 1); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := m.PutIfAbsent(ctx, "a", 2); err != nil || ok || v != 1 {
		t.Fatalf("PutIfAbsent existing = %d, %v, %v", v, ok, err)
	}
	if v, ok, err := m.PutIfAbsent(ctx, "b", 2); err != nil || !ok || v != 2 {
		t.Fatalf("PutIfAbsent fresh = %d, %v, %v", v, ok, err)
	}
	if ok, err := m.ContainsKey(ctx, "b"); err != nil || !ok {
		t.Fatalf("ContainsKey = %v, %v", ok, err)
	}
	keys, err := m.Keys(ctx)
	if err != nil || len(keys) != 2 {
		t.Fatalf("Keys = %v, %v", keys, err)
	}
	if v, ok, err := m.Remove(ctx, "a"); err != nil || !ok || v != 1 {
		t.Fatalf("Remove = %d, %v, %v", v, ok, err)
	}
	if _, ok, err := m.Remove(ctx, "ghost"); err != nil || ok {
		t.Fatalf("Remove missing = %v, %v", ok, err)
	}
	if n, err := m.Size(ctx); err != nil || n != 1 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if err := m.Clear(ctx); err != nil {
		t.Fatal(err)
	}
	if n, err := m.Size(ctx); err != nil || n != 0 {
		t.Fatalf("Size after clear = %d, %v", n, err)
	}
}

func TestKVProxyFullSurface(t *testing.T) {
	rt := testRuntime(t, Options{})
	kv := NewKV("api-kv")
	rt.Bind(kv)
	ctx := bg()

	if ok, err := kv.Exists(ctx); err != nil || ok {
		t.Fatalf("Exists fresh = %v, %v", ok, err)
	}
	if _, ok, err := kv.Get(ctx); err != nil || ok {
		t.Fatalf("Get fresh = %v, %v", ok, err)
	}
	if err := kv.Put(ctx, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := kv.Get(ctx); err != nil || !ok || string(v) != "data" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if err := kv.Delete(ctx); err != nil {
		t.Fatal(err)
	}
	if ok, err := kv.Exists(ctx); err != nil || ok {
		t.Fatalf("Exists after delete = %v, %v", ok, err)
	}
}

func TestAtomicProxiesRemainingSurface(t *testing.T) {
	rt := testRuntime(t, Options{})
	ctx := bg()

	a := NewAtomicLong("api-long")
	rt.Bind(a)
	if _, err := a.GetAndAdd(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if v, err := a.DecrementAndGet(ctx); err != nil || v != 3 {
		t.Fatalf("DecrementAndGet = %d, %v", v, err)
	}
	if v, err := a.GetAndSet(ctx, 10); err != nil || v != 3 {
		t.Fatalf("GetAndSet = %d, %v", v, err)
	}
	if v, err := a.Multiply(ctx, 3); err != nil || v != 30 {
		t.Fatalf("Multiply = %d, %v", v, err)
	}
	if _, err := a.MultiplyLoop(ctx, 3, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SimulatedWork(ctx, 1); err != nil {
		t.Fatal(err)
	}

	i := NewAtomicInt("api-int")
	rt.Bind(i)
	if err := i.Set(ctx, 7); err != nil {
		t.Fatal(err)
	}
	if v, err := i.AddAndGet(ctx, 1); err != nil || v != 8 {
		t.Fatalf("AtomicInt AddAndGet = %d, %v", v, err)
	}
	if v, err := i.IncrementAndGet(ctx); err != nil || v != 9 {
		t.Fatalf("AtomicInt IncrementAndGet = %d, %v", v, err)
	}
	if ok, err := i.CompareAndSet(ctx, 9, 0); err != nil || !ok {
		t.Fatalf("AtomicInt CAS = %v, %v", ok, err)
	}
	if v, err := i.Get(ctx); err != nil || v != 0 {
		t.Fatalf("AtomicInt Get = %d, %v", v, err)
	}

	b := NewAtomicBoolean("api-bool")
	rt.Bind(b)
	if err := b.Set(ctx, true); err != nil {
		t.Fatal(err)
	}
	if v, err := b.GetAndSet(ctx, false); err != nil || !v {
		t.Fatalf("AtomicBoolean GetAndSet = %v, %v", v, err)
	}
	if ok, err := b.CompareAndSet(ctx, false, true); err != nil || !ok {
		t.Fatalf("AtomicBoolean CAS = %v, %v", ok, err)
	}

	r := NewAtomicReference[string]("api-ref")
	rt.Bind(r)
	if err := r.Set(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if v, err := r.GetAndSet(ctx, "y"); err != nil || v != "x" {
		t.Fatalf("reference GetAndSet = %q, %v", v, err)
	}
	if ok, err := r.CompareAndSet(ctx, "y", "z"); err != nil || !ok {
		t.Fatalf("reference CAS = %v, %v", ok, err)
	}

	ba := NewAtomicByteArray("api-bytes", 4)
	rt.Bind(ba)
	if n, err := ba.Length(ctx); err != nil || n != 4 {
		t.Fatalf("Length = %d, %v", n, err)
	}
	if err := ba.Set(ctx, 1, 0xAB); err != nil {
		t.Fatal(err)
	}
	if v, err := ba.Get(ctx, 1); err != nil || v != 0xAB {
		t.Fatalf("byte Get = %#x, %v", v, err)
	}
	if err := ba.SetAll(ctx, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if all, err := ba.GetAll(ctx); err != nil || len(all) != 2 {
		t.Fatalf("byte GetAll = %v, %v", all, err)
	}

	da := NewAtomicDoubleArray("api-doubles", 3)
	rt.Bind(da)
	if n, err := da.Length(ctx); err != nil || n != 3 {
		t.Fatalf("double Length = %d, %v", n, err)
	}
	if err := da.Set(ctx, 0, 1.5); err != nil {
		t.Fatal(err)
	}
	if v, err := da.AddAndGet(ctx, 0, 0.5); err != nil || v != 2 {
		t.Fatalf("double AddAndGet = %v, %v", v, err)
	}
	if v, err := da.Get(ctx, 0); err != nil || v != 2 {
		t.Fatalf("double Get = %v, %v", v, err)
	}
	if err := da.ScaleAll(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if err := da.FillZero(ctx); err != nil {
		t.Fatal(err)
	}
	if err := da.SetAll(ctx, []float64{9}); err != nil {
		t.Fatal(err)
	}

	add := NewDoubleAdder("api-adder")
	rt.Bind(add)
	if err := add.Add(ctx, 2.5); err != nil {
		t.Fatal(err)
	}
	if v, err := add.Sum(ctx); err != nil || v != 2.5 {
		t.Fatalf("adder Sum = %v, %v", v, err)
	}
	if n, err := add.Count(ctx); err != nil || n != 1 {
		t.Fatalf("adder Count = %d, %v", n, err)
	}
	if v, err := add.SumThenReset(ctx); err != nil || v != 2.5 {
		t.Fatalf("SumThenReset = %v, %v", v, err)
	}
	if err := add.Reset(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestSyncProxiesRemainingSurface(t *testing.T) {
	rt := testRuntime(t, Options{})
	ctx := bg()

	b := NewCyclicBarrier("api-barrier", 1)
	rt.Bind(b)
	if _, err := b.Await(ctx); err != nil {
		t.Fatal(err) // one party: trips immediately
	}
	if n, err := b.GetParties(ctx); err != nil || n != 1 {
		t.Fatalf("GetParties = %d, %v", n, err)
	}
	if n, err := b.GetNumberWaiting(ctx); err != nil || n != 0 {
		t.Fatalf("GetNumberWaiting = %d, %v", n, err)
	}
	if err := b.Reset(ctx); err != nil {
		t.Fatal(err)
	}

	s := NewSemaphore("api-sem", 3)
	rt.Bind(s)
	if err := s.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.ReleaseN(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if n, err := s.DrainPermits(ctx); err != nil || n != 4 {
		t.Fatalf("DrainPermits = %d, %v", n, err)
	}

	f := NewFuture[int64]("api-future")
	rt.Bind(f)
	if done, err := f.IsDone(ctx); err != nil || done {
		t.Fatalf("IsDone fresh = %v, %v", done, err)
	}
	if _, ok, err := f.GetNow(ctx); err != nil || ok {
		t.Fatalf("GetNow fresh = %v, %v", ok, err)
	}
	if err := f.Set(ctx, 42); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := f.GetNow(ctx); err != nil || !ok || v != 42 {
		t.Fatalf("GetNow = %d, %v, %v", v, ok, err)
	}
	ff := NewFuture[int64]("api-future-fail")
	rt.Bind(ff)
	if err := ff.Fail(ctx, "boom"); err != nil {
		t.Fatal(err)
	}
	if _, err := ff.Get(ctx); err == nil {
		t.Fatal("Get after Fail succeeded")
	}

	l := NewCountDownLatch("api-latch", 1)
	rt.Bind(l)
	if n, err := l.GetCount(ctx); err != nil || n != 1 {
		t.Fatalf("GetCount = %d, %v", n, err)
	}
	if _, err := l.CountDown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := l.Await(ctx); err != nil {
		t.Fatal(err)
	}
}
