package crucial

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"crucial/internal/client"
	"crucial/internal/cluster"
	"crucial/internal/core"
	"crucial/internal/durability"
	"crucial/internal/faas"
	"crucial/internal/netsim"
	"crucial/internal/storage/s3sim"
	"crucial/internal/telemetry"
)

// RunnerFunction is the name of the generic serverless function the
// runtime deploys: it decodes a Runnable, binds its shared-object proxies
// to the DSO layer, and runs it (paper Section 5).
const RunnerFunction = "crucial-runner"

// WritePolicy configures group commit on the SMR write path: how many
// concurrent mutations of one object may share a single ordering round
// (MaxBatch), how long a round may linger for stragglers (MaxDelay), and
// how many rounds per object may be pipelined (Pipeline). It is an alias
// of core.WritePolicy, the single policy type threaded through
// Options.Write, cluster.Options.Write, server.Config.Write and
// client.Config.Write. The zero value disables batching.
type WritePolicy = core.WritePolicy

// DefaultWritePolicy returns the tested group-commit defaults
// (MaxBatch 64, no linger, pipeline depth 2). A convenience re-export of
// core.DefaultWritePolicy.
func DefaultWritePolicy() WritePolicy { return core.DefaultWritePolicy() }

// RebalancePolicy configures the telemetry-driven elastic resharding loop
// (DESIGN.md §5g): how often the coordinator node scans the cluster's
// per-object windowed load, what counts as a sustained heavy hitter, and
// how aggressively hot objects are live-migrated onto the least-loaded
// nodes. It is an alias of core.RebalancePolicy, the single policy type
// threaded through Options.Rebalance, cluster.Options.Rebalance and
// server.Config.Rebalance. The zero value disables rebalancing.
type RebalancePolicy = core.RebalancePolicy

// DefaultRebalancePolicy returns the tested resharding defaults with the
// loop enabled (2s scans, 200 ops/s hot threshold at 4× the mean,
// sustained over 2 scans, 30s per-object cooldown). A convenience
// re-export of core.DefaultRebalancePolicy.
func DefaultRebalancePolicy() RebalancePolicy { return core.DefaultRebalancePolicy() }

// DurabilityPolicy configures the durability tier (DESIGN.md §5h): every
// DSO node appends committed mutations to a write-ahead log in cold
// storage (group-fsynced every SyncEvery appends), checkpoints object
// snapshots every SnapshotInterval, and — after a crash of any subset of
// nodes, up to the whole cluster — rebuilds its state from cold storage
// alone on restart. It is an alias of core.DurabilityPolicy, the single
// policy type threaded through Options.Durability, cluster.Options and
// server.Config. The zero value disables the tier entirely.
type DurabilityPolicy = core.DurabilityPolicy

// DefaultDurabilityPolicy returns the tested durability defaults with the
// tier enabled (group fsync every 64 appends, 2s snapshot cadence, 64 KiB
// WAL segments). A convenience re-export of core.DefaultDurabilityPolicy.
func DefaultDurabilityPolicy() DurabilityPolicy { return core.DefaultDurabilityPolicy() }

// Options configures a local runtime: an in-process FaaS platform plus an
// in-process DSO cluster wired over an in-memory network.
type Options struct {
	// DSONodes is the storage node count (default 1).
	DSONodes int
	// RF is the replication factor for persistent objects (default 1).
	RF int
	// Profile injects simulated service latencies (default none; use
	// netsim.AWS2019(scale) for paper-like behaviour).
	Profile *netsim.Profile
	// Registry supplies object types (default: built-ins). Add custom
	// types before building the runtime.
	Registry *TypeRegistry
	// FunctionMemoryMB sizes the runner function (default 1792, the
	// paper's 1-vCPU setting).
	FunctionMemoryMB int
	// FunctionTimeout is the modeled execution limit (default 15 min).
	FunctionTimeout time.Duration
	// Concurrency caps simultaneous function executions (default 1000).
	Concurrency int
	// FailureRate injects random invocation failures for fault-tolerance
	// experiments.
	FailureRate float64
	// DefaultRetry is the retry policy applied by NewThread.
	DefaultRetry RetryPolicy
	// LeaseTTL, when positive, enables the lease-based read path on every
	// DSO node (DESIGN.md §5d): read-only methods (RegisterReadOnlyMethods)
	// are served from client caches, follower replicas, or the primary's
	// local fast path instead of taking an SMR ordering round. Writes
	// synchronously invalidate outstanding leases, preserving
	// linearizability. Zero (the default) disables the read path entirely.
	LeaseTTL time.Duration
	// ClientCache, when true (and LeaseTTL is positive), attaches a
	// lease-based read cache to the runtime's DSO clients: cloud threads
	// and the master thread answer read-only calls on leased objects
	// locally, without any network round trip.
	ClientCache bool
	// Write is the group-commit policy for the SMR write path (DESIGN.md
	// §5e): concurrent mutations of one object coalesce into shared
	// ordering rounds, bounded by Write.MaxBatch and Write.MaxDelay, with
	// up to Write.Pipeline rounds in flight per object. The zero value
	// keeps the classic one-round-per-mutation path; DefaultWritePolicy()
	// enables batching with tested defaults.
	Write WritePolicy
	// Rebalance is the elastic resharding policy (DESIGN.md §5g): with
	// Enabled set (and telemetry on — the per-object trackers are the only
	// load signal), the DSO coordinator node watches cluster-wide windowed
	// object rates and live-migrates sustained heavy hitters onto the
	// least-loaded nodes, un-pinning them when they cool. The zero value
	// (the default) keeps placement purely hash-driven;
	// DefaultRebalancePolicy() enables it with tested defaults.
	Rebalance RebalancePolicy
	// Durability is the WAL-plus-snapshot durability tier (DESIGN.md §5h).
	// With Enabled set, the runtime provisions a simulated cold object
	// store shared by every DSO node; each node logs its committed
	// mutations there before acknowledging and checkpoints object
	// snapshots in the background, so state survives a crash of the whole
	// cluster. The zero value (the default) keeps state purely in memory;
	// DefaultDurabilityPolicy() enables the tier with tested defaults.
	Durability DurabilityPolicy
	// Statefun tunes the stateful-functions layer (DESIGN.md §5i):
	// dispatch concurrency, poll cadence, idle-instance GC and mailbox
	// capacity. The layer itself boots lazily on the first
	// DeployStatefulFunction; the zero value uses tested defaults.
	Statefun StatefunOptions
	// Telemetry, when non-nil, turns on end-to-end instrumentation: every
	// layer (cloud threads, FaaS platform, DSO client and servers) records
	// spans and metrics into this one bundle. Nil (the default) disables
	// all instrumentation at zero cost. Use telemetry.New().
	Telemetry *telemetry.Telemetry
	// EnableTelemetry builds a private telemetry bundle when Telemetry is
	// nil, so callers can opt in without importing internal/telemetry.
	// Setting the CRUCIAL_TELEMETRY environment variable to 1/true has the
	// same effect, letting experiments toggle instrumentation per run.
	EnableTelemetry bool
	// TelemetrySpanCapacity sizes the tracer's span ring when the runtime
	// builds the bundle itself (via EnableTelemetry or CRUCIAL_TELEMETRY);
	// it is ignored when an explicit Telemetry bundle is supplied. Zero
	// means telemetry.DefaultSpanCapacity (4096). The environment variable
	// CRUCIAL_SPAN_CAPACITY overrides a zero value. Memory bound: the ring
	// holds at most capacity spans at roughly 250 B each plus attribute and
	// timing maps, so the default ring tops out around 1–2 MB per process
	// and old spans are overwritten beyond that.
	TelemetrySpanCapacity int
}

// resolveTelemetry applies the enablement and capacity knobs: an explicit
// bundle always wins; otherwise EnableTelemetry or CRUCIAL_TELEMETRY builds
// one sized by TelemetrySpanCapacity or CRUCIAL_SPAN_CAPACITY.
func (o Options) resolveTelemetry() *telemetry.Telemetry {
	if o.Telemetry != nil {
		return o.Telemetry
	}
	if !o.EnableTelemetry && !envBool("CRUCIAL_TELEMETRY") {
		return nil
	}
	capacity := o.TelemetrySpanCapacity
	if capacity <= 0 {
		if v, err := strconv.Atoi(os.Getenv("CRUCIAL_SPAN_CAPACITY")); err == nil && v > 0 {
			capacity = v
		}
	}
	return telemetry.NewWithCapacity(capacity)
}

// envBool reports whether an environment variable is set to a truthy value.
func envBool(name string) bool {
	v, err := strconv.ParseBool(os.Getenv(name))
	return err == nil && v
}

// asColdStore converts the optional concrete store to the durability
// interface without producing a typed-nil interface value when the tier
// is disabled.
func asColdStore(s *s3sim.Store) durability.Storage {
	if s == nil {
		return nil
	}
	return s
}

// Runtime is a complete local Crucial deployment: the FaaS platform
// executing cloud threads and the DSO cluster holding shared state.
type Runtime struct {
	platform *faas.Platform
	clu      *cluster.Cluster

	// fnClient is the DSO connection used inside function containers;
	// masterClient is the client application's own connection (Fig. 1:
	// the client has access to the same state).
	fnClient     *client.Client
	masterClient *client.Client

	functionName string
	defaultRetry RetryPolicy
	profile      *netsim.Profile
	coldStore    *s3sim.Store

	// Telemetry handles; nil/no-op when Options.Telemetry was unset.
	tel          *telemetry.Telemetry
	instrumented bool
	tracer       *telemetry.Tracer
	cSpawns      *telemetry.Counter
	cRetries     *telemetry.Counter
	hLifetime    *telemetry.Histogram

	threadSeq atomic.Int64

	// Stateful-functions layer (statefun.go), built lazily on the first
	// DeployStatefulFunction.
	sfMu   sync.Mutex
	sf     *statefunState
	sfOpts StatefunOptions
}

// NewLocalRuntime boots the platform and cluster.
func NewLocalRuntime(opts Options) (*Runtime, error) {
	if opts.Profile == nil {
		opts.Profile = netsim.Zero()
	}
	opts.Telemetry = opts.resolveTelemetry()
	var coldStore *s3sim.Store
	if opts.Durability.Enabled {
		var metrics *telemetry.Registry
		if opts.Telemetry != nil {
			metrics = opts.Telemetry.Metrics()
		}
		coldStore = s3sim.New(s3sim.Options{Profile: opts.Profile, Metrics: metrics})
	}
	clu, err := cluster.StartLocal(cluster.Options{
		Nodes:       opts.DSONodes,
		RF:          opts.RF,
		Profile:     opts.Profile,
		Registry:    opts.Registry,
		Telemetry:   opts.Telemetry,
		LeaseTTL:    opts.LeaseTTL,
		ClientCache: opts.ClientCache && opts.LeaseTTL > 0,
		Write:       opts.Write,
		Rebalance:   opts.Rebalance,
		Durability:  opts.Durability,
		ColdStore:   asColdStore(coldStore),
	})
	if err != nil {
		return nil, fmt.Errorf("crucial: start DSO cluster: %w", err)
	}

	rt := &Runtime{
		clu:          clu,
		functionName: RunnerFunction,
		defaultRetry: opts.DefaultRetry,
		profile:      opts.Profile,
		coldStore:    coldStore,
		tel:          opts.Telemetry,
		sfOpts:       opts.Statefun,
	}
	if opts.Telemetry != nil {
		rt.instrumented = true
		rt.tracer = opts.Telemetry.Tracer()
		m := opts.Telemetry.Metrics()
		rt.cSpawns = m.Counter(telemetry.MetThreadSpawns)
		rt.cRetries = m.Counter(telemetry.MetThreadRetries)
		rt.hLifetime = m.Histogram(telemetry.HistThreadLifetime)
	}
	rt.platform = faas.NewPlatform(faas.Options{
		Profile:     opts.Profile,
		Concurrency: opts.Concurrency,
		Telemetry:   opts.Telemetry,
	})
	if rt.fnClient, err = clu.NewClient(); err != nil {
		_ = clu.Close()
		return nil, err
	}
	if rt.masterClient, err = clu.NewClient(); err != nil {
		_ = rt.fnClient.Close()
		_ = clu.Close()
		return nil, err
	}
	err = rt.platform.Deploy(RunnerFunction, rt.runnerHandler, faas.FunctionConfig{
		MemoryMB:    opts.FunctionMemoryMB,
		Timeout:     opts.FunctionTimeout,
		FailureRate: opts.FailureRate,
	})
	if err != nil {
		_ = rt.Close()
		return nil, err
	}
	return rt, nil
}

// runnerHandler is the generic function body: decode, weave, run.
func (rt *Runtime) runnerHandler(ctx context.Context, payload []byte) ([]byte, error) {
	env, err := decodeThreadEnv(payload)
	if err != nil {
		return nil, err
	}
	BindShared(rt.fnClient, env.R)
	tc := &TC{ctx: ctx, threadID: env.ID, invoker: rt.fnClient}
	if err := env.R.Run(tc); err != nil {
		// The return payload is empty unless an error occurs; errors are
		// re-thrown to the invoker (paper Section 5).
		return nil, err
	}
	return nil, nil
}

// Bind attaches proxies used by the application's master thread (outside
// any cloud function) to the runtime's own DSO client, e.g. to read the
// final counter after joining all threads (Listing 1, line 25).
func (rt *Runtime) Bind(targets ...any) {
	BindShared(rt.masterClient, targets...)
}

// Invoker returns the master thread's DSO client.
func (rt *Runtime) Invoker() core.Invoker { return rt.masterClient }

// Platform exposes the FaaS platform (stats, prewarming, extra function
// deployments).
func (rt *Runtime) Platform() *faas.Platform { return rt.platform }

// Cluster exposes the DSO cluster (membership experiments).
func (rt *Runtime) Cluster() *cluster.Cluster { return rt.clu }

// Profile returns the latency profile in effect.
func (rt *Runtime) Profile() *netsim.Profile { return rt.profile }

// ColdStore returns the simulated cold object store backing the
// durability tier, or nil when Options.Durability was disabled. Useful
// for inspecting request/byte totals (storage cost accounting) and for
// restarting a cluster against the same durable state in experiments.
func (rt *Runtime) ColdStore() *s3sim.Store { return rt.coldStore }

// Telemetry returns the runtime's telemetry bundle (nil when disabled).
func (rt *Runtime) Telemetry() *telemetry.Telemetry { return rt.tel }

// Metrics snapshots every counter, gauge and latency histogram recorded so
// far across all layers. The snapshot is empty when telemetry is disabled.
func (rt *Runtime) Metrics() telemetry.Snapshot { return rt.tel.Snapshot() }

// Trace returns the recorded spans, oldest first (empty when telemetry is
// disabled). Spans from one logical cloud-thread invocation share a
// TraceID: thread → faas.invoke → client.invoke → server.invoke.
func (rt *Runtime) Trace() []telemetry.SpanData { return rt.tel.Tracer().Spans() }

// HotObjects snapshots the per-object heavy-hitter tracker: the top-K
// most-touched shared objects with their call/invoke/apply counts,
// read/write mix, payload bytes and latency percentiles, sorted hottest
// first (empty when telemetry is disabled). See DESIGN.md §5f.
func (rt *Runtime) HotObjects() telemetry.ObjectsSnapshot {
	return rt.tel.Objects().Snapshot()
}

// Prewarm provisions n warm runner containers, excluding cold starts from
// a measurement (the paper's global barrier before measuring).
func (rt *Runtime) Prewarm(n int) error {
	return rt.platform.Prewarm(rt.functionName, n)
}

// Close tears the runtime down.
func (rt *Runtime) Close() error {
	rt.closeStatefun()
	var firstErr error
	if rt.fnClient != nil {
		if err := rt.fnClient.Close(); err != nil {
			firstErr = err
		}
	}
	if rt.masterClient != nil {
		if err := rt.masterClient.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if rt.clu != nil {
		if err := rt.clu.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
