// Command dso-server runs one DSO storage node over TCP with static
// membership: every node is started with the full member list (id=addr
// pairs) and serves shared objects for its share of the consistent-hashing
// ring. This is the fixed-deployment analog of the paper's explicitly
// managed storage layer (Section 5: "the deployment of the storage layer
// is explicitly managed, like AWS ElastiCache").
//
// Usage (3-node cluster on one host):
//
//	dso-server -id n1 -members n1=:7001,n2=:7002,n3=:7003 -rf 2 &
//	dso-server -id n2 -members n1=:7001,n2=:7002,n3=:7003 -rf 2 &
//	dso-server -id n3 -members n1=:7001,n2=:7002,n3=:7003 -rf 2 &
//
// Dynamic membership (crash detection, elastic scaling, Fig. 8) is
// exercised by the in-process cluster harness; the TCP mode keeps
// membership static.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"crucial/internal/core"
	"crucial/internal/membership"
	"crucial/internal/objects"
	"crucial/internal/ring"
	"crucial/internal/rpc"
	"crucial/internal/server"
	"crucial/internal/statefun"
	"crucial/internal/storage/s3sim"
	"crucial/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id       = flag.String("id", "", "this node's id (must appear in -members)")
		members  = flag.String("members", "", "comma-separated id=addr pairs for the whole cluster")
		rf       = flag.Int("rf", 1, "replication factor for persistent objects")
		telem    = flag.Bool("telemetry", false, "record spans and latency histograms (served via `dso-cli stats`)")
		chaosOn  = flag.Bool("chaos", false, "accept `dso-cli chaos crash/restart` commands: a supervisor bounces this node in-process")
		crashFor = flag.Duration("chaos-restart-after", 3*time.Second, "downtime before the supervisor revives a chaos-crashed node (restart is immediate)")
		httpAddr = flag.String("http", "", "serve /metrics (Prometheus), /traces (trace-event JSON) and /debug/pprof on this address, e.g. :8080")
		leaseTTL = flag.Duration("lease-ttl", 0, "enable the lease-based read path with this lease duration (e.g. 500ms); 0 disables leases")
		wrBatch  = flag.Int("write-batch", 0, "group-commit batch size: coalesce up to this many concurrent writes per object into one ordering round; 0 disables batching")
		wrDelay  = flag.Duration("write-delay", 0, "group-commit linger: hold a non-full batch this long for stragglers (requires -write-batch)")
		wrPipe   = flag.Int("write-pipeline", 0, "group-commit pipeline depth: outstanding ordering rounds per object (default 2 when -write-batch is set)")
		rebal    = flag.Bool("rebalance", false, "enable the elastic resharding loop: the coordinator live-migrates sustained heavy hitters (requires -telemetry for a load signal)")
		rebalHot = flag.Float64("rebalance-hot-rate", 0, "rebalancer hot threshold in ops/s (default 200)")
		rebalInt = flag.Duration("rebalance-interval", 0, "rebalancer scan period (default 2s)")
		walOn    = flag.Bool("wal", false, "enable the durability tier: WAL + snapshots in an in-process simulated cold store; chaos restarts recover state from it")
		walSync  = flag.Int("wal-sync-every", 0, "group-fsync the WAL every N appends (default 64, 1 = sync every op, negative = snapshot-only durability)")
		walSnap  = flag.Duration("wal-snapshot-interval", 0, "background checkpoint cadence (default 2s, negative disables snapshots)")
		walSeg   = flag.Int("wal-segment-bytes", 0, "WAL segment roll threshold in bytes (default 64KiB)")
		logSpec  = flag.String("log", "info", "log level spec: one level for all components (debug|info|warn|error) or component=level pairs")
	)
	flag.Parse()

	if err := telemetry.ConfigureLogging(*logSpec); err != nil {
		fmt.Fprintln(os.Stderr, "dso-server:", err)
		return 1
	}
	logger := telemetry.Logger(telemetry.CompServer)

	addrs, err := parseMembers(*members)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dso-server:", err)
		return 1
	}
	addr, ok := addrs[ring.NodeID(*id)]
	if !ok {
		fmt.Fprintf(os.Stderr, "dso-server: id %q not in member list\n", *id)
		return 1
	}

	// Static membership: seed a local directory with every member in
	// deterministic order so all nodes compute the same placement.
	dir := membership.NewDirectory(time.Hour)
	ids := make([]ring.NodeID, 0, len(addrs))
	for n := range addrs {
		ids = append(ids, n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, n := range ids {
		dir.Join(n, addrs[n])
	}

	var tel *telemetry.Telemetry
	if *telem {
		tel = telemetry.New()
	}
	if *httpAddr != "" {
		if tel == nil {
			logger.Warn("serving -http without -telemetry: /metrics and /traces will be empty, pprof still works")
		}
		srv := &http.Server{Addr: *httpAddr, Handler: telemetry.HTTPHandler(*id, tel)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("http endpoint failed", "addr", *httpAddr, "err", err)
			}
		}()
		defer func() { _ = srv.Close() }()
		logger.Info("observability endpoint up", "addr", *httpAddr,
			"paths", "/metrics /traces /debug/pprof")
	}
	// The three -write-* flags round-trip the same core.WritePolicy struct
	// the embedded runtime takes via Options.Write. -write-batch alone
	// enables batching with the library's default pipeline depth.
	write := core.WritePolicy{MaxBatch: *wrBatch, MaxDelay: *wrDelay, Pipeline: *wrPipe}
	if write.Batching() && write.Pipeline <= 0 {
		write.Pipeline = core.DefaultWritePolicy().Pipeline
	}
	// TCP nodes serve stateful-function mailboxes too (DESIGN.md §5i).
	registry := objects.BuiltinRegistry()
	statefun.RegisterTypes(registry)
	cfg := server.Config{
		ID:        ring.NodeID(*id),
		Addr:      addr,
		Transport: rpc.TCP{},
		Registry:  registry,
		Directory: dir,
		RF:        *rf,
		LeaseTTL:  *leaseTTL,
		Write:     write,
		Telemetry: tel,
	}
	if *rebal {
		// Same pattern as -write-*: the flags round-trip core.RebalancePolicy,
		// unset knobs fall back to the library defaults via Normalized.
		cfg.Rebalance = core.RebalancePolicy{
			Enabled:  true,
			HotRate:  *rebalHot,
			Interval: *rebalInt,
		}.Normalized()
		if tel == nil {
			logger.Warn("-rebalance without -telemetry: no load signal, the rebalancer will never migrate")
		}
	}
	if *walOn {
		// The -wal-* flags round-trip core.DurabilityPolicy. The cold store
		// is a per-process s3sim instance: it outlives chaos crashes, so a
		// chaos-bounced node genuinely recovers its state from the WAL and
		// checkpoints rather than restarting empty.
		cfg.Durability = core.DurabilityPolicy{
			Enabled:          true,
			SyncEvery:        *walSync,
			SnapshotInterval: *walSnap,
			SegmentBytes:     *walSeg,
		}.Normalized()
		var metrics *telemetry.Registry
		if tel != nil {
			metrics = tel.Metrics()
		}
		cfg.ColdStore = s3sim.New(s3sim.Options{Metrics: metrics})
		logger.Info("durability tier enabled",
			"sync_every", cfg.Durability.SyncEvery,
			"snapshot_interval", cfg.Durability.SnapshotInterval,
			"segment_bytes", cfg.Durability.SegmentBytes)
	}
	// The supervisor channel decouples the KindChaos RPC handler from the
	// node teardown it triggers: the handler just enqueues the op and the
	// main loop below does the bouncing.
	lifecycle := make(chan string, 4)
	if *chaosOn {
		cfg.OnChaosLifecycle = func(op string) error {
			select {
			case lifecycle <- op:
				return nil
			default:
				return fmt.Errorf("chaos lifecycle command %q dropped: supervisor busy", op)
			}
		}
	}
	node, err := server.Start(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dso-server:", err)
		return 1
	}
	logger.Info("node serving",
		"node", *id, "addr", addr, "cluster_size", len(addrs), "rf", *rf, "chaos", *chaosOn)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	for {
		select {
		case <-sig:
			logger.Info("shutting down")
			if err := node.Crash(); err != nil {
				logger.Error("shutdown failed", "err", err)
				return 1
			}
			return 0
		case op := <-lifecycle:
			// "restart" bounces immediately; "crash" leaves the node down
			// for -chaos-restart-after so peers and clients feel the
			// outage. Static membership means peers keep this node in
			// their views throughout — the revived node re-serves its ring
			// share as soon as it is back up.
			logger.Warn("chaos lifecycle", "op", op)
			if err := node.Crash(); err != nil {
				logger.Error("chaos crash failed", "err", err)
				return 1
			}
			if op == "crash" {
				time.Sleep(*crashFor)
			}
			node, err = server.Start(cfg)
			if err != nil {
				logger.Error("chaos restart failed", "err", err)
				return 1
			}
			logger.Info("node revived", "node", *id, "addr", addr)
		}
	}
}

// parseMembers decodes "id=addr,id=addr".
func parseMembers(s string) (map[ring.NodeID]string, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -members")
	}
	out := make(map[ring.NodeID]string)
	for _, pair := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad member %q, want id=addr", pair)
		}
		out[ring.NodeID(id)] = addr
	}
	return out, nil
}
