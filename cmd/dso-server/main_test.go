package main

import "testing"

func TestParseMembers(t *testing.T) {
	got, err := parseMembers("n1=:7001, n2=:7002")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["n1"] != ":7001" || got["n2"] != ":7002" {
		t.Fatalf("parseMembers = %v", got)
	}
}

func TestParseMembersErrors(t *testing.T) {
	for _, in := range []string{"", "n1", "=addr", "n1="} {
		if _, err := parseMembers(in); err == nil {
			t.Errorf("parseMembers(%q) accepted", in)
		}
	}
}
