// Command crucial-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	crucial-bench -list
//	crucial-bench -exp table2
//	crucial-bench -exp all -scale 0.1
//	crucial-bench stages -report
//
// The experiment may be given positionally (`crucial-bench stages -quick`)
// or via -exp. Scale compresses simulated latencies and modeled compute;
// reports are always printed in modeled (paper-scale) units. -quick shrinks
// workloads to smoke-test size. -report appends the critical-path
// attribution (where trace wall time goes, by category) for instrumented
// experiments.
package main

import (
	"flag"
	"fmt"
	"os"

	"crucial/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp      = flag.String("exp", "all", "experiment id or 'all'")
		scale    = flag.Float64("scale", 0.1, "time compression factor (0 < scale <= 1)")
		quick    = flag.Bool("quick", false, "shrink workloads to smoke-test size")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		jsonPath = flag.String("json", "", "write telemetry metrics snapshots as JSON to this file ('-' for stdout)")
		report   = flag.Bool("report", false, "append critical-path attribution for instrumented experiments")
	)
	// Accept the experiment id positionally (`crucial-bench stages -report`):
	// the flag package stops at the first non-flag argument, so lift it into
	// -exp before parsing.
	argv := os.Args[1:]
	if len(argv) > 0 && len(argv[0]) > 0 && argv[0][0] != '-' {
		argv = append([]string{"-exp", argv[0]}, argv[1:]...)
	}
	_ = flag.CommandLine.Parse(argv)

	if *list {
		for _, name := range bench.Names() {
			fmt.Println(name)
		}
		for _, name := range bench.AblationNames() {
			fmt.Println(name)
		}
		fmt.Println(bench.ExpStages)
		fmt.Println(bench.ExpChaos)
		fmt.Println(bench.ExpCache)
		fmt.Println(bench.ExpReshard)
		fmt.Println(bench.ExpStatefun)
		return 0
	}
	opts := bench.Options{Scale: *scale, Quick: *quick, Report: *report}
	if *jsonPath == "-" {
		opts.JSON = os.Stdout
	} else if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crucial-bench:", err)
			return 1
		}
		defer func() { _ = f.Close() }()
		opts.JSON = f
	}
	var err error
	if *exp == "all" {
		err = bench.RunAll(os.Stdout, opts)
	} else {
		err = bench.Run(*exp, os.Stdout, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "crucial-bench:", err)
		return 1
	}
	return 0
}
