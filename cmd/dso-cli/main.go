// Command dso-cli is a one-shot client for a running DSO cluster (see
// cmd/dso-server): it invokes one method on one shared object and prints
// the results. Useful for poking at a deployment.
//
// Examples:
//
//	dso-cli -members n1=:7001,n2=:7002 -type AtomicLong -key counter -method AddAndGet -arg 5
//	dso-cli -members n1=:7001,n2=:7002 -type Map -key users -method Put -arg alice -arg admin
//	dso-cli -members n1=:7001,n2=:7002 -type CyclicBarrier -key b -init 3 -method Await
//	dso-cli stats -members n1=:7001,n2=:7002
//	dso-cli top -members n1=:7001,n2=:7002 -rf 2 -n 10
//	dso-cli cache -members n1=:7001,n2=:7002
//	dso-cli trace -members n1=:7001,n2=:7002 -o trace.json
//	dso-cli chaos partition -members n1=:7001,n2=:7002 -group n1 -group n2
//	dso-cli chaos restart -members n1=:7001,n2=:7002 -node n2
//	dso-cli rebalance status -members n1=:7001,n2=:7002
//	dso-cli migrate -members n1=:7001,n2=:7002 -type AtomicLong -key hot -targets n2
//	dso-cli migrate -members n1=:7001,n2=:7002 -type AtomicLong -key hot -unpin
//
// The stats subcommand fetches every node's counters and telemetry
// snapshot and prints a per-node breakdown plus a cluster-wide merge
// (latency histograms with p50/p95/p99 when the cluster runs
// instrumented). Nodes that are down are skipped with a warning; the
// command fails only when no node answers.
//
// The top subcommand drains every node's per-object heavy-hitter tracker
// (KindObjectStats), merges the snapshots cluster-wide, and renders the
// hottest objects with their invocation rate, read/write mix, latency
// percentiles (p50/p99/p999) and owning replica group on the current
// ring. Pass -rf to match the servers' replication factor so the GROUP
// column shows the true replica set.
//
// The cache subcommand prints the read-path slice of the same counters:
// lease grants/refusals/revocations, expiry waits on the write path, and
// reads served without an SMR round (primary-local and follower reads).
// Meaningful when nodes run with -lease-ttl and -telemetry.
//
// The trace subcommand drains the span ring of every reachable node
// (clock-aligned, merged by trace ID) and writes Chrome/Perfetto
// trace-event JSON — open the file at https://ui.perfetto.dev or
// chrome://tracing. Use `-o -` for stdout.
//
// Arguments are passed as int64 when they parse as integers, float64 when
// they parse as decimals, and strings otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"crucial/internal/client"
	"crucial/internal/collector"
	"crucial/internal/core"
	"crucial/internal/costmodel"
	"crucial/internal/membership"
	"crucial/internal/ring"
	"crucial/internal/rpc"
	"crucial/internal/server"
	"crucial/internal/telemetry"
)

// argList collects repeatable -arg/-init flags.
type argList []any

func (a *argList) String() string { return fmt.Sprint([]any(*a)) }

// Set parses one value: int64, then float64, then string.
func (a *argList) Set(s string) error {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		*a = append(*a, n)
		return nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		*a = append(*a, f)
		return nil
	}
	*a = append(*a, s)
	return nil
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "stats":
			os.Exit(runStats(os.Args[2:]))
		case "top":
			os.Exit(runTop(os.Args[2:]))
		case "cache":
			os.Exit(runCache(os.Args[2:]))
		case "trace":
			os.Exit(runTrace(os.Args[2:]))
		case "chaos":
			os.Exit(runChaos(os.Args[2:]))
		case "rebalance":
			os.Exit(runRebalance(os.Args[2:]))
		case "migrate":
			os.Exit(runMigrate(os.Args[2:]))
		}
	}
	os.Exit(run())
}

// runTrace implements `dso-cli trace`: collect every reachable node's span
// ring (clock-aligned over dedicated probes), merge by trace ID, and export
// Chrome/Perfetto trace-event JSON.
func runTrace(argv []string) int {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	var (
		members = fs.String("members", "", "comma-separated id=addr pairs of the cluster")
		timeout = fs.Duration("timeout", 30*time.Second, "per-node RPC timeout")
		out     = fs.String("o", "trace.json", "output file for trace-event JSON (\"-\" for stdout)")
	)
	_ = fs.Parse(argv)

	view, err := staticView(*members)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dso-cli:", err)
		return 1
	}

	col := &collector.Collector{}
	reached := 0
	for _, id := range view.Members {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		err := col.FetchNode(ctx, rpc.TCP{}, view.Addrs[id])
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dso-cli: warning: node %s unreachable, skipping: %v\n", id, err)
			continue
		}
		reached++
	}
	if reached == 0 {
		fmt.Fprintln(os.Stderr, "dso-cli: no node answered; nothing to export")
		return 1
	}

	spans := col.Spans()
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dso-cli:", err)
			return 1
		}
		defer func() { _ = f.Close() }()
		w = f
	}
	if err := telemetry.WriteTraceEvents(w, spans); err != nil {
		fmt.Fprintln(os.Stderr, "dso-cli: export:", err)
		return 1
	}
	if *out != "-" {
		fmt.Printf("wrote %d spans from %d/%d nodes to %s (open at https://ui.perfetto.dev)\n",
			len(spans), reached, len(view.Members), *out)
	}
	return 0
}

// runChaos implements `dso-cli chaos <op>`: fault-injection commands for a
// running cluster.
//
//	dso-cli chaos partition -members ... -group n1 -group n2,n3
//	dso-cli chaos partition-one-way -members ... -from n1 -to n2,n3
//	dso-cli chaos heal -members ...
//	dso-cli chaos crash -members ... -node n2
//	dso-cli chaos restart -members ... -node n2
//
// Partition commands are broadcast to every member (each node applies them
// to its local chaos engine); crash/restart go to the named node only,
// whose supervisor (dso-server -chaos) bounces it.
func runChaos(argv []string) int {
	if len(argv) == 0 {
		fmt.Fprintln(os.Stderr, "dso-cli chaos: missing op (partition|partition-one-way|heal|crash|restart)")
		return 1
	}
	op := argv[0]
	fs := flag.NewFlagSet("chaos "+op, flag.ExitOnError)
	var (
		members = fs.String("members", "", "comma-separated id=addr pairs of the cluster")
		node    = fs.String("node", "", "target node for crash/restart")
		from    = fs.String("from", "", "comma-separated source group for partition-one-way")
		to      = fs.String("to", "", "comma-separated destination group for partition-one-way")
		timeout = fs.Duration("timeout", 10*time.Second, "per-node RPC timeout")
		groups  groupList
	)
	fs.Var(&groups, "group", "comma-separated partition group (repeatable)")
	_ = fs.Parse(argv[1:])

	view, err := staticView(*members)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dso-cli:", err)
		return 1
	}

	cmd := server.ChaosCmd{Op: op}
	targets := view.Members
	switch op {
	case "partition":
		if len(groups) < 2 {
			fmt.Fprintln(os.Stderr, "dso-cli chaos partition: need at least two -group")
			return 1
		}
		cmd.Groups = groups
	case "partition-one-way":
		cmd.From = splitGroup(*from)
		cmd.To = splitGroup(*to)
		if len(cmd.From) == 0 || len(cmd.To) == 0 {
			fmt.Fprintln(os.Stderr, "dso-cli chaos partition-one-way: need -from and -to")
			return 1
		}
	case "heal":
	case "crash", "restart":
		if *node == "" {
			fmt.Fprintf(os.Stderr, "dso-cli chaos %s: need -node\n", op)
			return 1
		}
		if _, ok := view.Addrs[ring.NodeID(*node)]; !ok {
			fmt.Fprintf(os.Stderr, "dso-cli chaos: node %q not in member list\n", *node)
			return 1
		}
		targets = []ring.NodeID{ring.NodeID(*node)}
	default:
		fmt.Fprintf(os.Stderr, "dso-cli chaos: unknown op %q\n", op)
		return 1
	}

	payload, err := core.EncodeValue(cmd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dso-cli:", err)
		return 1
	}
	applied := 0
	for _, id := range targets {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		err := sendChaos(ctx, view.Addrs[id], payload)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dso-cli: warning: node %s: %v\n", id, err)
			continue
		}
		applied++
	}
	if applied == 0 {
		fmt.Fprintln(os.Stderr, "dso-cli: no node accepted the chaos command")
		return 1
	}
	fmt.Printf("chaos %s applied on %d/%d node(s)\n", op, applied, len(targets))
	return 0
}

// sendChaos performs one KindChaos round-trip against a node.
func sendChaos(ctx context.Context, addr string, payload []byte) error {
	conn, err := rpc.TCP{}.Dial(addr)
	if err != nil {
		return err
	}
	rc := rpc.NewClient(conn)
	defer func() { _ = rc.Close() }()
	_, err = rc.Call(ctx, server.KindChaos, payload)
	return err
}

// groupList collects repeatable -group flags, each a comma-separated node
// list.
type groupList [][]string

func (g *groupList) String() string { return fmt.Sprint([][]string(*g)) }

func (g *groupList) Set(s string) error {
	grp := splitGroup(s)
	if len(grp) == 0 {
		return fmt.Errorf("empty group")
	}
	*g = append(*g, grp)
	return nil
}

func splitGroup(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// runStats implements `dso-cli stats`: one KindStats RPC per member, a
// per-node report, and a merged cluster-wide metrics snapshot.
func runStats(argv []string) int {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	var (
		members = fs.String("members", "", "comma-separated id=addr pairs of the cluster")
		timeout = fs.Duration("timeout", 30*time.Second, "per-node RPC timeout")
	)
	_ = fs.Parse(argv)

	view, err := staticView(*members)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dso-cli:", err)
		return 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var merged telemetry.Snapshot
	reached := 0
	for _, id := range view.Members {
		snap, err := fetchSnapshot(ctx, view.Addrs[id])
		if err != nil {
			// A down node must not hide the rest of the cluster: warn,
			// skip, and report a partial merge below.
			fmt.Fprintf(os.Stderr, "dso-cli: warning: node %s unreachable, skipping: %v\n", id, err)
			continue
		}
		reached++
		fmt.Printf("node %s: objects=%d invocations=%d transfers=%d smr_ops=%d\n",
			snap.ID, snap.Objects, snap.Stats.Invocations, snap.Stats.Transfers, snap.Stats.SMROps)
		if !snap.Metrics.Empty() {
			fmt.Print(indent(snap.Metrics.String(), "  "))
		}
		merged = merged.Merge(snap.Metrics)
	}
	if reached == 0 {
		fmt.Fprintln(os.Stderr, "dso-cli: no node answered")
		return 1
	}
	if !merged.Empty() && len(view.Members) > 1 {
		fmt.Printf("cluster (merged, %d/%d nodes):\n", reached, len(view.Members))
		fmt.Print(indent(merged.String(), "  "))
	}
	printStorageCost(merged.Counters)
	return 0
}

// printStorageCost prices the durability tier's cold-storage traffic at
// the paper's 2019 S3 rates (Table 3 vintage): every WAL flush, snapshot
// blob and manifest write is a PUT-class request, every recovery read a
// GET. Storage rent is omitted — the log is truncated behind each
// checkpoint, so resident bytes stay near one checkpoint's size and the
// request charges dominate at experiment timescales.
func printStorageCost(counters map[string]uint64) {
	puts := counters[telemetry.MetStoragePuts] + counters[telemetry.MetStorageLists]
	gets := counters[telemetry.MetStorageGets]
	if puts == 0 && gets == 0 {
		return
	}
	bytes := counters[telemetry.MetStoragePutBytes]
	cost := costmodel.S3Cost(puts, gets, 0, 0)
	fmt.Printf("storage (durability tier): %d put/list, %d get, %.1f MB written, est. $%.6f in S3 requests\n",
		puts, gets, float64(bytes)/(1<<20), cost)
}

// cachePrefixes selects the read-path metrics out of a node snapshot:
// server-side lease-table counters plus any cache.* counters a node-local
// cache might report.
var cachePrefixes = []string{"server.lease", "server.follower_reads", "server.local_reads", "cache."}

// runCache implements `dso-cli cache`: the lease/read-path slice of every
// node's counters — grants and refusals, synchronous revocations, expiry
// waits on the write path, and how many reads were answered without an SMR
// round (locally at the primary or by a follower).
func runCache(argv []string) int {
	fs := flag.NewFlagSet("cache", flag.ExitOnError)
	var (
		members = fs.String("members", "", "comma-separated id=addr pairs of the cluster")
		timeout = fs.Duration("timeout", 30*time.Second, "per-node RPC timeout")
	)
	_ = fs.Parse(argv)

	view, err := staticView(*members)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dso-cli:", err)
		return 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	merged := make(map[string]uint64)
	reached := 0
	for _, id := range view.Members {
		snap, err := fetchSnapshot(ctx, view.Addrs[id])
		if err != nil {
			fmt.Fprintf(os.Stderr, "dso-cli: warning: node %s unreachable, skipping: %v\n", id, err)
			continue
		}
		reached++
		rows := cacheCounters(snap.Metrics.Counters)
		fmt.Printf("node %s:\n", snap.ID)
		if len(rows) == 0 {
			fmt.Println("  (no lease activity — is the node running with -lease-ttl and -telemetry?)")
			continue
		}
		printCounterRows(rows)
		for k, v := range rows {
			merged[k] += v
		}
	}
	if reached == 0 {
		fmt.Fprintln(os.Stderr, "dso-cli: no node answered")
		return 1
	}
	if len(merged) > 0 && len(view.Members) > 1 {
		fmt.Printf("cluster (merged, %d/%d nodes):\n", reached, len(view.Members))
		printCounterRows(merged)
	}
	return 0
}

// cacheCounters filters a counter map down to the read-path slice.
func cacheCounters(counters map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64)
	for name, v := range counters {
		for _, p := range cachePrefixes {
			if strings.HasPrefix(name, p) {
				out[name] = v
				break
			}
		}
	}
	return out
}

// printCounterRows prints counters sorted by name, indented.
func printCounterRows(rows map[string]uint64) {
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-28s %d\n", n, rows[n])
	}
}

// fetchSnapshot performs one KindStats round-trip against a node.
func fetchSnapshot(ctx context.Context, addr string) (server.Snapshot, error) {
	conn, err := rpc.TCP{}.Dial(addr)
	if err != nil {
		return server.Snapshot{}, err
	}
	rc := rpc.NewClient(conn)
	defer func() { _ = rc.Close() }()
	raw, err := rc.Call(ctx, server.KindStats, nil)
	if err != nil {
		return server.Snapshot{}, err
	}
	var snap server.Snapshot
	if err := core.DecodeValue(raw, &snap); err != nil {
		return server.Snapshot{}, err
	}
	return snap, nil
}

// indent prefixes every non-empty line of s.
func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	var b strings.Builder
	for _, l := range lines {
		if l != "" {
			b.WriteString(prefix)
		}
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

func run() int {
	var (
		members = flag.String("members", "", "comma-separated id=addr pairs of the cluster")
		typ     = flag.String("type", "AtomicLong", "shared object type name")
		key     = flag.String("key", "", "shared object key")
		method  = flag.String("method", "Get", "method to invoke")
		persist = flag.Bool("persist", false, "treat the object as persistent (replicated)")
		timeout = flag.Duration("timeout", 30*time.Second, "call timeout")
		args    argList
		init    argList
	)
	flag.Var(&args, "arg", "method argument (repeatable)")
	flag.Var(&init, "init", "constructor argument, used on first access (repeatable)")
	flag.Parse()

	if *key == "" {
		fmt.Fprintln(os.Stderr, "dso-cli: -key is required")
		return 1
	}
	view, err := staticView(*members)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dso-cli:", err)
		return 1
	}
	// RemoteViews rather than a static view: a key the rebalancer pinned
	// routes by the cluster's directive table, which only the cluster
	// knows — the -members list merely seeds the contact points.
	c, err := client.New(client.Config{
		Transport: rpc.TCP{},
		Views:     client.NewRemoteViews(rpc.TCP{}, view),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dso-cli:", err)
		return 1
	}
	defer func() { _ = c.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	results, err := c.InvokeObject(ctx, core.Invocation{
		Ref:     core.Ref{Type: *typ, Key: *key},
		Method:  *method,
		Args:    args,
		Init:    init,
		Persist: *persist,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dso-cli:", err)
		return 1
	}
	if len(results) == 0 {
		fmt.Println("ok")
		return 0
	}
	for _, r := range results {
		fmt.Printf("%v\n", r)
	}
	return 0
}

// staticView builds a single fixed view from an id=addr list.
func staticView(members string) (membership.View, error) {
	if members == "" {
		return membership.View{}, fmt.Errorf("missing -members")
	}
	v := membership.View{ID: 1, Addrs: make(map[ring.NodeID]string)}
	for _, pair := range strings.Split(members, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || id == "" || addr == "" {
			return membership.View{}, fmt.Errorf("bad member %q, want id=addr", pair)
		}
		v.Addrs[ring.NodeID(id)] = addr
		v.Members = append(v.Members, ring.NodeID(id))
	}
	sort.Slice(v.Members, func(i, j int) bool { return v.Members[i] < v.Members[j] })
	return v, nil
}
