// Command dso-cli is a one-shot client for a running DSO cluster (see
// cmd/dso-server): it invokes one method on one shared object and prints
// the results. Useful for poking at a deployment.
//
// Examples:
//
//	dso-cli -members n1=:7001,n2=:7002 -type AtomicLong -key counter -method AddAndGet -arg 5
//	dso-cli -members n1=:7001,n2=:7002 -type Map -key users -method Put -arg alice -arg admin
//	dso-cli -members n1=:7001,n2=:7002 -type CyclicBarrier -key b -init 3 -method Await
//
// Arguments are passed as int64 when they parse as integers, float64 when
// they parse as decimals, and strings otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"crucial/internal/client"
	"crucial/internal/core"
	"crucial/internal/membership"
	"crucial/internal/ring"
	"crucial/internal/rpc"
)

// argList collects repeatable -arg/-init flags.
type argList []any

func (a *argList) String() string { return fmt.Sprint([]any(*a)) }

// Set parses one value: int64, then float64, then string.
func (a *argList) Set(s string) error {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		*a = append(*a, n)
		return nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		*a = append(*a, f)
		return nil
	}
	*a = append(*a, s)
	return nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		members = flag.String("members", "", "comma-separated id=addr pairs of the cluster")
		typ     = flag.String("type", "AtomicLong", "shared object type name")
		key     = flag.String("key", "", "shared object key")
		method  = flag.String("method", "Get", "method to invoke")
		persist = flag.Bool("persist", false, "treat the object as persistent (replicated)")
		timeout = flag.Duration("timeout", 30*time.Second, "call timeout")
		args    argList
		init    argList
	)
	flag.Var(&args, "arg", "method argument (repeatable)")
	flag.Var(&init, "init", "constructor argument, used on first access (repeatable)")
	flag.Parse()

	if *key == "" {
		fmt.Fprintln(os.Stderr, "dso-cli: -key is required")
		return 1
	}
	view, err := staticView(*members)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dso-cli:", err)
		return 1
	}
	c, err := client.New(client.Config{
		Transport: rpc.TCP{},
		Views:     client.StaticView(view),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dso-cli:", err)
		return 1
	}
	defer func() { _ = c.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	results, err := c.InvokeObject(ctx, core.Invocation{
		Ref:     core.Ref{Type: *typ, Key: *key},
		Method:  *method,
		Args:    args,
		Init:    init,
		Persist: *persist,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dso-cli:", err)
		return 1
	}
	if len(results) == 0 {
		fmt.Println("ok")
		return 0
	}
	for _, r := range results {
		fmt.Printf("%v\n", r)
	}
	return 0
}

// staticView builds a single fixed view from an id=addr list.
func staticView(members string) (membership.View, error) {
	if members == "" {
		return membership.View{}, fmt.Errorf("missing -members")
	}
	v := membership.View{ID: 1, Addrs: make(map[ring.NodeID]string)}
	for _, pair := range strings.Split(members, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || id == "" || addr == "" {
			return membership.View{}, fmt.Errorf("bad member %q, want id=addr", pair)
		}
		v.Addrs[ring.NodeID(id)] = addr
		v.Members = append(v.Members, ring.NodeID(id))
	}
	sort.Slice(v.Members, func(i, j int) bool { return v.Members[i] < v.Members[j] })
	return v, nil
}
