package main

import "testing"

func TestArgListParsing(t *testing.T) {
	var a argList
	for _, s := range []string{"5", "2.5", "hello"} {
		if err := a.Set(s); err != nil {
			t.Fatal(err)
		}
	}
	if a[0].(int64) != 5 || a[1].(float64) != 2.5 || a[2].(string) != "hello" {
		t.Fatalf("argList = %v", a)
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}

func TestStaticViewParsing(t *testing.T) {
	v, err := staticView("b=:2,a=:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Members) != 2 || v.Members[0] != "a" {
		t.Fatalf("members = %v", v.Members)
	}
	if v.Addrs["b"] != ":2" {
		t.Fatalf("addrs = %v", v.Addrs)
	}
	if _, err := staticView(""); err == nil {
		t.Fatal("empty members accepted")
	}
	if _, err := staticView("bogus"); err == nil {
		t.Fatal("malformed member accepted")
	}
}
