package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"crucial/internal/core"
	"crucial/internal/ring"
	"crucial/internal/rpc"
	"crucial/internal/server"
)

// runRebalance implements `dso-cli rebalance status`: one
// KindRebalanceStatus RPC per member, printing each node's view of the
// resharding plane — installed directive table, active migration fences,
// migration/scan counters, and the coordinator's hot-streak table.
//
//	dso-cli rebalance status -members n1=:7001,n2=:7002
//	dso-cli rebalance status -members ... -json
func runRebalance(argv []string) int {
	if len(argv) == 0 || argv[0] != "status" {
		fmt.Fprintln(os.Stderr, "dso-cli rebalance: missing op (status)")
		return 1
	}
	fs := flag.NewFlagSet("rebalance status", flag.ExitOnError)
	var (
		members = fs.String("members", "", "comma-separated id=addr pairs of the cluster")
		timeout = fs.Duration("timeout", 10*time.Second, "per-node RPC timeout")
		asJSON  = fs.Bool("json", false, "emit per-node statuses as JSON")
	)
	_ = fs.Parse(argv[1:])

	view, err := staticView(*members)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dso-cli:", err)
		return 1
	}
	var statuses []server.RebalanceStatus
	for _, id := range view.Members {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		st, err := fetchRebalanceStatus(ctx, view.Addrs[id])
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dso-cli: warning: node %s unreachable, skipping: %v\n", id, err)
			continue
		}
		statuses = append(statuses, st)
	}
	if len(statuses) == 0 {
		fmt.Fprintln(os.Stderr, "dso-cli: no node answered")
		return 1
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(statuses); err != nil {
			fmt.Fprintln(os.Stderr, "dso-cli:", err)
			return 1
		}
		return 0
	}
	for _, st := range statuses {
		role := "follower"
		switch {
		case st.Coordinator:
			role = "coordinator"
		case !st.Enabled:
			role = "rebalancer off"
		}
		fmt.Printf("node %s (%s): view=%d directives=v%d migrations=%d failed=%d scans=%d\n",
			st.Node, role, st.ViewID, st.DirectiveVersion,
			st.Migrations, st.MigrationsFailed, st.Scans)
		keys := make([]string, 0, len(st.Directives))
		for k := range st.Directives {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  pinned %-32s -> %s\n", k, strings.Join(st.Directives[k], ","))
		}
		for _, f := range st.Fenced {
			fmt.Printf("  fenced %s (migration in flight)\n", f)
		}
		streaks := make([]string, 0, len(st.Streaks))
		for k := range st.Streaks {
			streaks = append(streaks, k)
		}
		sort.Strings(streaks)
		for _, k := range streaks {
			fmt.Printf("  heating %-31s %d consecutive hot scans\n", k, st.Streaks[k])
		}
	}
	return 0
}

// runMigrate implements `dso-cli migrate`: a manual live migration (or
// un-pin) of one object, sent to its primary via KindMigrate.
//
//	dso-cli migrate -members ... -type AtomicLong -key hot -targets n2,n3
//	dso-cli migrate -members ... -type AtomicLong -key hot -unpin
func runMigrate(argv []string) int {
	fs := flag.NewFlagSet("migrate", flag.ExitOnError)
	var (
		members = fs.String("members", "", "comma-separated id=addr pairs of the cluster")
		typ     = fs.String("type", "AtomicLong", "shared object type name")
		key     = fs.String("key", "", "shared object key")
		targets = fs.String("targets", "", "comma-separated target nodes (new replica set, primary first)")
		unpin   = fs.Bool("unpin", false, "remove the object's placement directive instead")
		timeout = fs.Duration("timeout", 60*time.Second, "call timeout")
	)
	_ = fs.Parse(argv)

	if *key == "" {
		fmt.Fprintln(os.Stderr, "dso-cli migrate: -key is required")
		return 1
	}
	if !*unpin && *targets == "" {
		fmt.Fprintln(os.Stderr, "dso-cli migrate: need -targets or -unpin")
		return 1
	}
	view, err := staticView(*members)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dso-cli:", err)
		return 1
	}
	cmd := server.MigrateCmd{Ref: core.Ref{Type: *typ, Key: *key}, Unpin: *unpin}
	for _, t := range splitGroup(*targets) {
		cmd.Targets = append(cmd.Targets, ring.NodeID(t))
	}
	body, err := core.EncodeValue(cmd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dso-cli:", err)
		return 1
	}

	// The primary under the installed directives is unknown to a static
	// member list, so try every member: the primary accepts, the rest
	// answer ErrWrongNode.
	var lastErr error
	for _, id := range view.Members {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		err := sendMigrate(ctx, view.Addrs[id], body)
		cancel()
		if err == nil {
			if *unpin {
				fmt.Printf("%s[%s] un-pinned (hash placement) via %s\n", *typ, *key, id)
			} else {
				fmt.Printf("%s[%s] migrated to %s via %s\n", *typ, *key, *targets, id)
			}
			return 0
		}
		lastErr = err
	}
	fmt.Fprintln(os.Stderr, "dso-cli: migration failed:", lastErr)
	return 1
}

// sendMigrate performs one KindMigrate round-trip against a node.
func sendMigrate(ctx context.Context, addr string, body []byte) error {
	conn, err := rpc.TCP{}.Dial(addr)
	if err != nil {
		return err
	}
	rc := rpc.NewClient(conn)
	defer func() { _ = rc.Close() }()
	_, err = rc.Call(ctx, server.KindMigrate, body)
	return err
}

// fetchRebalanceStatus performs one KindRebalanceStatus round-trip.
func fetchRebalanceStatus(ctx context.Context, addr string) (server.RebalanceStatus, error) {
	conn, err := rpc.TCP{}.Dial(addr)
	if err != nil {
		return server.RebalanceStatus{}, err
	}
	rc := rpc.NewClient(conn)
	defer func() { _ = rc.Close() }()
	raw, err := rc.Call(ctx, server.KindRebalanceStatus, nil)
	if err != nil {
		return server.RebalanceStatus{}, err
	}
	var st server.RebalanceStatus
	if err := core.DecodeValue(raw, &st); err != nil {
		return server.RebalanceStatus{}, err
	}
	return st, nil
}
