package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"crucial/internal/collector"
	"crucial/internal/core"
	"crucial/internal/membership"
	"crucial/internal/ring"
	"crucial/internal/rpc"
	"crucial/internal/telemetry"
)

// runTop implements `dso-cli top`: one KindObjectStats RPC per member,
// merged cluster-wide (telemetry.ObjectsSnapshot.Merge), rendered as a
// hottest-objects table with per-object rate (windowed when the nodes
// report rate windows, lifetime average otherwise), read/write mix,
// latency percentiles and placement — the replica group that owns the
// object under the current ring plus any placement directives fetched
// from the cluster. With -json the merged snapshot is emitted as JSON
// instead, for scripts and dashboards.
func runTop(argv []string) int {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	var (
		members = fs.String("members", "", "comma-separated id=addr pairs of the cluster")
		timeout = fs.Duration("timeout", 30*time.Second, "per-node RPC timeout")
		n       = fs.Int("n", 20, "number of objects to show")
		rf      = fs.Int("rf", 1, "replication factor used to compute placement (match the servers' -rf)")
		asJSON  = fs.Bool("json", false, "emit the merged snapshot as JSON")
	)
	_ = fs.Parse(argv)

	view, err := staticView(*members)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dso-cli:", err)
		return 1
	}

	col := &collector.Collector{}
	reached := 0
	for _, id := range view.Members {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		_, err := col.FetchNodeObjects(ctx, rpc.TCP{}, view.Addrs[id])
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dso-cli: warning: node %s unreachable, skipping: %v\n", id, err)
			continue
		}
		reached++
	}
	if reached == 0 {
		fmt.Fprintln(os.Stderr, "dso-cli: no node answered")
		return 1
	}

	merged := col.Objects()
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(merged); err != nil {
			fmt.Fprintln(os.Stderr, "dso-cli:", err)
			return 1
		}
		return 0
	}
	if len(merged.Stats) == 0 {
		fmt.Println("no per-object load recorded — are the nodes running with -telemetry?")
		return 0
	}
	r := view.Ring()
	// Placement directives live in the cluster's directory, which a static
	// member list cannot see; any member's rebalance status carries the
	// installed table, so directed objects render their true home.
	directives := fetchDirectives(view, *timeout)
	placement := func(st telemetry.ObjectStat) string {
		set := directives.Place(r, core.Ref{Type: st.Type, Key: st.Key}.String(), *rf)
		ids := make([]string, len(set))
		for i, id := range set {
			ids[i] = string(id)
		}
		return strings.Join(ids, ",")
	}
	fmt.Printf("cluster objects (merged %d/%d nodes, window %v, %d tracked of %d observations",
		reached, len(view.Members), merged.Window.Round(time.Second),
		len(merged.Stats), merged.Total)
	if merged.Evictions > 0 {
		fmt.Printf(", %d slot takeovers", merged.Evictions)
	}
	fmt.Println("):")
	writeObjectsTable(os.Stdout, merged, *n, placement)
	return 0
}

// writeObjectsTable renders the top-n rows of a merged snapshot. The
// placement callback maps an object to its owning replica group ("" to
// omit the column).
func writeObjectsTable(w *os.File, snap telemetry.ObjectsSnapshot, n int, placement func(telemetry.ObjectStat) string) {
	fmt.Fprintf(w, "  %-28s %-12s %9s %6s %6s %10s %10s %10s %10s\n",
		"OBJECT", "GROUP", "RATE/s", "RD%", "WR%", "P50", "P99", "P999", "BYTES")
	rows := snap.Stats
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	for _, st := range rows {
		name := st.Type + "[" + st.Key + "]"
		if len(name) > 28 {
			name = name[:25] + "..."
		}
		group := ""
		if placement != nil {
			group = placement(st)
		}
		rd, wr := "-", "-"
		if tot := st.Reads + st.Writes; tot > 0 {
			rd = fmt.Sprintf("%d", st.Reads*100/tot)
			wr = fmt.Sprintf("%d", st.Writes*100/tot)
		}
		lat := st.Latency
		p50, p99, p999 := "-", "-", "-"
		if lat.Count > 0 {
			p50 = lat.P50.Round(time.Microsecond).String()
			p99 = lat.P99.Round(time.Microsecond).String()
			p999 = lat.P999.Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "  %-28s %-12s %9.1f %6s %6s %10s %10s %10s %10s\n",
			name, group, snap.RateOf(st), rd, wr, p50, p99, p999,
			formatBytes(st.Bytes))
	}
}

// fetchDirectives asks members for their installed placement-directive
// table (KindRebalanceStatus) and returns the first answer, empty when no
// node reports one (older nodes, or none reachable).
func fetchDirectives(view membership.View, timeout time.Duration) ring.Directives {
	for _, id := range view.Members {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		st, err := fetchRebalanceStatus(ctx, view.Addrs[id])
		cancel()
		if err != nil {
			continue
		}
		d := ring.Directives{Version: st.DirectiveVersion}
		if len(st.Directives) > 0 {
			d.Entries = make(map[string][]ring.NodeID, len(st.Directives))
			for key, targets := range st.Directives {
				ids := make([]ring.NodeID, len(targets))
				for i, t := range targets {
					ids[i] = ring.NodeID(t)
				}
				d.Entries[key] = ids
			}
		}
		return d
	}
	return ring.Directives{}
}

// formatBytes renders a byte count with a binary unit suffix.
func formatBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
