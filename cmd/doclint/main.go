// Command doclint fails the build when an exported identifier lacks a doc
// comment. The public API is the product here — a reproduction is only
// useful if a reader can navigate it from godoc alone — so `make verify`
// runs this over the root package and keeps the documentation from
// drifting as the system grows.
//
// Usage:
//
//	doclint [package-dir ...]
//
// With no arguments it lints ".". For each package directory it parses
// every non-test .go file and reports exported top-level declarations
// (functions, methods, types, consts, vars, and exported fields and
// interface methods of documented types) that have no doc comment.
// Grouped const/var blocks count as documented when the block has a doc
// comment. It also flags malformed comment lines written as "///" or
// "// /", which compile fine but render in godoc with a stray leading
// slash ("/ Registry overrides ..."), and doc comments that do not begin
// with the identifier they document (the godoc convention, so that
// `go doc -all` reads as a glossary; an optional leading article — "A",
// "An", "The" — and "Deprecated:" notices are accepted). Exit status is
// 1 when anything is undocumented, malformed, or misnamed.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	bad := 0
	for _, dir := range dirs {
		missing, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		bad += len(missing)
		for _, m := range missing {
			fmt.Println(m)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d doc comment problem(s)\n", bad)
		os.Exit(1)
	}
}

// lintDir parses one package directory and returns "file:line: message"
// strings for every undocumented exported identifier, sorted by position.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s is exported but has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, what, name))
	}
	badName := func(pos token.Pos, what, name string, doc *ast.CommentGroup) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: comment on %s %s should start with %q (godoc convention), not %q",
			filepath.ToSlash(p.Filename), p.Line, what, name, name, firstWord(doc.Text())))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lintDecl(decl, report, badName)
			}
			for _, group := range file.Comments {
				for _, cm := range group.List {
					if malformedComment(cm.Text) {
						p := fset.Position(cm.Pos())
						missing = append(missing, fmt.Sprintf(
							"%s:%d: malformed comment %q renders with a stray leading slash in godoc",
							filepath.ToSlash(p.Filename), p.Line, firstLine(cm.Text)))
					}
				}
			}
		}
	}
	sort.Strings(missing)
	return missing, nil
}

// malformedComment reports whether a line comment was written as "///" or
// "// /": both compile, but godoc strips only the leading "//" and renders
// the line with a stray "/ " prefix. A slash immediately followed by text
// (e.g. "// /metrics serves ...") is a URL path, not the malformation.
func malformedComment(text string) bool {
	if !strings.HasPrefix(text, "//") {
		return false // block comments are out of scope
	}
	rest := strings.TrimLeft(text[2:], " \t")
	if !strings.HasPrefix(rest, "/") {
		return false
	}
	after := rest[1:]
	return after == "" || strings.HasPrefix(after, " ") || strings.HasPrefix(after, "\t")
}

// firstLine truncates a comment's text for the report.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 60 {
		s = s[:60] + "..."
	}
	return s
}

// lintDecl reports undocumented exported identifiers in one top-level
// declaration, and documented ones whose comment does not start with the
// identifier name (via badName).
func lintDecl(decl ast.Decl, report func(token.Pos, string, string), badName func(token.Pos, string, string, *ast.CommentGroup)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return
		}
		what := "function"
		name := d.Name.Name
		display := name
		if d.Recv != nil && len(d.Recv.List) == 1 {
			// Only methods on exported receivers are part of the API.
			recv := receiverName(d.Recv.List[0].Type)
			if recv == "" || !ast.IsExported(recv) {
				return
			}
			what = "method"
			display = recv + "." + name
		}
		if d.Doc == nil {
			report(d.Pos(), what, display)
		} else if !startsWithName(d.Doc, name) {
			badName(d.Pos(), what, name, d.Doc)
		}
	case *ast.GenDecl:
		switch d.Tok {
		case token.TYPE:
			for _, spec := range d.Specs {
				ts := spec.(*ast.TypeSpec)
				if !ts.Name.IsExported() {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(d.Specs) == 1 {
					doc = d.Doc
				}
				if doc == nil && d.Doc == nil {
					report(ts.Pos(), "type", ts.Name.Name)
					continue
				}
				if doc != nil && !startsWithName(doc, ts.Name.Name) {
					badName(ts.Pos(), "type", ts.Name.Name, doc)
				}
				lintTypeMembers(ts, report)
			}
		case token.CONST, token.VAR:
			kind := "const"
			if d.Tok == token.VAR {
				kind = "var"
			}
			for _, spec := range d.Specs {
				vs := spec.(*ast.ValueSpec)
				// The name check applies only to ungrouped declarations:
				// inside a `const ( ... )` block, a spec's doc comment is
				// often a section header covering the run of specs below it
				// (see internal/telemetry's metric-name groups), which no
				// single identifier can lead.
				if !d.Lparen.IsValid() && len(vs.Names) == 1 && vs.Names[0].IsExported() {
					if doc := d.Doc; doc != nil && !startsWithName(doc, vs.Names[0].Name) {
						badName(vs.Names[0].Pos(), kind, vs.Names[0].Name, doc)
						continue
					}
				}
				// A doc comment on the grouped block documents the group.
				if d.Doc != nil || vs.Doc != nil || vs.Comment != nil {
					continue
				}
				for _, name := range vs.Names {
					if name.IsExported() {
						report(name.Pos(), kind, name.Name)
					}
				}
			}
		}
	}
}

// startsWithName reports whether a doc comment opens with the identifier
// it documents, per the godoc convention. An optional leading article
// ("A", "An", "The") is accepted, as are "Deprecated:" notices and
// build-constraint-style directive comments (which have no prose).
func startsWithName(doc *ast.CommentGroup, name string) bool {
	text := doc.Text()
	if text == "" {
		return true // nothing but directives ("//go:generate" etc.)
	}
	word := firstWord(text)
	if word == name {
		return true
	}
	if word == "Deprecated:" {
		return true
	}
	if strings.HasPrefix(word, "/") {
		return true // already reported by the malformed-comment check
	}
	switch word {
	case "A", "An", "The":
		rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), word))
		return firstWord(rest) == name
	}
	return false
}

// firstWord returns the first whitespace-delimited token of a comment's
// prose, for report messages and the name check.
func firstWord(text string) string {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}

// lintTypeMembers reports undocumented exported fields of a struct type
// and methods of an interface type.
func lintTypeMembers(ts *ast.TypeSpec, report func(token.Pos, string, string)) {
	var fields *ast.FieldList
	what := "field"
	switch t := ts.Type.(type) {
	case *ast.StructType:
		fields = t.Fields
	case *ast.InterfaceType:
		fields = t.Methods
		what = "interface method"
	default:
		return
	}
	for _, f := range fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, name := range f.Names {
			if name.IsExported() {
				report(name.Pos(), what, ts.Name.Name+"."+name.Name)
			}
		}
	}
}

// receiverName unwraps a method receiver type expression to its type name.
func receiverName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr: // generic receiver T[P]
			expr = t.X
		case *ast.IndexListExpr: // generic receiver T[P1, P2]
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
