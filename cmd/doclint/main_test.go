package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintSource writes one source file into a temp package dir and lints it.
func lintSource(t *testing.T, src string) []string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	missing, err := lintDir(dir)
	if err != nil {
		t.Fatalf("lintDir: %v", err)
	}
	return missing
}

func TestLintFlagsUndocumentedExports(t *testing.T) {
	missing := lintSource(t, `package x

func Exported() {}

// Documented is fine.
func Documented() {}
`)
	if len(missing) != 1 || !strings.Contains(missing[0], "function Exported") {
		t.Fatalf("want one finding for Exported, got %q", missing)
	}
}

func TestLintFlagsMalformedSlashComments(t *testing.T) {
	missing := lintSource(t, `package x

/// Registry overrides the object type registry.
var Registry int

// / Telemetry enables instrumentation.
var Telemetry int
`)
	if len(missing) != 2 {
		t.Fatalf("want 2 malformed-comment findings, got %q", missing)
	}
	for _, m := range missing {
		if !strings.Contains(m, "malformed comment") {
			t.Fatalf("finding %q should name the malformed comment", m)
		}
	}
}

func TestLintAcceptsPathsAndDividers(t *testing.T) {
	missing := lintSource(t, `package x

// Handler serves /metrics and /debug/pprof on the admin port.
// /metrics is the Prometheus endpoint.
var Handler int

//// divider-style comment banners stay legal
var private int

var _ = private
`)
	if len(missing) != 0 {
		t.Fatalf("want no findings, got %q", missing)
	}
}

func TestMalformedComment(t *testing.T) {
	cases := []struct {
		text string
		want bool
	}{
		{"// normal", false},
		{"/// Registry overrides", true},
		{"// / Telemetry enables", true},
		{"///", true},
		{"// /metrics endpoint", false},
		{"//// banner", false},
		{"//", false},
	}
	for _, c := range cases {
		if got := malformedComment(c.text); got != c.want {
			t.Errorf("malformedComment(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestLintFlagsCommentsNotStartingWithName(t *testing.T) {
	missing := lintSource(t, `package x

// Runs the thing.
func Exported() {}

// Exported2 is fine.
func Exported2() {}

// A Widget is fine with a leading article.
type Widget struct{}

// Holder of state for gadgets.
type Gadget struct{}

// Wrong name for this variable.
var Registry int

// Deprecated: use Registry instead.
var OldRegistry int
`)
	if len(missing) != 3 {
		t.Fatalf("want 3 name-prefix findings, got %q", missing)
	}
	for _, want := range []string{"function Exported", "type Gadget", "var Registry"} {
		found := false
		for _, m := range missing {
			if strings.Contains(m, want) && strings.Contains(m, "should start with") {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing name-prefix finding for %q in %q", want, missing)
		}
	}
}

func TestLintNameCheckSkipsGroupSectionHeaders(t *testing.T) {
	missing := lintSource(t, `package x

// Canonical metric names.
const (
	// FaaS platform counters.
	MetA = "a"
	MetB = "b"

	// Server counters.
	MetC = "c"
)

// T exists so a method can carry the misnamed comment below.
type T struct{}

// Wrong verb-first comment.
func (T) Do() {}
`)
	if len(missing) != 1 || !strings.Contains(missing[0], `method Do should start with "Do"`) {
		t.Fatalf("want only the method finding, got %q", missing)
	}
}
