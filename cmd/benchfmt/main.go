// Command benchfmt converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark results can be committed and diffed
// (BENCH_rpc.json) without hand-editing the raw text.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count 5 ./internal/core/ | benchfmt
//
// Repeated runs of the same benchmark (from -count) are aggregated: the
// JSON reports the minimum ns/op (least-noise estimate) and the maximum
// observed allocs/op and B/op (allocation counts are deterministic, so
// min==max in practice; max is the conservative side if they ever differ).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one aggregated benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Document is the emitted JSON shape.
type Document struct {
	Context map[string]string `json:"context"`
	Results []Result          `json:"results"`
}

func main() {
	doc := Document{Context: map[string]string{}}
	agg := map[string]*Result{}
	var order []string

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			// pkg repeats per package; keep a comma-joined union.
			v = strings.TrimSpace(v)
			if prev, ok := doc.Context[k]; ok && prev != v && !strings.Contains(prev, v) {
				v = prev + ", " + v
			}
			doc.Context[k] = v
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			if cur, seen := agg[r.Name]; seen {
				cur.Runs++
				if r.NsPerOp < cur.NsPerOp {
					cur.NsPerOp = r.NsPerOp
				}
				if r.BytesPerOp > cur.BytesPerOp {
					cur.BytesPerOp = r.BytesPerOp
				}
				if r.AllocsPerOp > cur.AllocsPerOp {
					cur.AllocsPerOp = r.AllocsPerOp
				}
			} else {
				rc := r
				rc.Runs = 1
				agg[r.Name] = &rc
				order = append(order, r.Name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchfmt: read stdin:", err)
		os.Exit(1)
	}

	sort.Strings(order)
	for _, name := range order {
		doc.Results = append(doc.Results, *agg[name])
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchfmt: encode:", err)
		os.Exit(1)
	}
}

// parseBenchLine handles the standard testing output shape:
//
//	BenchmarkName-8   1000000   123.4 ns/op   56 B/op   7 allocs/op
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so counts aggregate across machines.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := Result{Name: name}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				r.NsPerOp = f
				ok = true
			}
		case "B/op":
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = n
			}
		case "allocs/op":
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = n
			}
		}
	}
	return r, ok
}
