// Command crucial-loc prints Table 4: the lines changed to port each
// shipped application from plain multi-threading to Crucial.
package main

import (
	"fmt"
	"os"

	"crucial/internal/loc"
)

func main() {
	os.Exit(run())
}

func run() int {
	stats, err := loc.AllStats()
	if err != nil {
		fmt.Fprintln(os.Stderr, "crucial-loc:", err)
		return 1
	}
	fmt.Printf("%-16s %12s %14s %10s\n", "APPLICATION", "TOTAL LINES", "CHANGED LINES", "CHANGED %")
	for _, s := range stats {
		fmt.Printf("%-16s %12d %14d %9.1f%%\n", s.App, s.TotalLines, s.ChangedLines, s.Percent())
	}
	return 0
}
