package crucial

import (
	"context"

	"crucial/internal/objects"
)

// This file defines the client-side proxies of the built-in shared object
// library (Table 1 of the paper). Every method ships to the owning DSO
// node and executes there under the object's monitor, so all proxies are
// linearizable and safe for concurrent use from any number of cloud
// threads.

// AtomicLong is a linearizable 64-bit counter, the workhorse of the
// paper's examples (Listing 1 shares one across all cloud threads).
type AtomicLong struct {
	H Handle // H is the underlying object handle (ref + client binding).
}

// NewAtomicLong builds a proxy for the counter named key.
func NewAtomicLong(key string, opts ...Option) *AtomicLong {
	return &AtomicLong{H: NewHandle(objects.TypeAtomicLong, key, opts...)}
}

// NewAtomicLongInit builds the proxy with an initial value applied on
// first access.
func NewAtomicLongInit(key string, initial int64, opts ...Option) *AtomicLong {
	opts = append(opts, withInit(initial))
	return NewAtomicLong(key, opts...)
}

// Get returns the current value.
func (a *AtomicLong) Get(ctx context.Context) (int64, error) {
	return result0[int64](a.H.Invoke(ctx, "Get"))
}

// Set replaces the value.
func (a *AtomicLong) Set(ctx context.Context, v int64) error {
	return resultVoid(a.H.Invoke(ctx, "Set", v))
}

// AddAndGet atomically adds delta and returns the new value.
func (a *AtomicLong) AddAndGet(ctx context.Context, delta int64) (int64, error) {
	return result0[int64](a.H.Invoke(ctx, "AddAndGet", delta))
}

// GetAndAdd atomically adds delta and returns the previous value.
func (a *AtomicLong) GetAndAdd(ctx context.Context, delta int64) (int64, error) {
	return result0[int64](a.H.Invoke(ctx, "GetAndAdd", delta))
}

// IncrementAndGet adds one and returns the new value.
func (a *AtomicLong) IncrementAndGet(ctx context.Context) (int64, error) {
	return result0[int64](a.H.Invoke(ctx, "IncrementAndGet"))
}

// DecrementAndGet subtracts one and returns the new value.
func (a *AtomicLong) DecrementAndGet(ctx context.Context) (int64, error) {
	return result0[int64](a.H.Invoke(ctx, "DecrementAndGet"))
}

// GetAndSet swaps the value, returning the previous one.
func (a *AtomicLong) GetAndSet(ctx context.Context, v int64) (int64, error) {
	return result0[int64](a.H.Invoke(ctx, "GetAndSet", v))
}

// CompareAndSet installs update iff the current value equals expect.
func (a *AtomicLong) CompareAndSet(ctx context.Context, expect, update int64) (bool, error) {
	return result0[bool](a.H.Invoke(ctx, "CompareAndSet", expect, update))
}

// Multiply multiplies the value by f server side (one simple shipped
// operation, the Fig. 2a micro-benchmark).
func (a *AtomicLong) Multiply(ctx context.Context, f int64) (int64, error) {
	return result0[int64](a.H.Invoke(ctx, "Multiply", f))
}

// MultiplyLoop performs n chained multiplications server side (the Fig. 2a
// "complex" operation: CPU-bound work shipped to the data).
func (a *AtomicLong) MultiplyLoop(ctx context.Context, f, n int64) (int64, error) {
	return result0[int64](a.H.Invoke(ctx, "MultiplyLoop", f, n))
}

// SimulatedWork executes a modeled CPU-bound method of the given duration
// (microseconds) under the object's monitor — the benchmark stand-in for
// a complex shipped computation on a single-core host.
func (a *AtomicLong) SimulatedWork(ctx context.Context, micros int64) (int64, error) {
	return result0[int64](a.H.Invoke(ctx, "SimulatedWork", micros))
}

// AtomicInt is the 32-bit-flavored counter of Table 1. It shares the
// server implementation with AtomicLong.
type AtomicInt struct {
	H Handle // H is the underlying object handle (ref + client binding).
}

// NewAtomicInt builds a proxy for the counter named key.
func NewAtomicInt(key string, opts ...Option) *AtomicInt {
	return &AtomicInt{H: NewHandle(objects.TypeAtomicInt, key, opts...)}
}

// Get returns the current value.
func (a *AtomicInt) Get(ctx context.Context) (int64, error) {
	return result0[int64](a.H.Invoke(ctx, "Get"))
}

// Set replaces the value.
func (a *AtomicInt) Set(ctx context.Context, v int64) error {
	return resultVoid(a.H.Invoke(ctx, "Set", v))
}

// AddAndGet atomically adds delta and returns the new value.
func (a *AtomicInt) AddAndGet(ctx context.Context, delta int64) (int64, error) {
	return result0[int64](a.H.Invoke(ctx, "AddAndGet", delta))
}

// IncrementAndGet adds one and returns the new value.
func (a *AtomicInt) IncrementAndGet(ctx context.Context) (int64, error) {
	return result0[int64](a.H.Invoke(ctx, "IncrementAndGet"))
}

// CompareAndSet installs update iff the current value equals expect
// (the k-means iteration-counter idiom of Listing 2).
func (a *AtomicInt) CompareAndSet(ctx context.Context, expect, update int64) (bool, error) {
	return result0[bool](a.H.Invoke(ctx, "CompareAndSet", expect, update))
}

// AtomicBoolean is a linearizable flag.
type AtomicBoolean struct {
	H Handle // H is the underlying object handle (ref + client binding).
}

// NewAtomicBoolean builds a proxy for the flag named key.
func NewAtomicBoolean(key string, opts ...Option) *AtomicBoolean {
	return &AtomicBoolean{H: NewHandle(objects.TypeAtomicBoolean, key, opts...)}
}

// Get returns the current value.
func (a *AtomicBoolean) Get(ctx context.Context) (bool, error) {
	return result0[bool](a.H.Invoke(ctx, "Get"))
}

// Set replaces the value.
func (a *AtomicBoolean) Set(ctx context.Context, v bool) error {
	return resultVoid(a.H.Invoke(ctx, "Set", v))
}

// GetAndSet swaps the value, returning the previous one.
func (a *AtomicBoolean) GetAndSet(ctx context.Context, v bool) (bool, error) {
	return result0[bool](a.H.Invoke(ctx, "GetAndSet", v))
}

// CompareAndSet installs update iff the current value equals expect.
func (a *AtomicBoolean) CompareAndSet(ctx context.Context, expect, update bool) (bool, error) {
	return result0[bool](a.H.Invoke(ctx, "CompareAndSet", expect, update))
}

// AtomicReference holds an arbitrary gob-serializable value of type T.
// Register non-basic T with crucial.RegisterValue first.
type AtomicReference[T any] struct {
	H Handle // H is the underlying object handle (ref + client binding).
}

// NewAtomicReference builds a proxy for the reference named key.
func NewAtomicReference[T any](key string, opts ...Option) *AtomicReference[T] {
	return &AtomicReference[T]{H: NewHandle(objects.TypeAtomicReference, key, opts...)}
}

// Get returns the current value; ok is false while the reference is nil.
func (a *AtomicReference[T]) Get(ctx context.Context) (T, bool, error) {
	var zero T
	res, err := a.H.Invoke(ctx, "Get")
	if err != nil {
		return zero, false, err
	}
	if len(res) < 1 || res[0] == nil {
		return zero, false, nil
	}
	v, ok := res[0].(T)
	if !ok {
		return zero, false, typeError[T](res[0])
	}
	return v, true, nil
}

// Set replaces the value.
func (a *AtomicReference[T]) Set(ctx context.Context, v T) error {
	return resultVoid(a.H.Invoke(ctx, "Set", v))
}

// GetAndSet swaps the value, returning the previous one.
func (a *AtomicReference[T]) GetAndSet(ctx context.Context, v T) (T, error) {
	return result0[T](a.H.Invoke(ctx, "GetAndSet", v))
}

// CompareAndSet installs update iff the current value serializes equal to
// expect.
func (a *AtomicReference[T]) CompareAndSet(ctx context.Context, expect, update T) (bool, error) {
	return result0[bool](a.H.Invoke(ctx, "CompareAndSet", expect, update))
}

// AtomicByteArray is a fixed-length mutable byte array.
type AtomicByteArray struct {
	H Handle // H is the underlying object handle (ref + client binding).
}

// NewAtomicByteArray builds a proxy for an array of the given length
// (applied on first access).
func NewAtomicByteArray(key string, length int, opts ...Option) *AtomicByteArray {
	opts = append(opts, withInit(int64(length)))
	return &AtomicByteArray{H: NewHandle(objects.TypeAtomicByteArray, key, opts...)}
}

// Length returns the array length.
func (a *AtomicByteArray) Length(ctx context.Context) (int64, error) {
	return result0[int64](a.H.Invoke(ctx, "Length"))
}

// Get returns element i.
func (a *AtomicByteArray) Get(ctx context.Context, i int) (byte, error) {
	v, err := result0[int64](a.H.Invoke(ctx, "Get", int64(i)))
	return byte(v), err
}

// Set stores element i.
func (a *AtomicByteArray) Set(ctx context.Context, i int, v byte) error {
	return resultVoid(a.H.Invoke(ctx, "Set", int64(i), int64(v)))
}

// GetAll returns a copy of the whole array.
func (a *AtomicByteArray) GetAll(ctx context.Context) ([]byte, error) {
	return result0[[]byte](a.H.Invoke(ctx, "GetAll"))
}

// SetAll replaces the whole array.
func (a *AtomicByteArray) SetAll(ctx context.Context, v []byte) error {
	return resultVoid(a.H.Invoke(ctx, "SetAll", v))
}

// AtomicDoubleArray is a fixed-length float64 array with server-side
// aggregation (AddAll), the natural container for ML weight vectors.
type AtomicDoubleArray struct {
	H Handle // H is the underlying object handle (ref + client binding).
}

// NewAtomicDoubleArray builds a proxy for an array of the given length.
func NewAtomicDoubleArray(key string, length int, opts ...Option) *AtomicDoubleArray {
	opts = append(opts, withInit(int64(length)))
	return &AtomicDoubleArray{H: NewHandle(objects.TypeAtomicDoubleArray, key, opts...)}
}

// Length returns the array length.
func (a *AtomicDoubleArray) Length(ctx context.Context) (int64, error) {
	return result0[int64](a.H.Invoke(ctx, "Length"))
}

// Get returns element i.
func (a *AtomicDoubleArray) Get(ctx context.Context, i int) (float64, error) {
	return result0[float64](a.H.Invoke(ctx, "Get", int64(i)))
}

// Set stores element i.
func (a *AtomicDoubleArray) Set(ctx context.Context, i int, v float64) error {
	return resultVoid(a.H.Invoke(ctx, "Set", int64(i), v))
}

// AddAndGet adds delta to element i server side.
func (a *AtomicDoubleArray) AddAndGet(ctx context.Context, i int, delta float64) (float64, error) {
	return result0[float64](a.H.Invoke(ctx, "AddAndGet", int64(i), delta))
}

// GetAll returns a copy of the whole array.
func (a *AtomicDoubleArray) GetAll(ctx context.Context) ([]float64, error) {
	return result0[[]float64](a.H.Invoke(ctx, "GetAll"))
}

// SetAll replaces the whole array.
func (a *AtomicDoubleArray) SetAll(ctx context.Context, v []float64) error {
	return resultVoid(a.H.Invoke(ctx, "SetAll", v))
}

// AddAll adds v element-wise server side — the O(N) aggregate of
// Section 4.2 (e.g. accumulating sub-gradients).
func (a *AtomicDoubleArray) AddAll(ctx context.Context, v []float64) error {
	return resultVoid(a.H.Invoke(ctx, "AddAll", v))
}

// ScaleAll multiplies every element by f server side.
func (a *AtomicDoubleArray) ScaleAll(ctx context.Context, f float64) error {
	return resultVoid(a.H.Invoke(ctx, "ScaleAll", f))
}

// FillZero resets every element.
func (a *AtomicDoubleArray) FillZero(ctx context.Context) error {
	return resultVoid(a.H.Invoke(ctx, "FillZero"))
}

// DoubleAdder accumulates float64 contributions server side.
type DoubleAdder struct {
	H Handle // H is the underlying object handle (ref + client binding).
}

// NewDoubleAdder builds a proxy for the adder named key.
func NewDoubleAdder(key string, opts ...Option) *DoubleAdder {
	return &DoubleAdder{H: NewHandle(objects.TypeDoubleAdder, key, opts...)}
}

// Add contributes v.
func (d *DoubleAdder) Add(ctx context.Context, v float64) error {
	return resultVoid(d.H.Invoke(ctx, "Add", v))
}

// Sum returns the accumulated total.
func (d *DoubleAdder) Sum(ctx context.Context) (float64, error) {
	return result0[float64](d.H.Invoke(ctx, "Sum"))
}

// Count returns the number of contributions.
func (d *DoubleAdder) Count(ctx context.Context) (int64, error) {
	return result0[int64](d.H.Invoke(ctx, "Count"))
}

// SumThenReset returns the total and zeroes the adder atomically.
func (d *DoubleAdder) SumThenReset(ctx context.Context) (float64, error) {
	return result0[float64](d.H.Invoke(ctx, "SumThenReset"))
}

// Reset zeroes the adder.
func (d *DoubleAdder) Reset(ctx context.Context) error {
	return resultVoid(d.H.Invoke(ctx, "Reset"))
}
