package crucial

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"crucial/internal/core"
	"crucial/internal/netsim"
	"crucial/internal/telemetry"
)

// TC is the thread context handed to a Runnable: the invocation context,
// the thread's identity, and the DSO client the runtime bound its proxies
// to.
type TC struct {
	ctx      context.Context
	threadID int
	invoker  core.Invoker
}

// Context returns the invocation context (cancelled on function timeout).
func (tc *TC) Context() context.Context { return tc.ctx }

// ThreadID returns the cloud thread's index (assigned at Start, unique per
// runtime).
func (tc *TC) ThreadID() int { return tc.threadID }

// Invoker exposes the underlying DSO client for advanced use.
func (tc *TC) Invoker() core.Invoker { return tc.invoker }

// Bind attaches proxies created at run time (rather than shipped as
// fields) to the thread's DSO client.
func (tc *TC) Bind(targets ...any) {
	BindShared(tc.invoker, targets...)
}

// Runnable is the unit of work executed by a cloud thread. Implementations
// must be gob-serializable (exported fields; register the concrete type
// with crucial.Register) because the value itself is shipped to the FaaS
// platform, exactly like the Java prototype ships the Runnable's class
// name and parameters.
type Runnable interface {
	// Run executes the work on the remote worker. tc is the thread
	// context: identity, arguments, and the client connection for
	// reaching shared objects.
	Run(tc *TC) error
}

// Register makes a Runnable implementation shippable, like declaring it
// Serializable. Call it once per concrete type, e.g. in the example's
// setup: crucial.Register(&PiEstimator{}).
func Register(r Runnable) {
	core.RegisterValueTypes()
	gob.Register(r)
}

// RetryPolicy controls re-execution of failed cloud threads and re-routing
// of DSO calls (paper Section 4.4: the user controls how many retries are
// allowed and the time between them; re-execution must be made idempotent
// by the application, e.g. via a shared iteration counter).
//
// It is an alias of core.RetryPolicy, the single policy type shared by
// every retrying layer. The zero Multiplier/Jitter mean a constant pause,
// so pre-existing literals like RetryPolicy{MaxRetries: 3, Backoff: time.
// Millisecond} behave exactly as before; set Multiplier/MaxBackoff/Jitter
// for exponential backoff.
type RetryPolicy = core.RetryPolicy

// ExponentialRetry builds a jittered exponential policy (doubling pauses
// capped at maxBackoff). A convenience re-export of core.ExponentialRetry.
func ExponentialRetry(maxRetries int, backoff, maxBackoff time.Duration) RetryPolicy {
	return core.ExponentialRetry(maxRetries, backoff, maxBackoff)
}

// threadEnv is the invocation payload: the Runnable itself plus the thread
// identity.
type threadEnv struct {
	R  Runnable
	ID int
}

// ErrThreadNotStarted is returned by Join before Start.
var ErrThreadNotStarted = errors.New("crucial: thread not started")

// CloudThread runs a Runnable as a serverless function invocation while
// exposing the familiar Start/Join surface of a thread (Listing 1 of the
// paper). The creating goroutine blocks in Join until the remote function
// finishes; errors (after retries) propagate to Join.
type CloudThread struct {
	rt    *Runtime
	r     Runnable
	retry RetryPolicy

	id   int
	done chan error
}

// NewThread wraps a Runnable in a cloud thread with the runtime's default
// retry policy.
func (rt *Runtime) NewThread(r Runnable) *CloudThread {
	return rt.NewThreadRetry(r, rt.defaultRetry)
}

// NewThreadRetry wraps a Runnable with an explicit retry policy.
func (rt *Runtime) NewThreadRetry(r Runnable, retry RetryPolicy) *CloudThread {
	return &CloudThread{rt: rt, r: r, retry: retry}
}

// Start launches the remote invocation. It never blocks on the function.
func (t *CloudThread) Start() {
	t.StartCtx(context.Background())
}

// StartCtx launches the remote invocation under an explicit context.
func (t *CloudThread) StartCtx(ctx context.Context) {
	if t.done != nil {
		return
	}
	t.id = int(t.rt.threadSeq.Add(1))
	t.done = make(chan error, 1)
	go func() {
		t.done <- t.invokeWithRetries(ctx)
	}()
}

// invokeWithRetries re-invokes the function with the exact same payload on
// failure, mirroring Lambda's replay semantics under the application's
// policy. Pauses between attempts follow the policy's backoff schedule
// (constant, or exponential with jitter when Multiplier/Jitter are set).
func (t *CloudThread) invokeWithRetries(ctx context.Context) error {
	// Telemetry: the thread span is the trace root — faas.invoke, the
	// client's RPC and the server-side execution all nest under it.
	var span *telemetry.Span
	if t.rt.instrumented {
		t.rt.cSpawns.Inc()
		start := time.Now()
		var sctx context.Context
		sctx, span = t.rt.tracer.Start(ctx, telemetry.SpanThread)
		ctx = sctx
		span.SetAttr(telemetry.AttrThreadID, fmt.Sprint(t.id))
		defer func() {
			t.rt.hLifetime.Observe(time.Since(start))
			span.End()
		}()
	}

	payload, err := encodeThreadEnv(threadEnv{R: t.r, ID: t.id})
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < t.retry.Attempts(); attempt++ {
		if attempt > 0 {
			t.rt.cRetries.Inc()
			span.SetAttr(telemetry.AttrAttempt, fmt.Sprint(attempt+1))
			if d := t.retry.Delay(attempt, nil); d > 0 {
				if err := netsim.Sleep(ctx, t.rt.profile.Scaled(d)); err != nil {
					return err
				}
			}
		}
		if _, err := t.rt.platform.Invoke(ctx, t.rt.functionName, payload); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	span.SetAttr(telemetry.AttrError, fmt.Sprint(lastErr))
	return fmt.Errorf("crucial: thread %d failed after %d attempts: %w",
		t.id, t.retry.Attempts(), lastErr)
}

// Join blocks until the cloud thread finishes, returning its error (the
// fork/join pattern of Listing 1).
func (t *CloudThread) Join() error {
	if t.done == nil {
		return ErrThreadNotStarted
	}
	return <-t.done
}

// ID returns the thread's identity (0 before Start).
func (t *CloudThread) ID() int { return t.id }

// encodeThreadEnv and decodeThreadEnv (de)serialize the payload.
func encodeThreadEnv(env threadEnv) ([]byte, error) {
	data, err := core.EncodeValue(&env)
	if err != nil {
		return nil, fmt.Errorf("crucial: encode runnable %T (did you crucial.Register it?): %w", env.R, err)
	}
	return data, nil
}

func decodeThreadEnv(data []byte) (threadEnv, error) {
	var env threadEnv
	if err := core.DecodeValue(data, &env); err != nil {
		return threadEnv{}, fmt.Errorf("crucial: decode runnable: %w", err)
	}
	if env.R == nil {
		return threadEnv{}, errors.New("crucial: payload carried no runnable")
	}
	return env, nil
}

// SpawnAll creates and starts one cloud thread per Runnable, returning the
// threads (the threads.forEach(Thread::start) idiom).
func (rt *Runtime) SpawnAll(rs ...Runnable) []*CloudThread {
	ts := make([]*CloudThread, len(rs))
	for i, r := range rs {
		ts[i] = rt.NewThread(r)
		ts[i].Start()
	}
	return ts
}

// JoinAll joins every thread, returning the first error encountered
// (all threads are joined regardless).
func JoinAll(ts []*CloudThread) error {
	var firstErr error
	for _, t := range ts {
		if err := t.Join(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
