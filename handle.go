// Package crucial is a Go library for programming highly-concurrent
// stateful applications on serverless (FaaS) platforms, reproducing the
// system described in "On the FaaS Track: Building Stateful Distributed
// Applications with Serverless Architectures" (Middleware '19).
//
// Crucial views cloud functions as threads ("cloud threads") that share
// state through a layer of distributed shared objects (DSO) hosted by a
// low-latency in-memory grid. A multi-threaded program is ported by (1)
// running each Runnable on a CloudThread instead of a goroutine and (2)
// replacing every shared mutable object with its crucial counterpart:
// linearizable atomics, collections, and blocking synchronization objects
// (cyclic barriers, semaphores, futures), plus user-defined shared objects
// whose methods execute server side (method-call shipping).
//
// The Java prototype weaves @Shared fields with AspectJ; here, proxies
// gob-encode only their object reference, and the function-side runtime
// re-binds every proxy field of a decoded Runnable via reflection before
// calling Run.
package crucial

import (
	"context"
	"fmt"

	"crucial/internal/core"
)

// Option customizes a shared-object proxy at construction.
type Option func(*Handle)

// WithPersist marks the object persistent: it is replicated rf times in
// the DSO layer, survives node failures, and outlives the application
// (the @Shared(persistent=true) analog).
func WithPersist() Option {
	return func(h *Handle) { h.persist = true }
}

// withInit sets constructor arguments shipped with every invocation and
// used only on first access (so any replica can materialize the object
// deterministically).
func withInit(init ...any) Option {
	return func(h *Handle) { h.init = init }
}

// Handle is the client-side core of every shared-object proxy: the object
// reference, its construction arguments, and (after binding) the DSO
// invoker. Handles serialize to just the reference metadata, never the
// connection — that is what makes Runnables shippable to cloud functions.
type Handle struct {
	ref     core.Ref
	init    []any
	persist bool
	inv     core.Invoker
}

// NewHandle builds a handle for (typeName, key). Library constructors wrap
// it; applications use it directly only for user-defined shared types.
func NewHandle(typeName, key string, opts ...Option) Handle {
	h := Handle{ref: core.Ref{Type: typeName, Key: key}}
	for _, o := range opts {
		o(&h)
	}
	return h
}

// Ref returns the object reference.
func (h *Handle) Ref() core.Ref { return h.ref }

// Persistent reports whether the proxy requests durability.
func (h *Handle) Persistent() bool { return h.persist }

// BindDSO attaches the handle to a live DSO client. The crucial runtime
// calls it for every proxy field of a Runnable before Run; manual binding
// is only needed for proxies created outside a Runnable (e.g. in the
// application's master thread, via Runtime.Bind).
func (h *Handle) BindDSO(inv core.Invoker) { h.inv = inv }

var _ core.Bindable = (*Handle)(nil)

// handleState is the gob wire form of a handle.
type handleState struct {
	Ref     core.Ref
	Init    []any
	Persist bool
}

// GobEncode serializes the reference metadata (never the connection).
func (h Handle) GobEncode() ([]byte, error) {
	return core.EncodeValue(handleState{Ref: h.ref, Init: h.init, Persist: h.persist})
}

// GobDecode restores the reference metadata; the handle is unbound until
// the runtime weaves it.
func (h *Handle) GobDecode(data []byte) error {
	var s handleState
	if err := core.DecodeValue(data, &s); err != nil {
		return err
	}
	h.ref, h.init, h.persist = s.Ref, s.Init, s.Persist
	h.inv = nil
	return nil
}

// Invoke ships one method call to the object's owner.
func (h *Handle) Invoke(ctx context.Context, method string, args ...any) ([]any, error) {
	if h.inv == nil {
		return nil, fmt.Errorf("crucial: %s used before binding to a DSO client "+
			"(run it on a CloudThread, or bind with Runtime.Bind)", h.ref)
	}
	return h.inv.InvokeObject(ctx, core.Invocation{
		Ref:     h.ref,
		Method:  method,
		Args:    args,
		Init:    h.init,
		Persist: h.persist,
	})
}

// result0 extracts a typed first result.
func result0[T any](res []any, err error) (T, error) {
	var zero T
	if err != nil {
		return zero, err
	}
	if len(res) < 1 {
		return zero, fmt.Errorf("crucial: empty result set")
	}
	v, ok := res[0].(T)
	if !ok {
		return zero, fmt.Errorf("crucial: result has type %T, want %T", res[0], zero)
	}
	return v, nil
}

// resultVoid validates a no-result call.
func resultVoid(_ []any, err error) error { return err }
