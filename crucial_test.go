package crucial

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"crucial/internal/core"
)

// testRuntime builds a small local runtime for tests.
func testRuntime(t *testing.T, opts Options) *Runtime {
	t.Helper()
	rt, err := NewLocalRuntime(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	return rt
}

func bg() context.Context { return context.Background() }

// piEstimator is the Listing 1 port: a Runnable sharing one AtomicLong.
type piEstimator struct {
	Iterations int64
	Seed       int64
	Counter    *AtomicLong
}

func (p *piEstimator) Run(tc *TC) error {
	rng := rand.New(rand.NewSource(p.Seed))
	var count int64
	for i := int64(0); i < p.Iterations; i++ {
		x, y := rng.Float64(), rng.Float64()
		if x*x+y*y <= 1.0 {
			count++
		}
	}
	_, err := p.Counter.AddAndGet(tc.Context(), count)
	return err
}

func TestMonteCarloListing1(t *testing.T) {
	Register(&piEstimator{})
	rt := testRuntime(t, Options{DSONodes: 2})

	const threads = 8
	const iters = 20000
	rs := make([]Runnable, threads)
	for i := range rs {
		rs[i] = &piEstimator{
			Iterations: iters,
			Seed:       int64(i + 1),
			Counter:    NewAtomicLong("counter"),
		}
	}
	ts := rt.SpawnAll(rs...)
	if err := JoinAll(ts); err != nil {
		t.Fatal(err)
	}

	counter := NewAtomicLong("counter")
	rt.Bind(counter)
	total, err := counter.Get(bg())
	if err != nil {
		t.Fatal(err)
	}
	pi := 4.0 * float64(total) / float64(threads*iters)
	if pi < 3.0 || pi > 3.3 {
		t.Fatalf("estimated pi = %v from %d hits", pi, total)
	}
}

// iterWorker exercises the k-means synchronization pattern: barrier-paced
// iterations over shared state.
type iterWorker struct {
	Iterations int
	Parties    int
	Sum        *AtomicLong
	Barrier    *CyclicBarrier
	Trace      *List[int64]
}

func (w *iterWorker) Run(tc *TC) error {
	ctx := tc.Context()
	for it := 0; it < w.Iterations; it++ {
		if _, err := w.Sum.AddAndGet(ctx, 1); err != nil {
			return err
		}
		if _, err := w.Barrier.Await(ctx); err != nil {
			return err
		}
		// After the barrier, every party must observe the full iteration's
		// contributions.
		v, err := w.Sum.Get(ctx)
		if err != nil {
			return err
		}
		if _, err := w.Trace.Add(ctx, v); err != nil {
			return err
		}
		if _, err := w.Barrier.Await(ctx); err != nil {
			return err
		}
	}
	return nil
}

func TestBarrierPacedIterations(t *testing.T) {
	Register(&iterWorker{})
	rt := testRuntime(t, Options{DSONodes: 2})

	const parties = 4
	const iterations = 3
	rs := make([]Runnable, parties)
	for i := range rs {
		rs[i] = &iterWorker{
			Iterations: iterations,
			Parties:    parties,
			Sum:        NewAtomicLong("iter-sum"),
			Barrier:    NewCyclicBarrier("iter-barrier", parties),
			Trace:      NewList[int64]("iter-trace"),
		}
	}
	if err := JoinAll(rt.SpawnAll(rs...)); err != nil {
		t.Fatal(err)
	}

	trace := NewList[int64]("iter-trace")
	rt.Bind(trace)
	vals, err := trace.GetAll(bg())
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != parties*iterations {
		t.Fatalf("trace has %d entries, want %d", len(vals), parties*iterations)
	}
	// Every observation after the it-th barrier must be (it+1)*parties.
	for i, v := range vals {
		iter := i / parties
		want := int64((iter + 1) * parties)
		if v != want {
			t.Fatalf("observation %d = %d, want %d (sum not synchronized)", i, v, want)
		}
	}
}

// flakyWorker exercises the retry path with the shared-iteration-counter
// idempotence idiom of Section 4.4.
type flakyWorker struct {
	Done *AtomicLong
}

func (w *flakyWorker) Run(tc *TC) error {
	_, err := w.Done.AddAndGet(tc.Context(), 1)
	return err
}

func TestRetriesRecoverInjectedFailures(t *testing.T) {
	Register(&flakyWorker{})
	rt := testRuntime(t, Options{
		FailureRate:  0.3,
		DefaultRetry: RetryPolicy{MaxRetries: 20, Backoff: time.Millisecond},
	})

	const threads = 10
	rs := make([]Runnable, threads)
	for i := range rs {
		rs[i] = &flakyWorker{Done: NewAtomicLong("done")}
	}
	if err := JoinAll(rt.SpawnAll(rs...)); err != nil {
		t.Fatal(err)
	}
	done := NewAtomicLong("done")
	rt.Bind(done)
	v, err := done.Get(bg())
	if err != nil {
		t.Fatal(err)
	}
	if v != threads {
		t.Fatalf("done = %d, want %d", v, threads)
	}
	if rt.Platform().Stats().Failures == 0 {
		t.Fatal("no failures injected; the retry path was not exercised")
	}
}

func TestThreadErrorPropagatesToJoin(t *testing.T) {
	Register(&failingWorker{})
	rt := testRuntime(t, Options{})
	th := rt.NewThread(&failingWorker{})
	th.Start()
	if err := th.Join(); err == nil {
		t.Fatal("Join returned nil for failing runnable")
	}
}

type failingWorker struct{ X int }

func (w *failingWorker) Run(*TC) error {
	return errTest
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "worker failed" }

func TestJoinBeforeStart(t *testing.T) {
	rt := testRuntime(t, Options{})
	th := rt.NewThread(&failingWorker{})
	if err := th.Join(); err != ErrThreadNotStarted {
		t.Fatalf("Join before Start = %v", err)
	}
}

func TestHandleUnboundError(t *testing.T) {
	c := NewAtomicLong("unbound")
	if _, err := c.Get(bg()); err == nil {
		t.Fatal("unbound proxy call succeeded")
	}
}

func TestHandleGobRoundTrip(t *testing.T) {
	a := NewAtomicLongInit("k1", 7, WithPersist())
	data, err := a.H.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var h Handle
	if err := h.GobDecode(data); err != nil {
		t.Fatal(err)
	}
	if h.Ref() != a.H.Ref() || !h.Persistent() {
		t.Fatalf("round trip lost metadata: %+v", h)
	}
}

// fakeInvoker records invocations for bind tests.
type fakeInvoker struct {
	mu    sync.Mutex
	calls []core.Invocation
}

func (f *fakeInvoker) InvokeObject(_ context.Context, inv core.Invocation) ([]any, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls = append(f.calls, inv)
	return []any{int64(0)}, nil
}

func TestBindSharedWalksNestedStructures(t *testing.T) {
	type inner struct {
		C *AtomicLong
	}
	type outer struct {
		Direct  *AtomicLong
		Value   AtomicLong
		Nested  *inner
		Slice   []*AtomicLong
		Mapped  map[string]*AtomicLong
		private *AtomicLong //nolint:unused // must be skipped, not panic
	}
	o := &outer{
		Direct: NewAtomicLong("d"),
		Value:  *NewAtomicLong("v"),
		Nested: &inner{C: NewAtomicLong("n")},
		Slice:  []*AtomicLong{NewAtomicLong("s0"), NewAtomicLong("s1")},
		Mapped: map[string]*AtomicLong{"m": NewAtomicLong("m")},
	}
	inv := &fakeInvoker{}
	BindShared(inv, o)

	for name, probe := range map[string]func() error{
		"direct": func() error { _, err := o.Direct.Get(bg()); return err },
		"value":  func() error { _, err := o.Value.Get(bg()); return err },
		"nested": func() error { _, err := o.Nested.C.Get(bg()); return err },
		"slice0": func() error { _, err := o.Slice[0].Get(bg()); return err },
		"slice1": func() error { _, err := o.Slice[1].Get(bg()); return err },
		"mapped": func() error { _, err := o.Mapped["m"].Get(bg()); return err },
	} {
		if err := probe(); err != nil {
			t.Errorf("%s proxy not bound: %v", name, err)
		}
	}
}

func TestBindSharedNilSafety(t *testing.T) {
	type holder struct {
		C *AtomicLong
	}
	BindShared(&fakeInvoker{}, nil, (*holder)(nil), &holder{})
}

func TestBindSharedCycle(t *testing.T) {
	type nodeT struct {
		Next *nodeT
		C    *AtomicLong
	}
	a := &nodeT{C: NewAtomicLong("a")}
	b := &nodeT{C: NewAtomicLong("b"), Next: a}
	a.Next = b // cycle
	inv := &fakeInvoker{}
	BindShared(inv, a)
	if _, err := a.C.Get(bg()); err != nil {
		t.Fatal("cycle start not bound")
	}
	if _, err := b.C.Get(bg()); err != nil {
		t.Fatal("cycle peer not bound")
	}
}

// customCounter is a user-defined shared object (the @Shared analog).
type customCounter struct {
	total int64
	peak  int64
}

func newCustomCounter(_ []any) (ServerObject, error) {
	return &customCounter{}, nil
}

func (c *customCounter) Call(_ Ctl, method string, args []any) ([]any, error) {
	switch method {
	case "Update":
		v, err := core.Int64Arg(args, 0)
		if err != nil {
			return nil, err
		}
		c.total += v
		if v > c.peak {
			c.peak = v
		}
		return []any{c.total}, nil
	case "Peak":
		return []any{c.peak}, nil
	default:
		return nil, core.ErrUnknownMethod
	}
}

func TestUserDefinedSharedObject(t *testing.T) {
	reg := NewTypeRegistry()
	reg.MustRegister(ObjectType{Name: "CustomCounter", New: newCustomCounter})
	rt := testRuntime(t, Options{Registry: reg})

	s := NewShared("CustomCounter", "metrics", nil)
	rt.Bind(s)
	for _, v := range []int64{3, 9, 4} {
		if _, err := s.Invoke(bg(), "Update", v); err != nil {
			t.Fatal(err)
		}
	}
	peak, err := Call1[int64](bg(), s, "Peak")
	if err != nil {
		t.Fatal(err)
	}
	if peak != 9 {
		t.Fatalf("peak = %d", peak)
	}
	total, err := Call1[int64](bg(), s, "Update", int64(0))
	if err != nil {
		t.Fatal(err)
	}
	if total != 16 {
		t.Fatalf("total = %d", total)
	}
}

func TestPersistentProxySurvivesCrash(t *testing.T) {
	rt := testRuntime(t, Options{DSONodes: 3, RF: 2})
	c := NewAtomicLong("durable", WithPersist())
	rt.Bind(c)
	if err := c.Set(bg(), 99); err != nil {
		t.Fatal(err)
	}
	view := rt.Cluster().Dir.View()
	primary := view.Ring().ReplicaSet(c.H.Ref().String(), 2)[0]
	if err := rt.Cluster().CrashNode(primary); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get(bg())
	if err != nil {
		t.Fatal(err)
	}
	if v != 99 {
		t.Fatalf("durable value = %d after crash", v)
	}
}

func TestFutureProxyAcrossThreads(t *testing.T) {
	Register(&futureSetter{})
	rt := testRuntime(t, Options{})
	f := NewFuture[string]("result")
	rt.Bind(f)

	th := rt.NewThread(&futureSetter{F: NewFuture[string]("result"), Value: "done"})
	th.Start()
	got, err := f.Get(bg())
	if err != nil {
		t.Fatal(err)
	}
	if got != "done" {
		t.Fatalf("future = %q", got)
	}
	if err := th.Join(); err != nil {
		t.Fatal(err)
	}
}

type futureSetter struct {
	F     *Future[string]
	Value string
}

func (s *futureSetter) Run(tc *TC) error {
	return s.F.Set(tc.Context(), s.Value)
}

func TestMapAndListProxies(t *testing.T) {
	rt := testRuntime(t, Options{DSONodes: 2})
	m := NewMap[int64]("scores")
	l := NewList[string]("names")
	rt.Bind(m, l)

	if _, _, err := m.Put(bg(), "a", 1); err != nil {
		t.Fatal(err)
	}
	prev, had, err := m.Put(bg(), "a", 2)
	if err != nil || !had || prev != 1 {
		t.Fatalf("Put prev = %v %v %v", prev, had, err)
	}
	v, ok, err := m.Get(bg(), "a")
	if err != nil || !ok || v != 2 {
		t.Fatalf("Get = %v %v %v", v, ok, err)
	}
	if _, err := l.Add(bg(), "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Add(bg(), "y"); err != nil {
		t.Fatal(err)
	}
	all, err := l.GetAll(bg())
	if err != nil || len(all) != 2 || all[1] != "y" {
		t.Fatalf("GetAll = %v %v", all, err)
	}
}

func TestSemaphoreProxy(t *testing.T) {
	rt := testRuntime(t, Options{})
	s := NewSemaphore("sem", 2)
	rt.Bind(s)
	if err := s.AcquireN(bg(), 2); err != nil {
		t.Fatal(err)
	}
	ok, err := s.TryAcquire(bg())
	if err != nil || ok {
		t.Fatalf("TryAcquire with 0 permits = %v %v", ok, err)
	}
	if err := s.Release(bg()); err != nil {
		t.Fatal(err)
	}
	n, err := s.AvailablePermits(bg())
	if err != nil || n != 1 {
		t.Fatalf("permits = %d %v", n, err)
	}
}

func TestCountDownLatchProxy(t *testing.T) {
	rt := testRuntime(t, Options{})
	l := NewCountDownLatch("latch", 2)
	rt.Bind(l)
	start := time.Now()
	go func() {
		time.Sleep(20 * time.Millisecond)
		_, _ = l.CountDown(bg())
		_, _ = l.CountDown(bg())
	}()
	if err := l.Await(bg()); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("Await returned before countdowns")
	}
}

func TestAtomicReferenceProxy(t *testing.T) {
	rt := testRuntime(t, Options{})
	r := NewAtomicReference[[]float64]("weights")
	rt.Bind(r)
	_, ok, err := r.Get(bg())
	if err != nil || ok {
		t.Fatalf("fresh reference: %v %v", ok, err)
	}
	if err := r.Set(bg(), []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := r.Get(bg())
	if err != nil || !ok || len(v) != 2 {
		t.Fatalf("Get = %v %v %v", v, ok, err)
	}
}

func TestDoubleArrayProxyAggregates(t *testing.T) {
	rt := testRuntime(t, Options{})
	a := NewAtomicDoubleArray("grad", 3)
	rt.Bind(a)
	if err := a.AddAll(bg(), []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddAll(bg(), []float64{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	all, err := a.GetAll(bg())
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("GetAll = %v", all)
		}
	}
}
