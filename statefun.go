package crucial

// Stateful functions (DESIGN.md §5i): the event-driven programming model
// layered over DSOs. Where cloud threads (NewThread) port fork/join
// programs, stateful functions port message-driven ones — the
// Cloudburst/Flink-StateFun workload class. A function is registered by
// type and addressed by (fnType, id); each addressed instance owns a
// durable mailbox object holding its inbound queue, its private state,
// and a transactional outbox. Handlers run at least once, but their
// effects (state update + sends + reply) commit atomically as one
// mailbox invocation, so every message is applied exactly once even
// across redeliveries, node crashes, and full-cluster recovery.

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"crucial/internal/core"
	"crucial/internal/faas"
	"crucial/internal/statefun"
	"crucial/internal/telemetry"
)

// StatefunRunnerFunction is the name of the serverless function the
// runtime deploys to execute stateful-function drain passes: its payload
// is an instance address; the body fetches, runs the handler, commits,
// and forwards the outbox from inside the container.
const StatefunRunnerFunction = "statefun-runner"

// FnAddress names one function instance: a registered function type plus
// an instance id. An alias of statefun.Address.
type FnAddress = statefun.Address

// FnCtx collects one handler run's effects — state update, sends,
// replies — which commit atomically after the handler returns nil. An
// alias of statefun.Ctx.
type FnCtx = statefun.Ctx

// FnMsg is the message view handed to a handler. An alias of
// statefun.Msg.
type FnMsg = statefun.Msg

// FnHandler processes one message addressed to an instance of its
// function type. Handlers run at least once per message (a crash between
// commit and acknowledgment redelivers), so all effects must go through
// the FnCtx, where they are exactly-once. An alias of statefun.Handler.
type FnHandler = statefun.Handler

// FnStatus is the health view of one instance's mailbox. An alias of
// statefun.MailboxStatus.
type FnStatus = statefun.MailboxStatus

// ErrMailboxFull is returned by sends bounced by a destination mailbox's
// capacity (backpressure); the message was not enqueued.
var ErrMailboxFull = statefun.ErrMailboxFull

// StatefunOptions tunes the stateful-functions layer of a runtime.
type StatefunOptions struct {
	// Workers is the dispatch concurrency (default 8).
	Workers int
	// PollInterval is the dispatch scheduler tick (default 2ms).
	PollInterval time.Duration
	// IdleTTL retires instances idle this long from the dispatch
	// directory; their durable mailboxes survive and re-activate on the
	// next message (default 0 = never retire).
	IdleTTL time.Duration
	// MailboxCap bounds each instance's inbound queue; pushes beyond it
	// fail with ErrMailboxFull (default 1024).
	MailboxCap int64
	// InProcess executes handlers on the dispatcher's own goroutines
	// instead of through the FaaS platform — cheaper, but outside the
	// serverless execution model (and its fault injection).
	InProcess bool
}

// StatefulFunction is the client handle for one registered function
// type: it sends messages into instances and reads their durable state.
type StatefulFunction struct {
	rt     *Runtime
	fnType string
}

// statefunState is the runtime's lazily-built stateful-functions layer.
type statefunState struct {
	handlers *statefun.HandlerSet
	proc     *statefun.Proc
	engine   *statefun.Engine
	sender   *statefun.Sender
	replySeq atomic.Uint64
}

// faasRunner ships drain passes to the FaaS platform, so handler
// execution pays (and measures) the serverless invocation path:
// cold starts, concurrency caps, injected failures and timeouts. A
// failed or timed-out invocation is safe — the engine redispatches, and
// commits already applied turn the rerun into a no-op.
type faasRunner struct {
	platform *faas.Platform
	fn       string
}

// Run invokes the statefun runner function for one drain pass.
func (r faasRunner) Run(ctx context.Context, addr statefun.Address) (statefun.RunReport, error) {
	payload, err := core.EncodeValue(addr)
	if err != nil {
		return statefun.RunReport{}, err
	}
	out, err := r.platform.Invoke(ctx, r.fn, payload)
	if err != nil {
		return statefun.RunReport{}, err
	}
	var report statefun.RunReport
	if err := core.DecodeValue(out, &report); err != nil {
		return statefun.RunReport{}, err
	}
	return report, nil
}

// DeployStatefulFunction registers a handler for fnType and returns its
// handle. The first deployment boots the runtime's dispatch engine and
// (unless StatefunOptions.InProcess) deploys the statefun runner
// function. Deploying a type twice is an error.
func (rt *Runtime) DeployStatefulFunction(fnType string, h FnHandler) (*StatefulFunction, error) {
	rt.sfMu.Lock()
	defer rt.sfMu.Unlock()
	if rt.sf == nil {
		sf, err := rt.startStatefun()
		if err != nil {
			return nil, err
		}
		rt.sf = sf
	}
	if err := rt.sf.handlers.Register(fnType, h); err != nil {
		return nil, err
	}
	return &StatefulFunction{rt: rt, fnType: fnType}, nil
}

// startStatefun builds the handler set, the in-container executor, the
// dispatch engine, and the sending half. Callers hold rt.sfMu.
func (rt *Runtime) startStatefun() (*statefunState, error) {
	var metrics *telemetry.Registry
	if rt.tel != nil {
		metrics = rt.tel.Metrics()
	}
	sf := &statefunState{handlers: statefun.NewHandlerSet()}
	sf.proc = statefun.NewProc(rt.fnClient, sf.handlers, statefun.ProcOptions{
		MailboxCap: rt.sfOpts.MailboxCap,
		Metrics:    metrics,
	})
	runner := statefun.Runner(sf.proc)
	if !rt.sfOpts.InProcess {
		err := rt.platform.Deploy(StatefunRunnerFunction, rt.statefunRunnerHandler, faas.FunctionConfig{})
		if err != nil {
			return nil, err
		}
		runner = faasRunner{platform: rt.platform, fn: StatefunRunnerFunction}
	}
	sf.engine = statefun.NewEngine(statefun.EngineConfig{
		Invoker:      rt.masterClient,
		Runner:       runner,
		Workers:      rt.sfOpts.Workers,
		PollInterval: rt.sfOpts.PollInterval,
		IdleTTL:      rt.sfOpts.IdleTTL,
		MailboxCap:   rt.sfOpts.MailboxCap,
		Metrics:      metrics,
	})
	sf.sender = statefun.NewSender(rt.masterClient,
		fmt.Sprintf("client/%016x", rt.masterClient.ID()), rt.sfOpts.MailboxCap)
	return sf, nil
}

// statefunRunnerHandler is the statefun runner function body: decode the
// instance address, drain its mailbox from inside the container.
func (rt *Runtime) statefunRunnerHandler(ctx context.Context, payload []byte) ([]byte, error) {
	var addr statefun.Address
	if err := core.DecodeValue(payload, &addr); err != nil {
		return nil, err
	}
	rt.sfMu.Lock()
	sf := rt.sf
	rt.sfMu.Unlock()
	if sf == nil {
		return nil, fmt.Errorf("crucial: stateful functions not deployed")
	}
	report, err := sf.proc.Run(ctx, addr)
	if err != nil {
		return nil, err
	}
	return core.EncodeValue(report)
}

// closeStatefun stops the dispatch engine (idempotent).
func (rt *Runtime) closeStatefun() {
	rt.sfMu.Lock()
	sf := rt.sf
	rt.sf = nil
	rt.sfMu.Unlock()
	if sf != nil {
		sf.engine.Close()
	}
}

// Address returns the full address of instance id.
func (f *StatefulFunction) Address(id string) FnAddress {
	return FnAddress{FnType: f.fnType, ID: id}
}

// Send enqueues one message for instance id, exactly once on nil error:
// the push rides the at-most-once invocation path and the mailbox's
// per-sender dedup window. ErrMailboxFull reports backpressure (nothing
// enqueued); other errors leave the message in doubt.
func (f *StatefulFunction) Send(ctx context.Context, id, name string, body any) error {
	data, err := statefun.EncodeBody(body)
	if err != nil {
		return err
	}
	addr := f.Address(id)
	if err := f.sender().Send(ctx, addr, name, data, ""); err != nil {
		return err
	}
	f.rt.notifyStatefun(addr)
	return nil
}

// Call sends a request message and blocks until the handler — or a
// downstream function it forwarded the reply key to — replies, decoding
// the reply body into reply (which may be nil to discard it). Replies
// travel through reply futures, which are coordination objects, not
// durable ones: a reply lost to a node crash leaves Call blocked until
// ctx cancels, even though the request itself remains exactly-once.
func (f *StatefulFunction) Call(ctx context.Context, id, name string, body, reply any) error {
	data, err := statefun.EncodeBody(body)
	if err != nil {
		return err
	}
	sf := f.rt.statefun()
	replyKey := fmt.Sprintf("statefun/reply/%s/%d", sf.sender.From(), sf.replySeq.Add(1))
	addr := f.Address(id)
	if err := sf.sender.Send(ctx, addr, name, data, replyKey); err != nil {
		return err
	}
	f.rt.notifyStatefun(addr)
	raw, err := statefun.AwaitReply(ctx, f.rt.masterClient, replyKey)
	if err != nil {
		return err
	}
	if reply == nil {
		return nil
	}
	return statefun.DecodeBody(raw, reply)
}

// State reads instance id's durable private state into v, reporting
// whether the instance has any state yet.
func (f *StatefulFunction) State(ctx context.Context, id string, v any) (bool, error) {
	return statefun.StateOf(ctx, f.rt.masterClient, f.Address(id), f.rt.sfOpts.MailboxCap, v)
}

// Status reads instance id's mailbox health view.
func (f *StatefulFunction) Status(ctx context.Context, id string) (FnStatus, error) {
	return statefun.StatusOf(ctx, f.rt.masterClient, f.Address(id), f.rt.sfOpts.MailboxCap)
}

// sender returns the runtime's sending half.
func (f *StatefulFunction) sender() *statefun.Sender { return f.rt.statefun().sender }

// statefun returns the built layer (panics if no function was deployed —
// handles only exist after DeployStatefulFunction).
func (rt *Runtime) statefun() *statefunState {
	rt.sfMu.Lock()
	defer rt.sfMu.Unlock()
	if rt.sf == nil {
		panic("crucial: stateful functions not deployed")
	}
	return rt.sf
}

// notifyStatefun marks an instance dirty so the dispatcher picks it up
// on the next tick instead of waiting for a directory poll.
func (rt *Runtime) notifyStatefun(addr FnAddress) {
	rt.sfMu.Lock()
	sf := rt.sf
	rt.sfMu.Unlock()
	if sf != nil {
		sf.engine.Notify(addr)
	}
}
