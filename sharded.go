package crucial

import (
	"context"
	"fmt"
	"sync/atomic"
)

// ShardedCounter is a commutative counter spread over N independent
// AtomicLong shards (DESIGN.md §5g). A single AtomicLong serializes every
// increment through one object monitor on one node — the textbook hot spot
// when thousands of cloud threads count into the same key. Addition
// commutes, so the counter does not need that serialization: each Add
// lands on one shard chosen round-robin, the shards hash (or are
// rebalanced) onto different nodes, and Get merges by summing shard
// values. Writes scale with the shard count; reads cost one fan-out but
// stay cheap because Get is classified read-only and rides the whole
// lease-based read path (client caches, follower reads).
//
// Semantics: Add/Increment are linearizable per shard, and Get returns a
// sum of linearizable per-shard reads — a value the counter passed through
// if no adds overlap the read, and a valid concurrent serialization
// otherwise. This is the standard sharded-counter trade: total-order reads
// of the exact instantaneous value are given up for write scalability.
// Use a plain AtomicLong where reads must serialize against writes (e.g.
// CompareAndSet loops — deliberately absent here, as they do not commute).
//
// Like every proxy it binds through BindShared/Runtime.Bind (the weaver
// descends into the shard slice) and gob-serializes to reference metadata
// only, so a Runnable holding one ships to cloud functions unchanged.
type ShardedCounter struct {
	// Shards are the underlying per-shard counters, keys "<key>#s<i>".
	// Exported for gob (the proxy must ship inside Runnables); treat as
	// read-only — use Add/Get.
	Shards []*AtomicLong
}

// shardCursor spreads round-robin starts across all ShardedCounter
// instances in the process, so N decoded copies of the same Runnable do
// not all open fire on shard 0.
var shardCursor atomic.Uint64

// DefaultCounterShards is the shard count NewShardedCounter uses when
// given zero: enough to spread across small clusters without making Get's
// fan-out noticeable.
const DefaultCounterShards = 8

// NewShardedCounter builds a proxy for the sharded counter named key with
// the given shard count (DefaultCounterShards when <= 0). Shard keys are
// derived ("<key>#s<i>"), so two proxies built with the same key and
// shard count address the same counter; building with different shard
// counts addresses overlapping-but-different shard sets and must be
// avoided, exactly like re-keying any other shared object.
func NewShardedCounter(key string, shards int, opts ...Option) *ShardedCounter {
	if shards <= 0 {
		shards = DefaultCounterShards
	}
	c := &ShardedCounter{Shards: make([]*AtomicLong, shards)}
	for i := range c.Shards {
		c.Shards[i] = NewAtomicLong(fmt.Sprintf("%s#s%d", key, i), opts...)
	}
	return c
}

// pick chooses the shard for one write.
func (c *ShardedCounter) pick() *AtomicLong {
	return c.Shards[shardCursor.Add(1)%uint64(len(c.Shards))]
}

// Add contributes delta to the counter (one shipped write on one shard).
func (c *ShardedCounter) Add(ctx context.Context, delta int64) error {
	_, err := c.pick().GetAndAdd(ctx, delta)
	return err
}

// Increment adds one.
func (c *ShardedCounter) Increment(ctx context.Context) error {
	return c.Add(ctx, 1)
}

// Get returns the counter's value: the sum of all shard values, each read
// through the read-only fast path.
func (c *ShardedCounter) Get(ctx context.Context) (int64, error) {
	var sum int64
	for _, s := range c.Shards {
		v, err := s.Get(ctx)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum, nil
}

// Reset zeroes every shard. Not atomic across shards: adds concurrent
// with a Reset may survive in shards not yet zeroed.
func (c *ShardedCounter) Reset(ctx context.Context) error {
	for _, s := range c.Shards {
		if err := s.Set(ctx, 0); err != nil {
			return err
		}
	}
	return nil
}

// ShardCount returns the number of shards.
func (c *ShardedCounter) ShardCount() int { return len(c.Shards) }
