package crucial

import (
	"context"

	"crucial/internal/core"
	"crucial/internal/objects"
)

// User-defined shared objects (the @Shared annotation of the paper).
//
// A custom type has two halves:
//
//   - A server-side implementation of ServerObject (plus Snapshotter if it
//     should be replicable/rebalanceable), registered under a type name in
//     the registry passed to the runtime. This is the analog of uploading
//     the jar with the object code to the DSO servers.
//   - A client-side proxy: either the generic Shared handle below, or a
//     typed wrapper struct embedding a Handle (see the k-means example's
//     GlobalCentroids).

// ServerObject is the server-side contract of a shared object: Call runs
// under the object's monitor on its owning node.
type ServerObject = core.Object

// Ctl is the monitor handle passed to ServerObject.Call; blocking methods
// use Wait/Broadcast (Java wait()/notify() semantics).
type Ctl = core.Ctl

// Snapshotter enables replication and rebalancing for a user object.
type Snapshotter = core.Snapshotter

// TypeRegistry maps type names to server-side factories.
type TypeRegistry = core.Registry

// ObjectType describes one registered shared-object type.
type ObjectType = core.TypeInfo

// Factory builds a server-side object from Init arguments.
type Factory = core.Factory

// NewTypeRegistry returns a registry preloaded with the built-in object
// library; register application types on it and pass it to the runtime
// options.
func NewTypeRegistry() *TypeRegistry {
	return objects.BuiltinRegistry()
}

// RegisterValue registers a concrete Go type for transport inside shared
// object arguments, results, and Runnable fields — the moral equivalent of
// implementing Serializable.
func RegisterValue(v any) {
	core.RegisterValue(v)
}

// Shared is the generic client proxy for a user-defined shared object.
type Shared struct{ H Handle }

// NewShared builds a proxy for the object (typeName, key). init arguments
// are applied on first access.
func NewShared(typeName, key string, init []any, opts ...Option) *Shared {
	if len(init) > 0 {
		opts = append(opts, withInit(init...))
	}
	return &Shared{H: NewHandle(typeName, key, opts...)}
}

// Call ships one method invocation to the object.
func (s *Shared) Call(ctx context.Context, method string, args ...any) ([]any, error) {
	return s.H.Invoke(ctx, method, args...)
}

// CallVoid ships a method invocation and discards its results.
func (s *Shared) CallVoid(ctx context.Context, method string, args ...any) error {
	_, err := s.H.Invoke(ctx, method, args...)
	return err
}

// CallOne ships a method invocation and returns its single typed result.
func CallOne[T any](ctx context.Context, s *Shared, method string, args ...any) (T, error) {
	return result0[T](s.H.Invoke(ctx, method, args...))
}
