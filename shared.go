package crucial

import (
	"context"
	"fmt"

	"crucial/internal/core"
	"crucial/internal/objects"
	"crucial/internal/statefun"
)

// User-defined shared objects (the @Shared annotation of the paper).
//
// A custom type has two halves:
//
//   - A server-side implementation of ServerObject (plus Snapshotter if it
//     should be replicable/rebalanceable), registered under a type name in
//     the registry passed to the runtime. This is the analog of uploading
//     the jar with the object code to the DSO servers.
//   - A client-side proxy: either the generic Shared handle below, or a
//     typed wrapper struct embedding a Handle (see the k-means example's
//     GlobalCentroids).

// ServerObject is the server-side contract of a shared object: Call runs
// under the object's monitor on its owning node.
type ServerObject = core.Object

// Ctl is the monitor handle passed to ServerObject.Call; blocking methods
// use Wait/Broadcast (Java wait()/notify() semantics).
type Ctl = core.Ctl

// Snapshotter enables replication and rebalancing for a user object.
type Snapshotter = core.Snapshotter

// TypeRegistry maps type names to server-side factories.
type TypeRegistry = core.Registry

// ObjectType describes one registered shared-object type.
type ObjectType = core.TypeInfo

// Factory builds a server-side object from Init arguments.
type Factory = core.Factory

// NewTypeRegistry returns a registry preloaded with the built-in object
// library; register application types on it and pass it to the runtime
// options.
func NewTypeRegistry() *TypeRegistry {
	r := objects.BuiltinRegistry()
	statefun.RegisterTypes(r)
	return r
}

// RegisterValue registers a concrete Go type for transport inside shared
// object arguments, results, and Runnable fields — the moral equivalent of
// implementing Serializable.
func RegisterValue(v any) {
	core.RegisterValue(v)
}

// RegisterReadOnlyMethods declares methods of a registered shared-object
// type as read-only, making them eligible for the lease-based read path:
// client-cached execution, follower reads, and the primary's local-read
// fast path (Options.LeaseTTL, DESIGN.md §5d). Declare them where the type
// itself is registered. The contract is strict — a read-only method must
// not mutate any object state, must not block (no Ctl.Wait), and must be
// deterministic given the state; servers re-validate the classification,
// so a wrong declaration costs performance, never correctness of writes,
// but a method that mutates despite being declared read-only will corrupt
// cached copies. The built-in library's read-only methods (Get, Size,
// Contains, ...) are pre-declared.
func RegisterReadOnlyMethods(typeName string, methods ...string) {
	core.RegisterReadOnlyMethods(typeName, methods...)
}

// Shared is the generic client proxy for a user-defined shared object.
type Shared struct {
	H Handle // H is the underlying object handle (ref + client binding).
}

// NewShared builds a proxy for the object (typeName, key). init arguments
// are applied on first access.
func NewShared(typeName, key string, init []any, opts ...Option) *Shared {
	if len(init) > 0 {
		opts = append(opts, withInit(init...))
	}
	return &Shared{H: NewHandle(typeName, key, opts...)}
}

// Invoke ships one method invocation to the object and returns its raw
// results. It is the root of the call surface; the CallN helpers below add
// arity-typed results on top of it.
func (s *Shared) Invoke(ctx context.Context, method string, args ...any) ([]any, error) {
	return s.H.Invoke(ctx, method, args...)
}

// Call0 ships a method invocation that returns no results (or whose
// results the caller discards).
func Call0(ctx context.Context, s *Shared, method string, args ...any) error {
	_, err := s.H.Invoke(ctx, method, args...)
	return err
}

// Call1 ships a method invocation and returns its single typed result.
func Call1[T any](ctx context.Context, s *Shared, method string, args ...any) (T, error) {
	return result0[T](s.H.Invoke(ctx, method, args...))
}

// Call2 ships a method invocation and returns its two typed results.
func Call2[T1, T2 any](ctx context.Context, s *Shared, method string, args ...any) (T1, T2, error) {
	var zero1 T1
	var zero2 T2
	res, err := s.H.Invoke(ctx, method, args...)
	if err != nil {
		return zero1, zero2, err
	}
	if len(res) < 2 {
		return zero1, zero2, fmt.Errorf("crucial: %s returned %d results, want 2", method, len(res))
	}
	v1, ok := res[0].(T1)
	if !ok {
		return zero1, zero2, fmt.Errorf("crucial: result 0 has type %T, want %T", res[0], zero1)
	}
	v2, ok := res[1].(T2)
	if !ok {
		return zero1, zero2, fmt.Errorf("crucial: result 1 has type %T, want %T", res[1], zero2)
	}
	return v1, v2, nil
}

// Call ships one method invocation to the object.
//
// Deprecated: use Invoke.
func (s *Shared) Call(ctx context.Context, method string, args ...any) ([]any, error) {
	return s.Invoke(ctx, method, args...)
}

// CallVoid ships a method invocation and discards its results.
//
// Deprecated: use Call0.
func (s *Shared) CallVoid(ctx context.Context, method string, args ...any) error {
	return Call0(ctx, s, method, args...)
}

// CallOne ships a method invocation and returns its single typed result.
//
// Deprecated: use Call1.
func CallOne[T any](ctx context.Context, s *Shared, method string, args ...any) (T, error) {
	return Call1[T](ctx, s, method, args...)
}
